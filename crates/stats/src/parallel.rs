//! The parallel all-pairs correlation engine — the enabling kernel of
//! MarketMiner.
//!
//! "The enabling aspect of this market-wide strategy is the ability to
//! quickly compute a large correlation matrix using a sliding window of
//! recent data points." For `n` stocks there are `n(n-1)/2` pairs; at 61
//! stocks that is 1830, at the full US market (~8000 names) it is over
//! 32 million — the reason the paper insists a parallel algorithm is
//! essential.
//!
//! The paper's MarketMiner parallelised this kernel with MPI (Chilson et
//! al.'s blocked-pairs decomposition). Rust MPI bindings being immature,
//! this reproduction uses [rayon] work-stealing over the flat pair
//! enumeration, which realises the same decomposition on a shared-memory
//! node: every unordered pair is an independent task, and the engine scales
//! with cores (measured by `benches/correlation_engine.rs`).
//!
//! Two products:
//!
//! * [`ParallelCorrEngine::matrix`] — one correlation matrix from the
//!   current window of every stock (the online, per-tick product that
//!   feeds live strategies);
//! * [`ParallelCorrEngine::cube`] — a full day of per-pair correlation
//!   series (the batch product that feeds backtesting; this is the object
//!   the paper's Matlab Approach 1 could not even hold in memory).

use rayon::prelude::*;

use crate::combined::CombinedEstimator;
use crate::correlation::CorrType;
use crate::maronna::{robust_margin_stats, MaronnaEstimator, MaronnaSeed};
use crate::matrix::SymMatrix;
use crate::psd;
use crate::quadrant::{quadrant, quadrant_with_medians};

/// Compute one pair's full sliding-window correlation series into `out`:
/// `out[k]` is the correlation of `x[k..k+m]` with `y[k..k+m]`.
///
/// This is the shared kernel behind both the integrated engine
/// ([`ParallelCorrEngine::cube`]) and the per-pair-recompute baseline
/// (the backtester's Approach 2), so the two produce bit-identical
/// series. Pearson uses the O(1) sliding update; Maronna (and Combined's
/// refinement stage) warm-start each window from the previous fit.
///
/// # Panics
/// Panics if the series lengths differ, `m < 2`, or
/// `out.len() != x.len() - m + 1`.
pub fn pair_series(ctype: CorrType, x: &[f64], y: &[f64], m: usize, out: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "pair series length mismatch");
    assert!(m >= 2 && x.len() >= m, "window larger than series");
    assert_eq!(out.len(), x.len() - m + 1, "output length mismatch");
    match ctype {
        CorrType::Pearson => {
            // Shared incremental arithmetic: per-stock window moments plus
            // a running cross product. `cube` uses the same kernel with
            // the moments computed once per stock, so the two paths are
            // bit-identical.
            let mx = crate::pearson::WindowMoments::new(x, m);
            let my = crate::pearson::WindowMoments::new(y, m);
            crate::pearson::cross_series(x, y, m, &mx, &my, out);
        }
        CorrType::Quadrant => {
            for (step, o) in out.iter_mut().enumerate() {
                *o = quadrant(&x[step..step + m], &y[step..step + m]);
            }
        }
        CorrType::Spearman => {
            for (step, o) in out.iter_mut().enumerate() {
                *o = crate::spearman::spearman(&x[step..step + m], &y[step..step + m]);
            }
        }
        CorrType::Kendall => {
            for (step, o) in out.iter_mut().enumerate() {
                *o = crate::kendall::kendall(&x[step..step + m], &y[step..step + m]);
            }
        }
        CorrType::Maronna => {
            let est = MaronnaEstimator::default();
            let mut warm = None;
            for (step, o) in out.iter_mut().enumerate() {
                let fit = est.fit_with_init(&x[step..step + m], &y[step..step + m], warm);
                warm = fit.converged.then_some((fit.location, fit.scatter));
                *o = fit.correlation;
            }
        }
        CorrType::Combined => {
            let est = CombinedEstimator::default();
            let mut warm = None;
            for (step, o) in out.iter_mut().enumerate() {
                let (xs, ys) = (&x[step..step + m], &y[step..step + m]);
                let q = quadrant(xs, ys);
                if q.abs() >= est.screen_threshold {
                    let fit = est.maronna.fit_with_init(xs, ys, warm);
                    warm = fit.converged.then_some((fit.location, fit.scatter));
                    *o = fit.correlation;
                } else {
                    *o = q;
                }
            }
        }
    }
}

/// A day's worth of all-pairs correlation series.
///
/// Storage is pair-major: the series for a pair is contiguous, because the
/// backtester consumes whole per-pair series. `first_step` is the first
/// interval index with a full window behind it (`m - 1` when the day has at
/// least `m` intervals).
#[derive(Debug, Clone)]
pub struct CorrCube {
    n: usize,
    n_pairs: usize,
    steps: usize,
    first_step: usize,
    data: Vec<f64>,
}

impl CorrCube {
    /// Number of stocks.
    pub fn n_stocks(&self) -> usize {
        self.n
    }

    /// Number of unordered pairs, `n(n-1)/2`.
    pub fn n_pairs(&self) -> usize {
        self.n_pairs
    }

    /// Number of time steps covered (one per interval from `first_step`).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// First interval index (in the day's interval numbering) represented.
    pub fn first_step(&self) -> usize {
        self.first_step
    }

    /// Correlation series for the pair `(i, j)`; index `k` of the slice is
    /// interval `first_step + k`.
    pub fn pair_series(&self, i: usize, j: usize) -> &[f64] {
        let r = SymMatrix::pair_rank(i, j);
        &self.data[r * self.steps..(r + 1) * self.steps]
    }

    /// Correlation series by pair rank (canonical enumeration).
    pub fn series_by_rank(&self, rank: usize) -> &[f64] {
        &self.data[rank * self.steps..(rank + 1) * self.steps]
    }

    /// Correlation of `(i, j)` at absolute interval `s`.
    ///
    /// # Panics
    /// Panics if `s < first_step` or `s` is beyond the covered range.
    pub fn at(&self, s: usize, i: usize, j: usize) -> f64 {
        assert!(s >= self.first_step, "interval before first full window");
        let k = s - self.first_step;
        self.pair_series(i, j)[k]
    }

    /// Materialise the full correlation matrix at absolute interval `s`
    /// (unit diagonal). This is what Approach 1 stored for *every* interval.
    pub fn matrix_at(&self, s: usize) -> SymMatrix {
        let mut m = SymMatrix::identity(self.n);
        for i in 1..self.n {
            for j in 0..i {
                m.set(i, j, self.at(s, i, j));
            }
        }
        m
    }

    /// Estimated bytes of a full-matrix materialisation of this cube —
    /// the memory wall the paper's Approach 1 hit in Matlab.
    pub fn full_matrix_bytes(&self) -> usize {
        self.steps * self.n * self.n * std::mem::size_of::<f64>()
    }
}

/// Configuration of the parallel all-pairs engine.
#[derive(Debug, Clone, Copy)]
pub struct ParallelCorrEngine {
    /// Correlation treatment to compute.
    pub ctype: CorrType,
    /// Repair each produced *matrix* to PSD by eigenvalue clipping.
    /// (Applies to [`Self::matrix`]; cubes are per-pair series and are
    /// repaired only when materialised via snapshots.)
    pub repair_psd: bool,
}

impl ParallelCorrEngine {
    /// Engine for a correlation type, without PSD repair.
    pub fn new(ctype: CorrType) -> Self {
        ParallelCorrEngine {
            ctype,
            repair_psd: false,
        }
    }

    /// Enable PSD repair on produced matrices.
    pub fn with_psd_repair(mut self) -> Self {
        self.repair_psd = true;
        self
    }

    /// Compute the all-pairs correlation matrix of the given per-stock
    /// windows, in parallel over pairs.
    ///
    /// `windows[i]` is the current window of log-returns for stock `i`; all
    /// windows must have equal length.
    ///
    /// # Panics
    /// Panics if windows have unequal lengths.
    pub fn matrix(&self, windows: &[&[f64]]) -> SymMatrix {
        self.matrix_impl(windows, true)
    }

    /// Sequential variant of [`Self::matrix`] — the single-core baseline the
    /// scaling bench compares against.
    pub fn matrix_seq(&self, windows: &[&[f64]]) -> SymMatrix {
        self.matrix_impl(windows, false)
    }

    /// The per-pair enumeration baseline: every pair is an independent
    /// batch estimate over its two windows. This is the path robust
    /// measures always take; for Pearson it exists as the reference the
    /// blocked kernel is equivalence-tested (and benchmarked) against.
    pub fn matrix_per_pair(&self, windows: &[&[f64]]) -> SymMatrix {
        self.matrix_per_pair_impl(windows, true)
    }

    /// Sequential [`Self::matrix_per_pair`].
    pub fn matrix_per_pair_seq(&self, windows: &[&[f64]]) -> SymMatrix {
        self.matrix_per_pair_impl(windows, false)
    }

    fn matrix_per_pair_impl(&self, windows: &[&[f64]], parallel: bool) -> SymMatrix {
        let n = windows.len();
        if n > 1 {
            let len0 = windows[0].len();
            assert!(
                windows.iter().all(|w| w.len() == len0),
                "all stock windows must have equal length"
            );
        }
        let n_pairs = n * (n - 1) / 2;
        let measure = self.ctype.estimator();
        let compute = |rank: usize| -> f64 {
            let (i, j) = SymMatrix::pair_from_rank(rank);
            measure.correlation(windows[i], windows[j])
        };
        let values: Vec<f64> = if parallel {
            (0..n_pairs).into_par_iter().map(compute).collect()
        } else {
            (0..n_pairs).map(compute).collect()
        };
        let mut m = SymMatrix::identity(n);
        for (rank, v) in values.into_iter().enumerate() {
            let (i, j) = SymMatrix::pair_from_rank(rank);
            m.set(i, j, v);
        }
        if self.repair_psd {
            psd::repair_correlation(&mut m, psd::RepairConfig::default());
        }
        m
    }

    /// Streaming all-pairs robust matrix with per-pair warm starts: the
    /// interval-over-interval entry point for Maronna and Combined
    /// engines.
    ///
    /// Two amortisations over [`Self::matrix_per_pair`]:
    ///
    /// * each stock's `(median, MAD)` is derived **once** and shared by
    ///   its `n - 1` pairs (bitwise-identical to every pair re-deriving
    ///   them — same selection code, same slice);
    /// * each pair's previous converged `(location, scatter)` seeds the
    ///   next interval's iteration (`seeds[rank]`, canonical pair-rank
    ///   order), cutting the IRLS from ~10–20 iterations to ~2–3. The
    ///   fixed point is the same M-estimating equation, so warm sweeps
    ///   agree with cold fits to within the convergence tolerance — this
    ///   is a documented-tolerance path, not a bit-identity one.
    ///
    /// Per-pair work is sharded across the pool; pairs are independent, so
    /// output is deterministic at any thread count.
    ///
    /// # Panics
    /// Panics if the engine's `ctype` is not `Maronna` or `Combined`, if
    /// windows have unequal lengths, or if `seeds.len()` is not
    /// `n(n-1)/2`.
    pub fn matrix_robust_warm(
        &self,
        windows: &[&[f64]],
        seeds: &mut [Option<MaronnaSeed>],
    ) -> SymMatrix {
        let mut out = SymMatrix::identity(windows.len());
        self.matrix_robust_warm_into(windows, seeds, &mut out);
        out
    }

    /// [`Self::matrix_robust_warm`] into a caller-provided buffer, fully
    /// overwriting it — lets the streaming engine recycle snapshot
    /// allocations.
    pub fn matrix_robust_warm_into(
        &self,
        windows: &[&[f64]],
        seeds: &mut [Option<MaronnaSeed>],
        out: &mut SymMatrix,
    ) {
        assert!(
            matches!(self.ctype, CorrType::Maronna | CorrType::Combined),
            "warm path is for robust measures; {} has no seed state",
            self.ctype
        );
        let n = windows.len();
        if n > 1 {
            let len0 = windows[0].len();
            assert!(
                windows.iter().all(|w| w.len() == len0),
                "all stock windows must have equal length"
            );
        }
        let n_pairs = n * (n - 1) / 2;
        assert_eq!(seeds.len(), n_pairs, "one seed slot per pair rank");

        // Per-stock robust stats, once per interval.
        let stats: Vec<(f64, f64)> = windows.iter().map(|w| robust_margin_stats(w)).collect();

        let ctype = self.ctype;
        let mut work: Vec<(f64, Option<MaronnaSeed>)> = seeds.iter().map(|s| (0.0, *s)).collect();
        work.par_iter_mut().enumerate().for_each(|(rank, cell)| {
            let (i, j) = SymMatrix::pair_from_rank(rank);
            let (x, y) = (windows[i], windows[j]);
            match ctype {
                CorrType::Maronna => {
                    let fit = MaronnaEstimator::default()
                        .fit_with_stats(x, y, stats[i], stats[j], cell.1);
                    cell.1 = fit.converged.then_some((fit.location, fit.scatter));
                    cell.0 = fit.correlation;
                }
                CorrType::Combined => {
                    let est = CombinedEstimator::default();
                    let q = quadrant_with_medians(x, y, stats[i].0, stats[j].0);
                    if q.abs() >= est.screen_threshold {
                        let fit = est.maronna.fit_with_stats(x, y, stats[i], stats[j], cell.1);
                        cell.1 = fit.converged.then_some((fit.location, fit.scatter));
                        cell.0 = fit.correlation;
                    } else {
                        // Screened out: keep the seed for the next interval
                        // the pair crosses the threshold, as `pair_series`
                        // does.
                        cell.0 = q;
                    }
                }
                _ => unreachable!("asserted robust ctype"),
            }
        });

        if out.n() == n {
            out.reset_identity();
        } else {
            *out = SymMatrix::identity(n);
        }
        for (rank, (v, seed)) in work.into_iter().enumerate() {
            let (i, j) = SymMatrix::pair_from_rank(rank);
            out.set(i, j, v);
            seeds[rank] = seed;
        }
        if self.repair_psd {
            psd::repair_correlation(out, psd::RepairConfig::default());
        }
    }

    fn matrix_impl(&self, windows: &[&[f64]], parallel: bool) -> SymMatrix {
        let n = windows.len();
        if n > 1 {
            let len0 = windows[0].len();
            assert!(
                windows.iter().all(|w| w.len() == len0),
                "all stock windows must have equal length"
            );
        }
        if self.ctype == CorrType::Pearson {
            // Pearson factors through standardization, so the whole matrix
            // is one tiled Z·Zᵀ (see crate::blocked). Robust measures have
            // no such factorization and keep the per-pair enumeration.
            let mut m = crate::blocked::corr_matrix_blocked(windows, parallel);
            if self.repair_psd {
                psd::repair_correlation(&mut m, psd::RepairConfig::default());
            }
            return m;
        }
        self.matrix_per_pair_impl(windows, parallel)
    }

    /// Compute a full day's correlation cube: for every pair and every
    /// interval `s >= m - 1`, the correlation of the trailing `m` returns.
    ///
    /// `series[i]` is stock `i`'s full-day return series (equal lengths).
    /// Parallelises over pairs; each pair sweeps the day independently.
    /// Pearson pairs use the O(1) sliding engine; robust measures recompute
    /// per window (their cost is what the Combined screen amortises).
    ///
    /// Returns `None` when the day is shorter than one window.
    ///
    /// # Panics
    /// Panics if series have unequal lengths or `m < 2`.
    pub fn cube(&self, series: &[Vec<f64>], m: usize) -> Option<CorrCube> {
        assert!(m >= 2, "window must hold at least 2 returns");
        let n = series.len();
        let smax = series.first().map(|s| s.len()).unwrap_or(0);
        assert!(
            series.iter().all(|s| s.len() == smax),
            "all stock series must have equal length"
        );
        if smax < m || n < 2 {
            return None;
        }
        let steps = smax - m + 1;
        let n_pairs = n * (n - 1) / 2;
        let mut data = vec![0.0; n_pairs * steps];
        let ctype = self.ctype;

        if ctype == CorrType::Pearson {
            // Incremental all-pairs sweep: the per-stock half of the
            // five-sums state (Σx, Σx², and the derived inverse-sqrt
            // variance) is computed ONCE per stock here and shared across
            // its n-1 pairs; each pair then only slides its running cross
            // product Σxy — one subtract for the leaving observation, one
            // add for the entering one, per step. Same arithmetic as
            // `pair_series`'s Pearson arm, so Approaches 2 and 3 stay
            // bit-identical.
            let moments: Vec<crate::pearson::WindowMoments> = if series.len() >= 8 {
                let mut slots: Vec<Option<crate::pearson::WindowMoments>> = vec![None; n];
                slots.par_iter_mut().enumerate().for_each(|(i, slot)| {
                    *slot = Some(crate::pearson::WindowMoments::new(&series[i], m));
                });
                slots.into_iter().map(|s| s.expect("filled")).collect()
            } else {
                series
                    .iter()
                    .map(|s| crate::pearson::WindowMoments::new(s, m))
                    .collect()
            };
            data.par_chunks_mut(steps)
                .enumerate()
                .for_each(|(rank, out)| {
                    let (i, j) = SymMatrix::pair_from_rank(rank);
                    crate::pearson::cross_series(
                        &series[i],
                        &series[j],
                        m,
                        &moments[i],
                        &moments[j],
                        out,
                    );
                });
        } else {
            data.par_chunks_mut(steps)
                .enumerate()
                .for_each(|(rank, out)| {
                    let (i, j) = SymMatrix::pair_from_rank(rank);
                    pair_series(ctype, &series[i], &series[j], m, out);
                });
        }

        Some(CorrCube {
            n,
            n_pairs,
            steps,
            first_step: m - 1,
            data,
        })
    }

    /// Sequential variant of [`Self::cube`] for scaling comparisons —
    /// identical output, single thread.
    pub fn cube_seq(&self, series: &[Vec<f64>], m: usize) -> Option<CorrCube> {
        // Run the parallel body inside a single-thread pool so the code path
        // (and therefore the numerics) is byte-identical.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("single-thread pool");
        pool.install(|| self.cube(series, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pearson::pearson;

    fn synthetic_series(n: usize, len: usize) -> Vec<Vec<f64>> {
        // Deterministic, mildly correlated series (common factor + idio).
        (0..n)
            .map(|i| {
                (0..len)
                    .map(|t| {
                        let common = ((t as f64) * 0.7).sin();
                        let idio = (((t * (i + 3) * 13) % 101) as f64 / 101.0 - 0.5) * 0.8;
                        common * (0.3 + 0.1 * (i % 5) as f64) + idio
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matrix_is_valid_correlation_matrix() {
        let series = synthetic_series(8, 120);
        let windows: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        for ctype in [
            CorrType::Pearson,
            CorrType::Maronna,
            CorrType::Combined,
            CorrType::Quadrant,
        ] {
            let m = ParallelCorrEngine::new(ctype).matrix(&windows);
            assert!(m.has_unit_diagonal(1e-12), "{ctype}");
            assert!(m.entries_in_range(1e-12), "{ctype}");
        }
    }

    #[test]
    fn warm_robust_matrix_agrees_with_cold_per_pair() {
        let series = synthetic_series(9, 100);
        let windows: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        let n_pairs = windows.len() * (windows.len() - 1) / 2;
        for ctype in [CorrType::Maronna, CorrType::Combined] {
            let eng = ParallelCorrEngine::new(ctype);
            let cold = eng.matrix_per_pair_seq(&windows);
            let mut seeds = vec![None; n_pairs];
            // First warm sweep starts cold: must match the per-pair path to
            // within the IRLS convergence tolerance.
            let first = eng.matrix_robust_warm(&windows, &mut seeds);
            for (a, b) in first.packed().iter().zip(cold.packed()) {
                assert!((a - b).abs() < 1e-6, "{ctype}: {a} vs {b}");
            }
            // Second sweep on the same window is seeded by the first fit's
            // fixed point; it must stay at that fixed point.
            let second = eng.matrix_robust_warm(&windows, &mut seeds);
            for (a, b) in second.packed().iter().zip(cold.packed()) {
                assert!((a - b).abs() < 1e-5, "{ctype} warm: {a} vs {b}");
            }
        }
    }

    #[test]
    fn warm_robust_matrix_deterministic_across_thread_counts() {
        let series = synthetic_series(8, 90);
        let windows: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        let n_pairs = windows.len() * (windows.len() - 1) / 2;
        for ctype in [CorrType::Maronna, CorrType::Combined] {
            let eng = ParallelCorrEngine::new(ctype);
            let mut seeds_par = vec![None; n_pairs];
            let par = eng.matrix_robust_warm(&windows, &mut seeds_par);
            let mut seeds_seq = vec![None; n_pairs];
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .expect("single-thread pool");
            let seq = pool.install(|| eng.matrix_robust_warm(&windows, &mut seeds_seq));
            assert_eq!(par.packed(), seq.packed(), "{ctype}");
            for (a, b) in seeds_par.iter().zip(&seeds_seq) {
                assert_eq!(a, b, "{ctype} seeds");
            }
        }
    }

    #[test]
    fn warm_robust_matrix_into_reuses_buffer() {
        let series = synthetic_series(6, 60);
        let windows: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        let n_pairs = windows.len() * (windows.len() - 1) / 2;
        let eng = ParallelCorrEngine::new(CorrType::Maronna);
        let mut seeds = vec![None; n_pairs];
        let fresh = eng.matrix_robust_warm(&windows, &mut seeds.clone());
        // Pre-soil the buffer: every entry must be overwritten.
        let mut out = SymMatrix::from_packed(
            windows.len(),
            vec![42.0; windows.len() * (windows.len() + 1) / 2],
        );
        eng.matrix_robust_warm_into(&windows, &mut seeds, &mut out);
        assert_eq!(out.packed(), fresh.packed());
    }

    #[test]
    fn parallel_matches_sequential() {
        let series = synthetic_series(10, 80);
        let windows: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        for ctype in [CorrType::Pearson, CorrType::Maronna, CorrType::Combined] {
            let eng = ParallelCorrEngine::new(ctype);
            let a = eng.matrix(&windows);
            let b = eng.matrix_seq(&windows);
            assert!(
                a.frobenius_distance(&b) < 1e-12,
                "{ctype}: parallel != sequential"
            );
        }
    }

    #[test]
    fn matrix_entries_match_direct_pearson() {
        let series = synthetic_series(6, 60);
        let windows: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        let m = ParallelCorrEngine::new(CorrType::Pearson).matrix(&windows);
        for i in 1..6 {
            for j in 0..i {
                let want = pearson(&series[i], &series[j]);
                assert!((m.get(i, j) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cube_dimensions_and_indexing() {
        let series = synthetic_series(5, 50);
        let m = 20;
        let cube = ParallelCorrEngine::new(CorrType::Pearson)
            .cube(&series, m)
            .unwrap();
        assert_eq!(cube.n_stocks(), 5);
        assert_eq!(cube.n_pairs(), 10);
        assert_eq!(cube.steps(), 31);
        assert_eq!(cube.first_step(), 19);
        // Spot-check a value against batch Pearson on the same window.
        let s = 30usize;
        let lo = s + 1 - m;
        let want = pearson(&series[3][lo..=s], &series[1][lo..=s]);
        assert!((cube.at(s, 3, 1) - want).abs() < 1e-9);
        assert!((cube.at(s, 1, 3) - want).abs() < 1e-9, "symmetric access");
    }

    #[test]
    fn cube_sliding_pearson_matches_windowed_recompute() {
        let series = synthetic_series(4, 90);
        let m = 25;
        let cube = ParallelCorrEngine::new(CorrType::Pearson)
            .cube(&series, m)
            .unwrap();
        for s in (m - 1)..90 {
            let lo = s + 1 - m;
            for i in 1..4 {
                for j in 0..i {
                    let want = pearson(&series[i][lo..=s], &series[j][lo..=s]);
                    assert!(
                        (cube.at(s, i, j) - want).abs() < 1e-9,
                        "s={s} pair=({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn cube_matrix_snapshot_consistent() {
        let series = synthetic_series(5, 40);
        let cube = ParallelCorrEngine::new(CorrType::Quadrant)
            .cube(&series, 15)
            .unwrap();
        let snap = cube.matrix_at(20);
        assert!(snap.has_unit_diagonal(0.0));
        for i in 1..5 {
            for j in 0..i {
                assert_eq!(snap.get(i, j), cube.at(20, i, j));
            }
        }
    }

    #[test]
    fn cube_too_short_day_returns_none() {
        let series = synthetic_series(3, 10);
        assert!(ParallelCorrEngine::new(CorrType::Pearson)
            .cube(&series, 11)
            .is_none());
    }

    #[test]
    fn cube_parallel_deterministic_across_thread_counts() {
        let series = synthetic_series(7, 60);
        let eng = ParallelCorrEngine::new(CorrType::Maronna);
        let par = eng.cube(&series, 20).unwrap();
        let seq = eng.cube_seq(&series, 20).unwrap();
        assert_eq!(par.data, seq.data, "thread count must not change results");
    }

    #[test]
    fn psd_repair_engages() {
        // Quadrant matrices over short windows are routinely non-PSD; with
        // repair enabled the output must always pass the Cholesky test.
        let series = synthetic_series(12, 30);
        let windows: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
        let m = ParallelCorrEngine::new(CorrType::Quadrant)
            .with_psd_repair()
            .matrix(&windows);
        assert!(psd::is_psd(&m, 1e-8), "repaired matrix must be PSD");
    }

    #[test]
    fn full_matrix_bytes_accounts_memory_wall() {
        // Paper: 61x61 matrices, ds=30s, M=100 -> 680 matrices/day.
        let series = synthetic_series(3, 100);
        let cube = ParallelCorrEngine::new(CorrType::Pearson)
            .cube(&series, 21)
            .unwrap();
        assert_eq!(
            cube.full_matrix_bytes(),
            cube.steps() * 9 * std::mem::size_of::<f64>()
        );
    }
}
