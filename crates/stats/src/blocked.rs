//! Cache-blocked all-pairs Pearson: standardize, then tiled `Z·Zᵀ`.
//!
//! The per-pair formulation of an all-pairs correlation matrix re-derives
//! each stock's mean and variance `n-1` times and streams both windows
//! through the FPU with five running sums per pair. This kernel instead
//! z-scores each stock's window **once** into an `n×m` buffer `Z` scaled so
//! that `corr(i, j) = z_i · z_j`, then computes the matrix as a symmetric
//! product `Z·Zᵀ` over cache-sized row-block pairs: a tile keeps two small
//! groups of standardized rows hot in L1/L2 while every pair inside the
//! tile reduces to a single fused dot product.
//!
//! Parallelism is over row blocks (each owns a contiguous slice of the
//! packed lower-triangular output), so results are bit-identical at any
//! thread count — the tiling changes *where* work happens, never the
//! per-entry arithmetic.

use rayon::prelude::*;

use crate::correlation::clamp_corr;
use crate::matrix::SymMatrix;
use crate::pearson::standardize_into;
use crate::simd;

/// Rows per block. Two blocks of standardized windows (`2 × 32 × M × 8`
/// bytes ≈ 50 KiB at the paper's M=100) sit comfortably in L2 while the
/// inner pair loop reuses each row `block` times from L1.
pub const DEFAULT_BLOCK: usize = 32;

#[inline]
fn tri(k: usize) -> usize {
    k * (k + 1) / 2
}

/// Fused dot product with four independent accumulator lanes, dispatched
/// to AVX2 where available ([`crate::simd::dot`]). The lane split changes
/// summation order deterministically and identically on every call and on
/// every backend, so SIMD-on and scalar-fallback matrices are bit-equal.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    simd::dot(a, b)
}

/// All-pairs Pearson matrix of the given windows via the blocked kernel,
/// with the default tile size.
///
/// Degenerate (zero-variance) windows standardize to zero rows, so their
/// correlations come out 0 — the same convention as the per-pair path.
///
/// # Panics
/// Panics if windows have unequal lengths.
pub fn corr_matrix_blocked(windows: &[&[f64]], parallel: bool) -> SymMatrix {
    corr_matrix_blocked_with(windows, DEFAULT_BLOCK, parallel)
}

/// [`corr_matrix_blocked`] with an explicit row-block size.
///
/// # Panics
/// Panics if `block == 0` or windows have unequal lengths.
pub fn corr_matrix_blocked_with(windows: &[&[f64]], block: usize, parallel: bool) -> SymMatrix {
    assert!(block > 0, "block size must be positive");
    let n = windows.len();
    let m = windows.first().map(|w| w.len()).unwrap_or(0);
    assert!(
        windows.iter().all(|w| w.len() == m),
        "all stock windows must have equal length"
    );
    if n == 0 || m == 0 {
        return SymMatrix::identity(n);
    }

    // Phase 1: z-score every row once. After this, correlation is a plain
    // dot product of rows of `z`.
    let mut z = vec![0.0f64; n * m];
    if parallel {
        z.par_chunks_mut(m).enumerate().for_each(|(i, row)| {
            standardize_into(windows[i], row);
        });
    } else {
        for (i, row) in z.chunks_mut(m).enumerate() {
            standardize_into(windows[i], row);
        }
    }

    // Phase 2: tiled symmetric product into packed lower-triangular
    // storage. Row block b owns packed rows [b·block, (b+1)·block), a
    // contiguous slice, so blocks can fill in parallel without overlap.
    let mut out = SymMatrix::zeros(n);
    let n_blocks = n.div_ceil(block);
    {
        let mut rest = out.packed_mut();
        let mut row_chunks: Vec<(usize, &mut [f64])> = Vec::with_capacity(n_blocks);
        for b in 0..n_blocks {
            let r0 = b * block;
            let r1 = (r0 + block).min(n);
            let take = tri(r1) - tri(r0);
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            row_chunks.push((b, head));
            rest = tail;
        }
        let fill = |(b, chunk): (usize, &mut [f64])| {
            let r0 = b * block;
            let r1 = (r0 + block).min(n);
            let base = tri(r0);
            for cb in 0..=b {
                let c0 = cb * block;
                let c1 = (c0 + block).min(n);
                for i in r0..r1 {
                    let zi = &z[i * m..(i + 1) * m];
                    let row_off = tri(i) - base;
                    for j in c0..c1.min(i + 1) {
                        chunk[row_off + j] = if j == i {
                            1.0
                        } else {
                            clamp_corr(dot(zi, &z[j * m..(j + 1) * m]))
                        };
                    }
                }
            }
        };
        if parallel {
            row_chunks.into_par_iter().for_each(fill);
        } else {
            for item in row_chunks {
                fill(item);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pearson::pearson;

    fn windows(n: usize, m: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..m)
                    .map(|k| {
                        ((k as f64) * 0.83).sin() * 0.4
                            + (((k * (i + 2) * 17) % 23) as f64 - 11.0) * 0.04
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn blocked_matches_direct_pearson() {
        for (n, m) in [(5, 7), (13, 32), (61, 100)] {
            let w = windows(n, m);
            let views: Vec<&[f64]> = w.iter().map(|v| v.as_slice()).collect();
            let got = corr_matrix_blocked(&views, true);
            for i in 1..n {
                for j in 0..i {
                    let want = pearson(&w[i], &w[j]);
                    assert!(
                        (got.get(i, j) - want).abs() < 1e-12,
                        "n={n} m={m} pair=({i},{j})"
                    );
                }
            }
            assert!(got.has_unit_diagonal(0.0));
        }
    }

    #[test]
    fn every_block_size_gives_identical_entries() {
        let w = windows(23, 40);
        let views: Vec<&[f64]> = w.iter().map(|v| v.as_slice()).collect();
        let reference = corr_matrix_blocked_with(&views, 1, false);
        for block in [2, 3, 7, 16, 23, 64] {
            let got = corr_matrix_blocked_with(&views, block, false);
            // Tiling only reorders the tile schedule, never the per-entry
            // arithmetic, so any block size is bit-identical.
            assert_eq!(got.packed(), reference.packed(), "block={block}");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let w = windows(37, 64);
        let views: Vec<&[f64]> = w.iter().map(|v| v.as_slice()).collect();
        let par = corr_matrix_blocked(&views, true);
        let seq = corr_matrix_blocked(&views, false);
        assert_eq!(par.packed(), seq.packed());
    }

    #[test]
    fn degenerate_rows_correlate_to_zero() {
        let mut w = windows(4, 12);
        w[2] = vec![3.25; 12]; // zero variance
        let views: Vec<&[f64]> = w.iter().map(|v| v.as_slice()).collect();
        let got = corr_matrix_blocked(&views, false);
        for j in 0..4 {
            if j != 2 {
                assert_eq!(got.get(2, j), 0.0);
            }
        }
        assert_eq!(got.get(2, 2), 1.0, "diagonal stays exactly 1");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let none: Vec<&[f64]> = Vec::new();
        assert_eq!(corr_matrix_blocked(&none, false).n(), 0);
        let one = [[1.0, 2.0, 3.0]];
        let views: Vec<&[f64]> = one.iter().map(|v| v.as_slice()).collect();
        let m = corr_matrix_blocked(&views, false);
        assert_eq!(m.n(), 1);
        assert_eq!(m.get(0, 0), 1.0);
    }
}
