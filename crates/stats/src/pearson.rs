//! Pearson product-moment correlation: batch and O(1) sliding-window forms.
//!
//! The sliding form is what makes Approach 3 viable: at each interval `s` the
//! engine needs the correlation of the last `M` log-returns for every pair.
//! Recomputing from scratch costs O(M) per pair per step; maintaining the
//! five running sums (Σx, Σy, Σx², Σy², Σxy) costs O(1) per step per pair.

use crate::correlation::{clamp_corr, CorrelationMeasure};

/// Stateless batch Pearson estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct PearsonEstimator;

/// Batch Pearson correlation of two equal-length slices.
///
/// Returns 0 for degenerate inputs (length < 2 or zero variance in either
/// series). Result is clamped to `[-1, 1]`.
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let y = [2.0, 1.0, 4.0, 3.0, 5.0];
/// assert!((stats::pearson::pearson(&x, &y) - 0.8).abs() < 1e-12);
/// ```
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = x.iter().sum::<f64>() / nf;
    let mean_y = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for k in 0..n {
        let dx = x[k] - mean_x;
        let dy = y[k] - mean_y;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    clamp_corr(sxy / (sxx * syy).sqrt())
}

impl CorrelationMeasure for PearsonEstimator {
    fn correlation(&self, x: &[f64], y: &[f64]) -> f64 {
        pearson(x, y)
    }

    fn name(&self) -> &'static str {
        "Pearson"
    }
}

/// Sliding-window Pearson over a fixed window of `M` paired observations.
///
/// `push` is O(1); `correlation()` reads the current window estimate.
/// Running sums are refreshed from the retained window periodically to bound
/// cancellation drift across a full trading day.
#[derive(Debug, Clone)]
pub struct SlidingPearson {
    m: usize,
    xs: Vec<f64>,
    ys: Vec<f64>,
    head: usize,
    len: usize,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_yy: f64,
    sum_xy: f64,
    pushes_since_refresh: usize,
}

impl SlidingPearson {
    /// Create a sliding estimator over windows of `m` observations.
    ///
    /// # Panics
    /// Panics if `m < 2` (a correlation needs at least two points).
    pub fn new(m: usize) -> Self {
        assert!(m >= 2, "sliding window must hold at least 2 observations");
        SlidingPearson {
            m,
            xs: vec![0.0; m],
            ys: vec![0.0; m],
            head: 0,
            len: 0,
            sum_x: 0.0,
            sum_y: 0.0,
            sum_xx: 0.0,
            sum_yy: 0.0,
            sum_xy: 0.0,
            pushes_since_refresh: 0,
        }
    }

    /// Window size `M`.
    pub fn window(&self) -> usize {
        self.m
    }

    /// Number of paired observations currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no observations are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once a full window of `M` observations is held.
    pub fn is_full(&self) -> bool {
        self.len == self.m
    }

    /// Push a paired observation, evicting the oldest when full.
    pub fn push(&mut self, x: f64, y: f64) {
        if self.len == self.m {
            let ox = self.xs[self.head];
            let oy = self.ys[self.head];
            self.sum_x -= ox;
            self.sum_y -= oy;
            self.sum_xx -= ox * ox;
            self.sum_yy -= oy * oy;
            self.sum_xy -= ox * oy;
        } else {
            self.len += 1;
        }
        self.xs[self.head] = x;
        self.ys[self.head] = y;
        self.head = (self.head + 1) % self.m;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_yy += y * y;
        self.sum_xy += x * y;

        self.pushes_since_refresh += 1;
        if self.pushes_since_refresh >= 65_536 {
            self.refresh();
        }
    }

    fn refresh(&mut self) {
        self.pushes_since_refresh = 0;
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let start = (self.head + self.m - self.len) % self.m;
        for k in 0..self.len {
            let i = (start + k) % self.m;
            let (x, y) = (self.xs[i], self.ys[i]);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        self.sum_x = sx;
        self.sum_y = sy;
        self.sum_xx = sxx;
        self.sum_yy = syy;
        self.sum_xy = sxy;
    }

    /// Current window correlation (0 until at least 2 observations, or on
    /// zero variance).
    pub fn correlation(&self) -> f64 {
        if self.len < 2 {
            return 0.0;
        }
        let n = self.len as f64;
        let cov = self.sum_xy - self.sum_x * self.sum_y / n;
        let vx = self.sum_xx - self.sum_x * self.sum_x / n;
        let vy = self.sum_yy - self.sum_y * self.sum_y / n;
        if vx <= 0.0 || vy <= 0.0 {
            return 0.0;
        }
        clamp_corr(cov / (vx * vy).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_perfect_positive_negative() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y_pos: Vec<f64> = x.iter().map(|v| 2.0 * v - 5.0).collect();
        let y_neg: Vec<f64> = x.iter().map(|v| -0.5 * v + 3.0).collect();
        assert!((pearson(&x, &y_pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_known_value() {
        // Hand-computed example.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        // mean_x = 3, mean_y = 3; sxy = 8, sxx = 10, syy = 10 -> r = 0.8
        assert!((pearson(&x, &y) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn batch_symmetry_and_invariance() {
        let x = [0.3, -1.2, 2.5, 0.1, -0.7, 1.9];
        let y = [1.1, -0.4, 1.7, 0.2, -1.5, 0.8];
        let r = pearson(&x, &y);
        assert!((pearson(&y, &x) - r).abs() < 1e-12, "symmetric");
        // Affine invariance with positive scale.
        let x2: Vec<f64> = x.iter().map(|v| 7.0 * v + 100.0).collect();
        assert!((pearson(&x2, &y) - r).abs() < 1e-12, "affine invariant");
        // Negative scale flips the sign.
        let x3: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x3, &y) + r).abs() < 1e-12);
    }

    #[test]
    fn sliding_matches_batch_at_every_step() {
        // Deterministic pseudo-random-ish sequences.
        let xs: Vec<f64> = (0..200).map(|i| ((i * 37 % 101) as f64).sin()).collect();
        let ys: Vec<f64> = (0..200)
            .map(|i| ((i * 53 % 97) as f64).cos() + 0.3 * ((i * 37 % 101) as f64).sin())
            .collect();
        let m = 30;
        let mut sl = SlidingPearson::new(m);
        for k in 0..xs.len() {
            sl.push(xs[k], ys[k]);
            let lo = k + 1 - sl.len();
            let want = pearson(&xs[lo..=k], &ys[lo..=k]);
            assert!(
                (sl.correlation() - want).abs() < 1e-9,
                "step {k}: sliding {} vs batch {want}",
                sl.correlation()
            );
        }
    }

    #[test]
    fn sliding_partial_window() {
        let mut sl = SlidingPearson::new(10);
        assert_eq!(sl.correlation(), 0.0);
        sl.push(1.0, 1.0);
        assert_eq!(sl.correlation(), 0.0, "single point has no correlation");
        sl.push(2.0, 2.0);
        assert!((sl.correlation() - 1.0).abs() < 1e-12);
        assert!(!sl.is_full());
        assert_eq!(sl.len(), 2);
    }

    #[test]
    fn sliding_long_stream_no_drift() {
        let mut sl = SlidingPearson::new(50);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..150_000usize {
            // Offset stresses cancellation in the running sums.
            let x = 1e3 + ((i * 29 % 83) as f64) * 0.01;
            let y = 1e3 + ((i * 31 % 89) as f64) * 0.01 + 0.002 * x;
            xs.push(x);
            ys.push(y);
            sl.push(x, y);
        }
        let k = xs.len() - 1;
        let want = pearson(&xs[k - 49..=k], &ys[k - 49..=k]);
        assert!(
            (sl.correlation() - want).abs() < 1e-6,
            "drifted: {} vs {}",
            sl.correlation(),
            want
        );
    }

    #[test]
    fn zero_variance_returns_zero() {
        let flat = vec![5.0; 10];
        let ramp: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&flat, &ramp), 0.0);
        let mut sl = SlidingPearson::new(5);
        for i in 0..5 {
            sl.push(5.0, i as f64);
        }
        assert_eq!(sl.correlation(), 0.0);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }
}
