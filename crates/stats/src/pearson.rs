//! Pearson product-moment correlation: batch and O(1) sliding-window forms.
//!
//! The sliding form is what makes Approach 3 viable: at each interval `s` the
//! engine needs the correlation of the last `M` log-returns for every pair.
//! Recomputing from scratch costs O(M) per pair per step; maintaining the
//! five running sums (Σx, Σy, Σx², Σy², Σxy) costs O(1) per step per pair.

use crate::correlation::{clamp_corr, CorrelationMeasure};

/// How many sliding updates the incremental kernels absorb before
/// re-deriving their running sums from the retained window, bounding
/// cancellation drift over unboundedly long streams.
pub(crate) const REFRESH_EVERY: usize = 65_536;

/// Stateless batch Pearson estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct PearsonEstimator;

/// Batch Pearson correlation of two equal-length slices.
///
/// Returns 0 for degenerate inputs (length < 2 or zero variance in either
/// series). Result is clamped to `[-1, 1]`.
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let y = [2.0, 1.0, 4.0, 3.0, 5.0];
/// assert!((stats::pearson::pearson(&x, &y) - 0.8).abs() < 1e-12);
/// ```
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = x.iter().sum::<f64>() / nf;
    let mean_y = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for k in 0..n {
        let dx = x[k] - mean_x;
        let dy = y[k] - mean_y;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    clamp_corr(sxy / (sxx * syy).sqrt())
}

/// Standardize a window into `out` so that the plain dot product of two
/// standardized windows *is* their Pearson correlation:
/// `out[k] = (x[k] - mean) / sqrt(Σ (x - mean)²)`.
///
/// This is the preprocessing step of the blocked all-pairs kernel
/// (`crate::blocked`): z-scoring each stock once turns the `n(n-1)/2`
/// correlations into one symmetric matrix product `Z·Zᵀ`.
///
/// Degenerate windows (length < 2 or zero variance) are zero-filled and
/// reported by returning `false`, so their dot product with anything is 0 —
/// the same convention as [`pearson`].
///
/// # Panics
/// Panics if `out.len() != x.len()`.
pub fn standardize_into(x: &[f64], out: &mut [f64]) -> bool {
    assert_eq!(x.len(), out.len(), "standardize: length mismatch");
    let n = x.len();
    if n < 2 {
        out.fill(0.0);
        return false;
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let mut sxx = 0.0;
    for &v in x {
        let d = v - mean;
        sxx += d * d;
    }
    if sxx <= 0.0 {
        out.fill(0.0);
        return false;
    }
    let inv = 1.0 / sxx.sqrt();
    for (o, &v) in out.iter_mut().zip(x) {
        *o = (v - mean) * inv;
    }
    true
}

/// Per-stock sliding-window first and second moments over a full series:
/// for every step `k` (window `x[k..k+m]`), the windowed sum and the
/// inverse square root of the windowed sum of squared deviations.
///
/// These are the stock-indexed half of the incremental all-pairs sweep:
/// a correlation needs `(Σx, Σy, Σx², Σy², Σxy)`, and only the cross term
/// `Σxy` is pair-specific. Computing the four per-stock terms once turns
/// the per-pair cost of a sliding step into two multiply-adds
/// ([`cross_series`]), which is what lets [`crate::parallel`] build a
/// day's cube in O(n·S + n²·S) instead of O(n²·S) *with a ~5× larger
/// constant* plus per-pair window bookkeeping.
#[derive(Debug, Clone)]
pub struct WindowMoments {
    /// Windowed sum `Σ x` at each step.
    sx: Vec<f64>,
    /// `1 / sqrt(Σx² - (Σx)²/m)` at each step, or 0 for a degenerate
    /// (zero-variance) window — the same "correlation is 0" convention as
    /// [`pearson`].
    isv: Vec<f64>,
}

impl WindowMoments {
    /// Sliding moments of every length-`m` window of `x`.
    ///
    /// # Panics
    /// Panics if `m < 2` or `x.len() < m`.
    pub fn new(x: &[f64], m: usize) -> Self {
        assert!(m >= 2 && x.len() >= m, "window larger than series");
        let steps = x.len() - m + 1;
        let inv_m = 1.0 / m as f64;
        let mut sx = Vec::with_capacity(steps);
        let mut isv = Vec::with_capacity(steps);
        let (mut sum, mut sumsq) = (0.0, 0.0);
        let mut since_refresh = 0usize;
        for k in 0..x.len() {
            if k >= m {
                let old = x[k - m];
                sum -= old;
                sumsq -= old * old;
            }
            let v = x[k];
            sum += v;
            sumsq += v * v;
            since_refresh += 1;
            if since_refresh >= REFRESH_EVERY {
                since_refresh = 0;
                sum = 0.0;
                sumsq = 0.0;
                for &w in &x[k + 1 - m..=k] {
                    sum += w;
                    sumsq += w * w;
                }
            }
            if k + 1 >= m {
                let var = sumsq - sum * sum * inv_m;
                sx.push(sum);
                isv.push(if var > 0.0 { 1.0 / var.sqrt() } else { 0.0 });
            }
        }
        WindowMoments { sx, isv }
    }

    /// Number of steps (full windows) covered.
    pub fn steps(&self) -> usize {
        self.sx.len()
    }

    /// Windowed sum at a step.
    #[inline]
    pub fn sum(&self, step: usize) -> f64 {
        self.sx[step]
    }

    /// Inverse-sqrt windowed variance mass at a step (0 when degenerate).
    #[inline]
    pub fn inv_sqrt_var(&self, step: usize) -> f64 {
        self.isv[step]
    }
}

/// One pair's full sliding correlation series from precomputed per-stock
/// moments: maintains the running cross-product `Σ x·y` with one
/// subtract (leaving observation) and one add (entering observation) per
/// step, and combines it with the shared moments.
///
/// This is THE Pearson arithmetic for batch sweeps: both
/// [`crate::parallel::pair_series`] (Approach 2, one pair at a time) and
/// [`crate::parallel::ParallelCorrEngine::cube`] (Approach 3, shared
/// moments) call it, so the two produce bit-identical series.
///
/// # Panics
/// Panics if lengths mismatch or the moments don't match `out.len()`.
pub fn cross_series(
    x: &[f64],
    y: &[f64],
    m: usize,
    mx: &WindowMoments,
    my: &WindowMoments,
    out: &mut [f64],
) {
    assert_eq!(x.len(), y.len(), "pair series length mismatch");
    assert!(m >= 2 && x.len() >= m, "window larger than series");
    assert_eq!(out.len(), x.len() - m + 1, "output length mismatch");
    assert_eq!(mx.steps(), out.len(), "x moments mismatch");
    assert_eq!(my.steps(), out.len(), "y moments mismatch");
    let inv_m = 1.0 / m as f64;
    let mut c = 0.0;
    let mut since_refresh = 0usize;
    for k in 0..x.len() {
        if k >= m {
            c -= x[k - m] * y[k - m];
        }
        c += x[k] * y[k];
        since_refresh += 1;
        if since_refresh >= REFRESH_EVERY {
            since_refresh = 0;
            c = 0.0;
            for (xv, yv) in x[k + 1 - m..=k].iter().zip(&y[k + 1 - m..=k]) {
                c += xv * yv;
            }
        }
        if k + 1 >= m {
            let step = k + 1 - m;
            let cov = c - mx.sx[step] * my.sx[step] * inv_m;
            out[step] = clamp_corr(cov * mx.isv[step] * my.isv[step]);
        }
    }
}

impl CorrelationMeasure for PearsonEstimator {
    fn correlation(&self, x: &[f64], y: &[f64]) -> f64 {
        pearson(x, y)
    }

    fn name(&self) -> &'static str {
        "Pearson"
    }
}

/// Sliding-window Pearson over a fixed window of `M` paired observations.
///
/// `push` is O(1); `correlation()` reads the current window estimate.
///
/// Unlike the all-pairs kernels (which see log returns, already centred
/// near zero), this estimator may be fed raw price levels, where the
/// `Σx² - (Σx)²/n` identity cancels catastrophically: at a 1e8 level the
/// squared sums live near 1e16, one ulp of which is 2.0. All five running
/// sums are therefore kept over *anchor-shifted* values (`x - ax`,
/// `y - ay`, anchors pinned at the first observation and re-pinned at every
/// refresh) — covariance and variances are shift-invariant, so the
/// correlation is unchanged while the arithmetic happens at noise scale.
/// Sums are additionally refreshed from the retained window every
/// [`REFRESH_EVERY`] pushes to bound eviction-churn drift.
#[derive(Debug, Clone)]
pub struct SlidingPearson {
    m: usize,
    xs: Vec<f64>,
    ys: Vec<f64>,
    head: usize,
    len: usize,
    /// Anchors; all sums are over `(x - ax, y - ay)`.
    ax: f64,
    ay: f64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_yy: f64,
    sum_xy: f64,
    pushes_since_refresh: usize,
}

impl SlidingPearson {
    /// Create a sliding estimator over windows of `m` observations.
    ///
    /// # Panics
    /// Panics if `m < 2` (a correlation needs at least two points).
    pub fn new(m: usize) -> Self {
        assert!(m >= 2, "sliding window must hold at least 2 observations");
        SlidingPearson {
            m,
            xs: vec![0.0; m],
            ys: vec![0.0; m],
            head: 0,
            len: 0,
            ax: 0.0,
            ay: 0.0,
            sum_x: 0.0,
            sum_y: 0.0,
            sum_xx: 0.0,
            sum_yy: 0.0,
            sum_xy: 0.0,
            pushes_since_refresh: 0,
        }
    }

    /// Window size `M`.
    pub fn window(&self) -> usize {
        self.m
    }

    /// Number of paired observations currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no observations are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once a full window of `M` observations is held.
    pub fn is_full(&self) -> bool {
        self.len == self.m
    }

    /// Push a paired observation, evicting the oldest when full.
    pub fn push(&mut self, x: f64, y: f64) {
        if self.len == 0 {
            self.ax = x;
            self.ay = y;
        }
        if self.len == self.m {
            let ox = self.xs[self.head] - self.ax;
            let oy = self.ys[self.head] - self.ay;
            self.sum_x -= ox;
            self.sum_y -= oy;
            self.sum_xx -= ox * ox;
            self.sum_yy -= oy * oy;
            self.sum_xy -= ox * oy;
        } else {
            self.len += 1;
        }
        self.xs[self.head] = x;
        self.ys[self.head] = y;
        self.head = (self.head + 1) % self.m;
        let dx = x - self.ax;
        let dy = y - self.ay;
        self.sum_x += dx;
        self.sum_y += dy;
        self.sum_xx += dx * dx;
        self.sum_yy += dy * dy;
        self.sum_xy += dx * dy;

        self.pushes_since_refresh += 1;
        if self.pushes_since_refresh >= REFRESH_EVERY {
            self.refresh();
        }
    }

    fn refresh(&mut self) {
        self.pushes_since_refresh = 0;
        let start = (self.head + self.m - self.len) % self.m;
        // Re-pin the anchors to the oldest retained observation so the
        // shifted values stay at noise scale even if prices drift.
        if self.len > 0 {
            self.ax = self.xs[start];
            self.ay = self.ys[start];
        }
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for k in 0..self.len {
            let i = (start + k) % self.m;
            let (x, y) = (self.xs[i] - self.ax, self.ys[i] - self.ay);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        self.sum_x = sx;
        self.sum_y = sy;
        self.sum_xx = sxx;
        self.sum_yy = syy;
        self.sum_xy = sxy;
    }

    /// Current window correlation (0 until at least 2 observations, or on
    /// zero variance).
    pub fn correlation(&self) -> f64 {
        if self.len < 2 {
            return 0.0;
        }
        let n = self.len as f64;
        let cov = self.sum_xy - self.sum_x * self.sum_y / n;
        let vx = self.sum_xx - self.sum_x * self.sum_x / n;
        let vy = self.sum_yy - self.sum_y * self.sum_y / n;
        if vx <= 0.0 || vy <= 0.0 {
            return 0.0;
        }
        clamp_corr(cov / (vx * vy).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_perfect_positive_negative() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y_pos: Vec<f64> = x.iter().map(|v| 2.0 * v - 5.0).collect();
        let y_neg: Vec<f64> = x.iter().map(|v| -0.5 * v + 3.0).collect();
        assert!((pearson(&x, &y_pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_known_value() {
        // Hand-computed example.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        // mean_x = 3, mean_y = 3; sxy = 8, sxx = 10, syy = 10 -> r = 0.8
        assert!((pearson(&x, &y) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn batch_symmetry_and_invariance() {
        let x = [0.3, -1.2, 2.5, 0.1, -0.7, 1.9];
        let y = [1.1, -0.4, 1.7, 0.2, -1.5, 0.8];
        let r = pearson(&x, &y);
        assert!((pearson(&y, &x) - r).abs() < 1e-12, "symmetric");
        // Affine invariance with positive scale.
        let x2: Vec<f64> = x.iter().map(|v| 7.0 * v + 100.0).collect();
        assert!((pearson(&x2, &y) - r).abs() < 1e-12, "affine invariant");
        // Negative scale flips the sign.
        let x3: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x3, &y) + r).abs() < 1e-12);
    }

    #[test]
    fn sliding_matches_batch_at_every_step() {
        // Deterministic pseudo-random-ish sequences.
        let xs: Vec<f64> = (0..200).map(|i| ((i * 37 % 101) as f64).sin()).collect();
        let ys: Vec<f64> = (0..200)
            .map(|i| ((i * 53 % 97) as f64).cos() + 0.3 * ((i * 37 % 101) as f64).sin())
            .collect();
        let m = 30;
        let mut sl = SlidingPearson::new(m);
        for k in 0..xs.len() {
            sl.push(xs[k], ys[k]);
            let lo = k + 1 - sl.len();
            let want = pearson(&xs[lo..=k], &ys[lo..=k]);
            assert!(
                (sl.correlation() - want).abs() < 1e-9,
                "step {k}: sliding {} vs batch {want}",
                sl.correlation()
            );
        }
    }

    #[test]
    fn sliding_partial_window() {
        let mut sl = SlidingPearson::new(10);
        assert_eq!(sl.correlation(), 0.0);
        sl.push(1.0, 1.0);
        assert_eq!(sl.correlation(), 0.0, "single point has no correlation");
        sl.push(2.0, 2.0);
        assert!((sl.correlation() - 1.0).abs() < 1e-12);
        assert!(!sl.is_full());
        assert_eq!(sl.len(), 2);
    }

    #[test]
    fn sliding_long_stream_no_drift() {
        let mut sl = SlidingPearson::new(50);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..150_000usize {
            // Offset stresses cancellation in the running sums.
            let x = 1e3 + ((i * 29 % 83) as f64) * 0.01;
            let y = 1e3 + ((i * 31 % 89) as f64) * 0.01 + 0.002 * x;
            xs.push(x);
            ys.push(y);
            sl.push(x, y);
        }
        let k = xs.len() - 1;
        let want = pearson(&xs[k - 49..=k], &ys[k - 49..=k]);
        assert!(
            (sl.correlation() - want).abs() < 1e-6,
            "drifted: {} vs {}",
            sl.correlation(),
            want
        );
    }

    #[test]
    fn sliding_survives_extreme_price_levels() {
        // Regression for catastrophic cancellation: pre-anchor-shift, raw
        // sums at a 1e8 price level put Σx² near 1e16 (one ulp = 2.0) and
        // the correlation collapsed to garbage or exactly 0. With the sums
        // anchored at the first observation the arithmetic happens at the
        // scale of the noise.
        let m = 40;
        let mut sl = SlidingPearson::new(m);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..5_000usize {
            let nx = ((i * 29 % 83) as f64) * 0.01;
            let ny = ((i * 31 % 89) as f64) * 0.01 + 2.0 * nx;
            xs.push(1e8 + nx);
            ys.push(2e8 + ny);
            sl.push(1e8 + nx, 2e8 + ny);
        }
        let k = xs.len() - 1;
        let want = pearson(&xs[k + 1 - m..=k], &ys[k + 1 - m..=k]);
        assert!(
            want.abs() > 0.1,
            "sanity: the designed correlation is macroscopic ({want})"
        );
        assert!(
            (sl.correlation() - want).abs() < 1e-9,
            "cancelled: {} vs {}",
            sl.correlation(),
            want
        );
    }

    #[test]
    fn zero_variance_returns_zero() {
        let flat = vec![5.0; 10];
        let ramp: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&flat, &ramp), 0.0);
        let mut sl = SlidingPearson::new(5);
        for i in 0..5 {
            sl.push(5.0, i as f64);
        }
        assert_eq!(sl.correlation(), 0.0);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }
}
