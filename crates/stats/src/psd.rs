//! Positive semi-definiteness: checking and eigenvalue-clipping repair.
//!
//! The paper's Approach 2 caveat: "calculating the Maronna correlation
//! coefficients independently no longer assures the resulting matrix is
//! positive semi-definite". A non-PSD "correlation" matrix breaks anything
//! downstream that treats it as a covariance (portfolio risk, basket
//! optimisation, Cholesky-based simulation).
//!
//! The standard fix — and the one implemented here — is spectral clipping:
//! eigendecompose, clip negative eigenvalues to a small floor, reassemble,
//! and rescale back to unit diagonal. The result is the nearest-in-spirit
//! PSD correlation matrix (a cheap approximation of Higham's alternating
//! projections, adequate for trading thresholds).

use crate::linalg::{jacobi_eigen, Cholesky};
use crate::matrix::SymMatrix;

/// Configuration for PSD repair.
#[derive(Debug, Clone, Copy)]
pub struct RepairConfig {
    /// Eigenvalue floor after clipping (>= 0). A strictly positive floor
    /// yields a positive-*definite* result, which Cholesky-based consumers
    /// need.
    pub eigen_floor: f64,
    /// Jacobi sweep budget.
    pub max_sweeps: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            eigen_floor: 1e-10,
            max_sweeps: 40,
        }
    }
}

/// Check positive semi-definiteness via attempted Cholesky factorisation
/// with tolerance `-tol` on pivots (i.e. eigenvalues slightly negative due
/// to rounding still pass).
pub fn is_psd(m: &SymMatrix, tol: f64) -> bool {
    // Shift by tol*I so matrices with tiny negative eigenvalues pass, then
    // Cholesky must succeed.
    let n = m.n();
    let mut shifted = m.clone();
    for i in 0..n {
        shifted.set(i, i, m.get(i, i) + tol);
    }
    Cholesky::factor(&shifted, 0.0).is_ok()
}

/// Smallest eigenvalue (Jacobi); the quantitative PSD diagnostic.
pub fn min_eigenvalue(m: &SymMatrix) -> f64 {
    jacobi_eigen(m, 40).min_value()
}

/// Outcome of a repair pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairReport {
    /// Whether any eigenvalue was clipped (false = matrix was already PSD).
    pub repaired: bool,
    /// Smallest eigenvalue before repair.
    pub min_eigen_before: f64,
    /// Number of eigenvalues clipped.
    pub clipped: usize,
}

/// Repair a correlation matrix to PSD in place by eigenvalue clipping,
/// preserving the unit diagonal. No-op (reported) when already PSD.
///
/// Clipping followed by the unit-diagonal rescale is not an exact
/// projection (the rescale perturbs the spectrum), so the pass is
/// repeated — a light-weight version of Higham's alternating projections
/// — until the smallest eigenvalue clears the floor (within a small
/// tolerance band, making the operation idempotent) or a pass budget is
/// exhausted. Two or three passes suffice in practice.
pub fn repair_correlation(m: &mut SymMatrix, cfg: RepairConfig) -> RepairReport {
    const ACCEPT_SLACK: f64 = 1e-9;
    const MAX_PASSES: usize = 20;
    let n = m.n();
    let mut report = RepairReport {
        repaired: false,
        min_eigen_before: 0.0,
        clipped: 0,
    };
    for pass in 0..MAX_PASSES {
        let eig = jacobi_eigen(m, cfg.max_sweeps);
        let min_now = eig.min_value();
        if pass == 0 {
            report.min_eigen_before = min_now;
        }
        if min_now >= cfg.eigen_floor - ACCEPT_SLACK {
            return report;
        }
        report.repaired = true;
        let mut clipped = 0;
        let w: Vec<f64> = eig
            .values
            .iter()
            .map(|&v| {
                if v < cfg.eigen_floor {
                    clipped += 1;
                    cfg.eigen_floor
                } else {
                    v
                }
            })
            .collect();
        report.clipped += clipped;
        let rebuilt = eig.reconstruct_with(&w);

        // Rescale to restore the unit diagonal: R[i][j]/sqrt(D[i] D[j]).
        let d: Vec<f64> = (0..n)
            .map(|i| rebuilt.get(i, i).max(1e-300).sqrt())
            .collect();
        for i in 0..n {
            for j in 0..=i {
                let v = if i == j {
                    1.0
                } else {
                    (rebuilt.get(i, j) / (d[i] * d[j])).clamp(-1.0, 1.0)
                };
                m.set(i, j, v);
            }
        }
    }
    report
}

/// Outcome of the Higham projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearestReport {
    /// Alternating-projection iterations performed.
    pub iterations: usize,
    /// Whether the iteration converged to tolerance.
    pub converged: bool,
    /// Frobenius distance from the input to the result.
    pub distance: f64,
}

/// Higham's nearest correlation matrix (alternating projections with
/// Dykstra's correction), in place.
///
/// Where [`repair_correlation`] is the fast "clip and rescale" heuristic
/// adequate for trading thresholds, this is the *optimal* repair: the
/// Frobenius-nearest correlation matrix (PSD, unit diagonal) to the
/// input. Costs one eigendecomposition per iteration (typically < 30);
/// the psd ablation bench compares both.
pub fn nearest_correlation(m: &mut SymMatrix, cfg: RepairConfig) -> NearestReport {
    const MAX_ITER: usize = 100;
    const TOL: f64 = 1e-8;
    let n = m.n();
    let original = m.clone();
    // Dykstra correction for the PSD projection.
    let mut ds = SymMatrix::zeros(n);
    let mut y = m.clone();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..MAX_ITER {
        iterations += 1;
        // R = Y - ΔS; X = P_psd(R).
        let mut r = y.clone();
        for i in 0..n {
            for j in 0..=i {
                r.set(i, j, y.get(i, j) - ds.get(i, j));
            }
        }
        let eig = jacobi_eigen(&r, cfg.max_sweeps);
        let w: Vec<f64> = eig.values.iter().map(|&v| v.max(0.0)).collect();
        let x = eig.reconstruct_with(&w);
        // ΔS = X - R.
        for i in 0..n {
            for j in 0..=i {
                ds.set(i, j, x.get(i, j) - r.get(i, j));
            }
        }
        // Y = P_unitdiag(X): overwrite the diagonal with ones.
        let mut y_next = x;
        for i in 0..n {
            y_next.set(i, i, 1.0);
        }
        let delta = y.frobenius_distance(&y_next);
        y = y_next;
        if delta < TOL {
            converged = true;
            break;
        }
    }

    // Clamp off-diagonals into [-1, 1] (numerically they can overshoot by
    // ulps) and write back.
    for i in 0..n {
        for j in 0..=i {
            let v = if i == j {
                1.0
            } else {
                y.get(i, j).clamp(-1.0, 1.0)
            };
            m.set(i, j, v);
        }
    }
    NearestReport {
        iterations,
        converged,
        distance: original.frobenius_distance(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infeasible_matrix() -> SymMatrix {
        // rho(0,1) = rho(1,2) = 0.9 with rho(0,2) = -0.9 cannot be PSD.
        SymMatrix::from_full(
            3,
            &[
                1.0, 0.9, -0.9, //
                0.9, 1.0, 0.9, //
                -0.9, 0.9, 1.0,
            ],
        )
    }

    #[test]
    fn identity_is_psd() {
        assert!(is_psd(&SymMatrix::identity(6), 1e-12));
    }

    #[test]
    fn infeasible_is_not_psd() {
        let m = infeasible_matrix();
        assert!(!is_psd(&m, 1e-8));
        assert!(min_eigenvalue(&m) < -0.1);
    }

    #[test]
    fn repair_noop_on_psd() {
        let mut m = SymMatrix::from_full(
            3,
            &[
                1.0, 0.5, 0.2, //
                0.5, 1.0, 0.3, //
                0.2, 0.3, 1.0,
            ],
        );
        let before = m.clone();
        let rep = repair_correlation(&mut m, RepairConfig::default());
        assert!(!rep.repaired);
        assert_eq!(rep.clipped, 0);
        assert!(m.frobenius_distance(&before) < 1e-12);
    }

    #[test]
    fn repair_fixes_infeasible() {
        let mut m = infeasible_matrix();
        let rep = repair_correlation(&mut m, RepairConfig::default());
        assert!(rep.repaired);
        assert!(rep.clipped >= 1);
        assert!(rep.min_eigen_before < 0.0);
        assert!(is_psd(&m, 1e-8), "repaired matrix PSD");
        assert!(m.has_unit_diagonal(1e-9), "unit diagonal preserved");
        assert!(m.entries_in_range(1e-9));
        // Repair should not wreck the feasible structure: signs preserved.
        assert!(m.get(0, 1) > 0.0);
        assert!(m.get(1, 2) > 0.0);
        assert!(m.get(0, 2) < 0.0);
    }

    #[test]
    fn repaired_matrix_supports_cholesky_simulation() {
        let mut m = infeasible_matrix();
        repair_correlation(&mut m, RepairConfig::default());
        // The strictly positive eigen floor makes this factorable.
        assert!(Cholesky::factor(&m, 0.0).is_ok());
    }

    #[test]
    fn higham_fixes_infeasible_and_is_optimal_ish() {
        let mut clipped = infeasible_matrix();
        repair_correlation(&mut clipped, RepairConfig::default());

        let mut higham = infeasible_matrix();
        let report = nearest_correlation(&mut higham, RepairConfig::default());
        assert!(report.converged, "iterations {}", report.iterations);
        assert!(is_psd(&higham, 1e-7), "Higham result must be PSD");
        assert!(higham.has_unit_diagonal(1e-9));
        assert!(higham.entries_in_range(1e-9));

        // Optimality: Higham is at least as close to the input as the
        // clip-and-rescale heuristic.
        let original = infeasible_matrix();
        let d_higham = original.frobenius_distance(&higham);
        let d_clip = original.frobenius_distance(&clipped);
        assert!(
            d_higham <= d_clip + 1e-9,
            "higham {d_higham} vs clip {d_clip}"
        );
        assert!((report.distance - d_higham).abs() < 1e-12);
    }

    #[test]
    fn higham_is_noop_on_valid_correlation_matrices() {
        let mut m = SymMatrix::from_full(
            3,
            &[
                1.0, 0.5, 0.2, //
                0.5, 1.0, 0.3, //
                0.2, 0.3, 1.0,
            ],
        );
        let before = m.clone();
        let report = nearest_correlation(&mut m, RepairConfig::default());
        assert!(report.converged);
        assert!(m.frobenius_distance(&before) < 1e-7);
        assert!(report.distance < 1e-7);
    }

    #[test]
    fn quadratic_form_nonnegative_after_repair() {
        let mut m = infeasible_matrix();
        // Before repair there is a direction with negative energy.
        let bad_dir = [1.0, -1.0, 1.0];
        assert!(m.quadratic_form(&bad_dir) < 0.0);
        repair_correlation(&mut m, RepairConfig::default());
        for dir in [
            [1.0, -1.0, 1.0],
            [1.0, 1.0, 1.0],
            [0.3, -2.0, 0.7],
            [5.0, 0.0, -5.0],
        ] {
            assert!(
                m.quadratic_form(&dir) >= -1e-9,
                "negative energy after repair in {dir:?}"
            );
        }
    }
}
