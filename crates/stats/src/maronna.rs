//! Maronna's robust bivariate M-estimator of location and scatter.
//!
//! Classical (Pearson) correlation is notoriously sensitive to the data
//! errors that pollute raw high-frequency quote streams. MarketMiner's
//! answer — following Maronna (1976) and the parallel formulation of
//! Chilson, Ng, Wagner and Zamar (*Algorithmica* 45(3), 2006) — is an
//! iteratively re-weighted estimate of the bivariate location `m` and
//! 2x2 scatter `S` of the paired series, from which the correlation is read
//! off as `rho = S12 / sqrt(S11 * S22)`.
//!
//! The iteration, for data `z_t = (x_t, y_t)`:
//!
//! 1. initialise `m` with coordinate-wise medians and `S` with squared
//!    normalised MADs;
//! 2. compute squared Mahalanobis distances `d_t = (z_t - m)' S^-1 (z_t - m)`;
//! 3. down-weight distant points with a Huber-type weight
//!    `u(d) = min(1, K / d)` (K = chi-square(2 df) 0.95 quantile);
//! 4. re-estimate `m` as the weighted mean and `S` as the weighted scatter
//!    about the new `m`;
//! 5. repeat until the relative change in `S` falls below tolerance.
//!
//! Because the correlation is scale-free, no consistency constant is needed:
//! any global scaling of `S` cancels in `rho`.
//!
//! Cost: O(iterations * M) per pair, roughly an order of magnitude more than
//! the O(1) sliding Pearson update — exactly the expense the paper's
//! Combined measure (see [`crate::combined`]) is designed to amortise, and
//! the reason the engine parallelises over pairs.

use crate::correlation::{clamp_corr, CorrelationMeasure};
use crate::simd;

/// chi-square(2 df) 0.95 quantile — the conventional Huber cut-off for
/// bivariate Mahalanobis distances.
pub const DEFAULT_HUBER_CUTOFF: f64 = 5.991_464_547_107_979;

/// Configuration for the Maronna iteration.
#[derive(Debug, Clone, Copy)]
pub struct MaronnaEstimator {
    /// Huber cut-off `K` on squared Mahalanobis distance.
    pub cutoff: f64,
    /// Maximum number of re-weighting iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the relative Frobenius change of `S`.
    pub tol: f64,
}

impl Default for MaronnaEstimator {
    fn default() -> Self {
        MaronnaEstimator {
            cutoff: DEFAULT_HUBER_CUTOFF,
            max_iter: 50,
            tol: 1e-7,
        }
    }
}

/// A warm-start seed: `(location (mx, my), scatter (s11, s12, s22))`,
/// as produced by a previous [`MaronnaFit`].
pub type MaronnaSeed = ((f64, f64), (f64, f64, f64));

/// Result of a full Maronna fit: robust location, scatter and correlation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaronnaFit {
    /// Robust location estimate (mx, my).
    pub location: (f64, f64),
    /// Robust scatter matrix entries (s11, s12, s22).
    pub scatter: (f64, f64, f64),
    /// Robust correlation in [-1, 1].
    pub correlation: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the scatter iteration converged within tolerance.
    pub converged: bool,
}

/// The "no evidence" fit shared by every degenerate-input early exit.
fn degenerate_fit(mx: f64, my: f64) -> MaronnaFit {
    MaronnaFit {
        location: (mx, my),
        scatter: (0.0, 0.0, 0.0),
        correlation: 0.0,
        iterations: 0,
        converged: false,
    }
}

pub(crate) fn median_of(mut v: Vec<f64>) -> f64 {
    let n = v.len();
    debug_assert!(n > 0);
    let mid = n / 2;
    let (_, &mut hi, _) = v.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).unwrap());
    if n % 2 == 1 {
        hi
    } else {
        let lo = v[..mid].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        0.5 * (lo + hi)
    }
}

/// Normalised median absolute deviation (consistent for the Gaussian
/// standard deviation: MAD / 0.6745).
fn mad(values: &[f64], center: f64) -> f64 {
    let devs: Vec<f64> = values.iter().map(|v| (v - center).abs()).collect();
    median_of(devs) / 0.674_489_750_196_081_7
}

/// One margin's robust summary `(median, normalised MAD)` — the
/// per-series half of the Maronna initialisation.
///
/// An all-pairs sweep recomputes these `n - 1` times per stock when every
/// pair derives them independently; computing them once per stock and
/// passing them to [`MaronnaEstimator::fit_with_stats`] (and
/// [`crate::quadrant::quadrant_with_medians`]) is bitwise-identical
/// because the same selection code runs on the same slice.
pub fn robust_margin_stats(x: &[f64]) -> (f64, f64) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let med = median_of(x.to_vec());
    (med, mad(x, med))
}

impl MaronnaEstimator {
    /// Huber weight on a squared Mahalanobis distance — the reference
    /// definition the lane-structured pass kernels in [`crate::simd`]
    /// replicate bit-for-bit.
    #[inline]
    pub fn weight(&self, d: f64) -> f64 {
        if d <= self.cutoff {
            1.0
        } else {
            self.cutoff / d
        }
    }

    /// Run the full iteration and return location, scatter and correlation.
    ///
    /// Degenerate inputs (length < 2, zero robust spread in either margin)
    /// yield a zero-correlation fit — consistent with the other estimators'
    /// "no evidence" convention.
    ///
    /// # Panics
    /// Panics if `x.len() != y.len()`.
    pub fn fit(&self, x: &[f64], y: &[f64]) -> MaronnaFit {
        self.fit_with_init(x, y, None)
    }

    /// [`MaronnaEstimator::fit`] with an optional warm start.
    ///
    /// Sliding-window sweeps re-estimate almost the same sample every
    /// step; seeding the iteration with the previous window's
    /// `(location, scatter)` typically converges in 2–3 iterations instead
    /// of 10–20. The fixed point is the same M-estimating equation, so a
    /// warm fit agrees with a cold fit to within the convergence
    /// tolerance.
    ///
    /// # Panics
    /// Panics if `x.len() != y.len()`.
    pub fn fit_with_init(&self, x: &[f64], y: &[f64], init: Option<MaronnaSeed>) -> MaronnaFit {
        assert_eq!(x.len(), y.len(), "maronna: length mismatch");
        if x.len() < 2 {
            return degenerate_fit(0.0, 0.0);
        }
        self.fit_with_stats(x, y, robust_margin_stats(x), robust_margin_stats(y), init)
    }

    /// [`MaronnaEstimator::fit_with_init`] with the per-margin
    /// `(median, normalised MAD)` supplied by the caller — the all-pairs
    /// entry point, where [`robust_margin_stats`] is computed once per
    /// stock per interval instead of once per pair.
    ///
    /// # Panics
    /// Panics if `x.len() != y.len()`.
    pub fn fit_with_stats(
        &self,
        x: &[f64],
        y: &[f64],
        (med_x, sx): (f64, f64),
        (med_y, sy): (f64, f64),
        init: Option<MaronnaSeed>,
    ) -> MaronnaFit {
        assert_eq!(x.len(), y.len(), "maronna: length mismatch");
        let n = x.len();
        if n < 2 {
            return degenerate_fit(0.0, 0.0);
        }
        if sx <= 0.0 || sy <= 0.0 {
            // More than half the observations are identical in one margin;
            // there is no robust notion of co-movement to estimate.
            return degenerate_fit(med_x, med_y);
        }
        // Warm start when the seed scatter is usable; otherwise the
        // classical median/MAD initialisation.
        let (mut mx, mut my, mut s11, mut s12, mut s22) = match init {
            Some(((imx, imy), (i11, i12, i22)))
                if i11 > 0.0 && i22 > 0.0 && (i11 * i22 - i12 * i12) > 0.0 =>
            {
                (imx, imy, i11, i12, i22)
            }
            _ => (med_x, med_y, sx * sx, 0.0, sy * sy),
        };

        let nf = n as f64;
        let mut converged = false;
        let mut iterations = 0;
        for _ in 0..self.max_iter {
            iterations += 1;
            // Invert the 2x2 scatter.
            let det = s11 * s22 - s12 * s12;
            if det <= 1e-300 || !det.is_finite() {
                break;
            }
            let inv = (s22 / det, -s12 / det, s11 / det);

            // Weighted location update, then weighted scatter about the
            // new location (distances re-use the current scatter inverse,
            // as in the classical IRLS scheme). Both passes run on the
            // 4-lane SIMD kernels; the scalar fallback shares their lane
            // structure, so results don't depend on the backend.
            let (wsum, wx, wy) = simd::maronna_location_pass(x, y, mx, my, inv, self.cutoff);
            if wsum <= 0.0 {
                break;
            }
            let new_mx = wx / wsum;
            let new_my = wy / wsum;

            let (mut t11, mut t12, mut t22) =
                simd::maronna_scatter_pass(x, y, mx, my, new_mx, new_my, inv, self.cutoff);
            t11 /= nf;
            t12 /= nf;
            t22 /= nf;

            // Relative Frobenius change of S.
            let num =
                ((t11 - s11).powi(2) + 2.0 * (t12 - s12).powi(2) + (t22 - s22).powi(2)).sqrt();
            let den = (s11 * s11 + 2.0 * s12 * s12 + s22 * s22).sqrt().max(1e-300);
            mx = new_mx;
            my = new_my;
            s11 = t11;
            s12 = t12;
            s22 = t22;
            if num / den < self.tol {
                converged = true;
                break;
            }
        }

        let correlation = if s11 > 0.0 && s22 > 0.0 {
            clamp_corr(s12 / (s11 * s22).sqrt())
        } else {
            0.0
        };
        MaronnaFit {
            location: (mx, my),
            scatter: (s11, s12, s22),
            correlation,
            iterations,
            converged,
        }
    }
}

impl CorrelationMeasure for MaronnaEstimator {
    fn correlation(&self, x: &[f64], y: &[f64]) -> f64 {
        self.fit(x, y).correlation
    }

    fn name(&self) -> &'static str {
        "Maronna"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pearson::pearson;

    /// Deterministic correlated pseudo-Gaussian pairs via a fixed LCG +
    /// Box-Muller, so the test needs no RNG dependency.
    fn correlated_sample(n: usize, rho: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed.max(1);
        let mut unif = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut gauss = move || {
            let u1: f64 = unif().max(1e-12);
            let u2: f64 = unif();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let b = (1.0 - rho * rho).sqrt();
        for _ in 0..n {
            let g1 = gauss();
            let g2 = gauss();
            x.push(g1);
            y.push(rho * g1 + b * g2);
        }
        (x, y)
    }

    #[test]
    fn agrees_with_pearson_on_clean_data() {
        for &rho in &[0.0, 0.3, 0.7, 0.95, -0.6] {
            let (x, y) = correlated_sample(4000, rho, 42);
            let m = MaronnaEstimator::default().fit(&x, &y);
            let p = pearson(&x, &y);
            assert!(m.converged, "rho={rho}");
            assert!(
                (m.correlation - p).abs() < 0.05,
                "rho={rho}: maronna {} vs pearson {p}",
                m.correlation
            );
        }
    }

    #[test]
    fn robust_to_outliers_where_pearson_breaks() {
        let (x, mut y) = correlated_sample(500, 0.9, 7);
        let clean = MaronnaEstimator::default().fit(&x, &y).correlation;
        // Corrupt 5% of the y-values with gross errors (fat-finger quotes).
        for k in (0..y.len()).step_by(20) {
            y[k] = 1e4 * if k % 40 == 0 { 1.0 } else { -1.0 };
        }
        let robust = MaronnaEstimator::default().fit(&x, &y).correlation;
        let classical = pearson(&x, &y);
        assert!(
            (robust - clean).abs() < 0.1,
            "maronna holds: clean {clean} corrupted {robust}"
        );
        assert!(
            classical.abs() < 0.3,
            "pearson collapses under corruption: {classical}"
        );
    }

    #[test]
    fn location_is_robust() {
        let (x, mut y) = correlated_sample(301, 0.5, 99);
        y[0] = 1e8;
        let fit = MaronnaEstimator::default().fit(&x, &y);
        assert!(fit.location.1.abs() < 1.0, "location {:?}", fit.location);
    }

    #[test]
    fn affine_equivariance_of_correlation() {
        let (x, y) = correlated_sample(1000, 0.6, 5);
        let base = MaronnaEstimator::default().fit(&x, &y).correlation;
        let x2: Vec<f64> = x.iter().map(|v| 250.0 * v - 37.0).collect();
        let y2: Vec<f64> = y.iter().map(|v| 0.01 * v + 5.0).collect();
        let scaled = MaronnaEstimator::default().fit(&x2, &y2).correlation;
        assert!((base - scaled).abs() < 1e-6, "{base} vs {scaled}");
        let y3: Vec<f64> = y.iter().map(|v| -v).collect();
        let flipped = MaronnaEstimator::default().fit(&x, &y3).correlation;
        assert!((base + flipped).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs() {
        let est = MaronnaEstimator::default();
        assert_eq!(est.correlation(&[], &[]), 0.0);
        assert_eq!(est.correlation(&[1.0], &[2.0]), 0.0);
        let flat = vec![2.0; 64];
        let ramp: Vec<f64> = (0..64).map(|i| i as f64).collect();
        assert_eq!(est.correlation(&flat, &ramp), 0.0);
    }

    #[test]
    fn perfectly_collinear_data() {
        let x: Vec<f64> = (0..100).map(|i| i as f64 * 0.5 - 10.0).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 2.0).collect();
        let fit = MaronnaEstimator::default().fit(&x, &y);
        assert!(fit.correlation > 0.999, "rho = {}", fit.correlation);
    }

    #[test]
    fn iteration_budget_respected() {
        let est = MaronnaEstimator {
            max_iter: 3,
            ..Default::default()
        };
        let (x, y) = correlated_sample(500, 0.4, 11);
        let fit = est.fit(&x, &y);
        assert!(fit.iterations <= 3);
    }

    #[test]
    fn weight_function_shape() {
        let est = MaronnaEstimator::default();
        assert_eq!(est.weight(0.0), 1.0);
        assert_eq!(est.weight(est.cutoff), 1.0);
        assert!((est.weight(2.0 * est.cutoff) - 0.5).abs() < 1e-12);
        assert!(est.weight(1e9) < 1e-8);
    }
}
