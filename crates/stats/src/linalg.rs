//! Small dense linear algebra: Cholesky factorisation and a cyclic Jacobi
//! eigensolver for symmetric matrices.
//!
//! Two consumers:
//!
//! * the synthetic market generator (`taq` crate) needs a Cholesky factor of
//!   a target correlation matrix to draw correlated return shocks, and
//! * PSD repair ([`crate::psd`]) needs the full eigendecomposition of a
//!   correlation matrix assembled from independent pairwise robust estimates
//!   — the matrix the paper warns "is no longer assured to be positive
//!   semi-definite".
//!
//! The matrices involved are market-universe sized (tens to a few hundred),
//! so a straightforward O(n^3) Jacobi sweep is both adequate and, being free
//! of external dependencies, keeps the workspace self-contained.

// Indexed loops are the natural notation for the dense kernels here.
#![allow(clippy::needless_range_loop)]

use crate::matrix::SymMatrix;

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Index of the pivot at which factorisation failed.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `A = L L'`.
///
/// Stored packed, row-major lower triangle, like [`SymMatrix`].
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    l: Vec<f64>,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Returns [`NotPositiveDefinite`] if a pivot is `<= tol` (the matrix is
    /// singular or indefinite to working precision).
    pub fn factor(a: &SymMatrix, tol: f64) -> Result<Self, NotPositiveDefinite> {
        let n = a.n();
        let mut l = vec![0.0; n * (n + 1) / 2];
        let idx = |i: usize, j: usize| i * (i + 1) / 2 + j;
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l[idx(i, k)] * l[idx(j, k)];
                }
                if i == j {
                    if sum <= tol {
                        return Err(NotPositiveDefinite { pivot: i });
                    }
                    l[idx(i, j)] = sum.sqrt();
                } else {
                    l[idx(i, j)] = sum / l[idx(j, j)];
                }
            }
        }
        Ok(Cholesky { n, l })
    }

    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `L[i][j]` (zero above the diagonal).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if j > i {
            0.0
        } else {
            self.l[i * (i + 1) / 2 + j]
        }
    }

    /// Compute `y = L x` in place — transforms i.i.d. standard normal draws
    /// into draws with covariance `A = L L'`.
    ///
    /// # Panics
    /// Panics if `x.len() != n`.
    pub fn mul_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        // Work from the last row upwards so each input is still unmodified
        // when read.
        for i in (0..self.n).rev() {
            let mut acc = 0.0;
            for j in 0..=i {
                acc += self.get(i, j) * x[j];
            }
            x[i] = acc;
        }
    }

    /// Reconstruct `A = L L'` (testing aid).
    pub fn reconstruct(&self) -> SymMatrix {
        let n = self.n;
        let mut a = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut acc = 0.0;
                for k in 0..=j {
                    acc += self.get(i, k) * self.get(j, k);
                }
                a.set(i, j, acc);
            }
        }
        a
    }
}

/// Eigendecomposition `A = V diag(w) V'` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Eigenvectors, row-major `n x n`; row `k` of this matrix is *not* an
    /// eigenvector — column `k` is, matching `values[k]`.
    pub vectors: Vec<f64>,
    n: usize,
}

impl Eigen {
    /// Eigenvector for `values[k]` as an owned vector.
    pub fn vector(&self, k: usize) -> Vec<f64> {
        (0..self.n).map(|i| self.vectors[i * self.n + k]).collect()
    }

    /// Smallest eigenvalue.
    pub fn min_value(&self) -> f64 {
        self.values.first().copied().unwrap_or(0.0)
    }

    /// Rebuild `V diag(w) V'` with (possibly modified) eigenvalues `w`.
    ///
    /// # Panics
    /// Panics if `w.len() != n`.
    pub fn reconstruct_with(&self, w: &[f64]) -> SymMatrix {
        assert_eq!(w.len(), self.n, "eigenvalue count mismatch");
        let n = self.n;
        let mut a = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += self.vectors[i * n + k] * w[k] * self.vectors[j * n + k];
                }
                a.set(i, j, acc);
            }
        }
        a
    }
}

/// Cyclic Jacobi eigensolver for symmetric matrices.
///
/// Converges quadratically; `max_sweeps` of 30 is far beyond what a
/// correlation matrix needs (typically < 10 sweeps for n <= 256).
pub fn jacobi_eigen(a: &SymMatrix, max_sweeps: usize) -> Eigen {
    let n = a.n();
    let mut m = a.to_full();
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    for _sweep in 0..max_sweeps {
        // Sum of squares of the strict upper triangle: convergence measure.
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[p * n + q] * m[p * n + q];
            }
        }
        if off.sqrt() < 1e-12 * (n as f64) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation G(p, q, theta) on both sides of m and
                // accumulate into v.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort ascending, permuting eigenvector columns to match.
    let mut order: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| m[i * n + i]).collect();
    order.sort_by(|&x, &y| values_raw[x].partial_cmp(&values_raw[y]).unwrap());
    let values: Vec<f64> = order.iter().map(|&k| values_raw[k]).collect();
    let mut vectors = vec![0.0; n * n];
    for (new_k, &old_k) in order.iter().enumerate() {
        for i in 0..n {
            vectors[i * n + new_k] = v[i * n + old_k];
        }
    }
    Eigen { values, vectors, n }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn cholesky_identity() {
        let id = SymMatrix::identity(5);
        let ch = Cholesky::factor(&id, 0.0).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(approx(ch.get(i, j), want, 1e-14));
            }
        }
    }

    #[test]
    fn cholesky_reconstructs() {
        let full = vec![
            4.0, 2.0, 0.6, //
            2.0, 2.0, 0.5, //
            0.6, 0.5, 1.0,
        ];
        let a = SymMatrix::from_full(3, &full);
        let ch = Cholesky::factor(&a, 0.0).unwrap();
        let r = ch.reconstruct();
        assert!(a.frobenius_distance(&r) < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let full = vec![
            1.0, 2.0, //
            2.0, 1.0,
        ];
        let a = SymMatrix::from_full(2, &full);
        let err = Cholesky::factor(&a, 0.0).unwrap_err();
        assert_eq!(err.pivot, 1);
    }

    #[test]
    fn cholesky_mul_gives_covariance() {
        // L * e_k reproduces column k of L.
        let full = vec![
            1.0, 0.5, //
            0.5, 1.0,
        ];
        let a = SymMatrix::from_full(2, &full);
        let ch = Cholesky::factor(&a, 0.0).unwrap();
        let mut e0 = vec![1.0, 0.0];
        ch.mul_in_place(&mut e0);
        assert!(approx(e0[0], 1.0, 1e-14));
        assert!(approx(e0[1], 0.5, 1e-14));
        let mut e1 = vec![0.0, 1.0];
        ch.mul_in_place(&mut e1);
        assert!(approx(e1[0], 0.0, 1e-14));
        assert!(approx(e1[1], (1.0f64 - 0.25).sqrt(), 1e-14));
    }

    #[test]
    fn jacobi_diagonal() {
        let full = vec![
            3.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, //
            0.0, 0.0, 2.0,
        ];
        let a = SymMatrix::from_full(3, &full);
        let e = jacobi_eigen(&a, 30);
        assert!(approx(e.values[0], 1.0, 1e-12));
        assert!(approx(e.values[1], 2.0, 1e-12));
        assert!(approx(e.values[2], 3.0, 1e-12));
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = SymMatrix::from_full(2, &[2.0, 1.0, 1.0, 2.0]);
        let e = jacobi_eigen(&a, 30);
        assert!(approx(e.values[0], 1.0, 1e-12));
        assert!(approx(e.values[1], 3.0, 1e-12));
        // Eigenvector for 3 is (1, 1)/sqrt(2) up to sign.
        let v = e.vector(1);
        assert!(approx(v[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-10));
        assert!(approx(v[1].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-10));
        assert!(approx(v[0] * v[1], 0.5, 1e-10)); // same sign
    }

    #[test]
    fn jacobi_reconstructs() {
        let full = vec![
            2.0, -1.0, 0.3, //
            -1.0, 2.5, -0.2, //
            0.3, -0.2, 1.5,
        ];
        let a = SymMatrix::from_full(3, &full);
        let e = jacobi_eigen(&a, 50);
        let r = e.reconstruct_with(&e.values);
        assert!(a.frobenius_distance(&r) < 1e-9);
    }

    #[test]
    fn jacobi_detects_indefiniteness() {
        // Correlation-like matrix violating PSD: rho(0,1)=rho(1,2)=0.9,
        // rho(0,2)=-0.9 is infeasible.
        let full = vec![
            1.0, 0.9, -0.9, //
            0.9, 1.0, 0.9, //
            -0.9, 0.9, 1.0,
        ];
        let a = SymMatrix::from_full(3, &full);
        let e = jacobi_eigen(&a, 50);
        assert!(e.min_value() < -0.1, "min eigenvalue {}", e.min_value());
    }

    #[test]
    fn eigen_orthonormal_columns() {
        let full = vec![
            2.0, 0.4, 0.1, //
            0.4, 1.0, 0.3, //
            0.1, 0.3, 1.2,
        ];
        let a = SymMatrix::from_full(3, &full);
        let e = jacobi_eigen(&a, 50);
        for p in 0..3 {
            for q in 0..3 {
                let dot: f64 = e
                    .vector(p)
                    .iter()
                    .zip(e.vector(q))
                    .map(|(x, y)| x * y)
                    .sum();
                let want = if p == q { 1.0 } else { 0.0 };
                assert!(approx(dot, want, 1e-9), "V'V[{p}][{q}] = {dot}");
            }
        }
    }
}
