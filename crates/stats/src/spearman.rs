//! Spearman rank correlation — an extension measure beyond the paper's
//! three treatments.
//!
//! The paper's future work asks for "more parameter sets" and deeper
//! characterisation of correlation measures; Spearman is the natural
//! fourth candidate: rank-based like quadrant correlation (so robust to
//! monotone outliers, with a bounded influence function) but using the
//! full ordering information rather than just signs, putting it between
//! Quadrant and Maronna on the efficiency/robustness frontier. The
//! ablation bench (`benches/measures.rs`) places its cost: one sort per
//! window, O(M log M).

use crate::correlation::{clamp_corr, CorrelationMeasure};
use crate::pearson::pearson;

/// Stateless Spearman estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpearmanEstimator;

/// Average ranks (1-based) with ties sharing their mean rank.
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation of two equal-length slices: the Pearson
/// correlation of the rank vectors (the tie-correct general form).
///
/// Returns 0 for degenerate inputs. Result is clamped to `[-1, 1]`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "spearman: length mismatch");
    if x.len() < 2 {
        return 0.0;
    }
    clamp_corr(pearson(&ranks(x), &ranks(y)))
}

impl CorrelationMeasure for SpearmanEstimator {
    fn correlation(&self, x: &[f64], y: &[f64]) -> f64 {
        spearman(x, y)
    }

    fn name(&self) -> &'static str {
        "Spearman"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_gives_one() {
        let x: Vec<f64> = (0..30).map(|k| k as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect(); // monotone, wildly nonlinear
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let y_neg: Vec<f64> = x.iter().map(|v| -v.powi(3)).collect();
        assert!((spearman(&x, &y_neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn classic_textbook_value() {
        // Well-known example: ranks with one disagreement.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 2.0, 3.0, 5.0, 4.0];
        // d = (0,0,0,1,1): rho = 1 - 6*2/(5*24) = 0.9
        assert!((spearman(&x, &y) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn ties_share_average_ranks() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn robust_to_single_outlier_magnitude() {
        let x: Vec<f64> = (0..50).map(|k| k as f64).collect();
        let mut y: Vec<f64> = x.clone();
        y[25] = 1e12; // its rank only moves to the top
        let r = spearman(&x, &y);
        assert!(r > 0.9, "rank method shrugs at magnitude: {r}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(spearman(&[], &[]), 0.0);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        let flat = vec![7.0; 10];
        let ramp: Vec<f64> = (0..10).map(|k| k as f64).collect();
        assert_eq!(
            spearman(&flat, &ramp),
            0.0,
            "all-tied ranks have no variance"
        );
    }
}
