//! Inferential statistics — the "more rigorous standard of statistical
//! significance" the paper defers to future work.
//!
//! Section V: "all of these simple comparisons between values in the
//! tables need to be examined on a more rigorous standard of statistical
//! significance in order to be truly meaningful. To do so we may consider
//! a few simple inferential statistical tests" over the three populations
//! of per-pair averaged returns (one per correlation treatment).
//!
//! Implemented here:
//!
//! * [`welch_t_test`] — the unequal-variance two-sample t-test, the
//!   natural first test for "is the Pearson mean really higher?";
//! * [`mann_whitney_u`] — its rank-based cousin, appropriate because the
//!   paper's own box plots show heavy-tailed, outlier-ridden samples
//!   where mean comparisons are fragile;
//! * [`normal_cdf`] / [`students_t_cdf`] — the distribution machinery,
//!   self-contained (no external special-function crate).

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 rational approximation; |error| < 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(x))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Student's t CDF by numerical integration of the density (Simpson's
/// rule over a clipped domain). Adequate for p-value work at the sample
/// sizes involved (hundreds to thousands); for `df > 200` the normal
/// approximation is used directly.
pub fn students_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if df > 200.0 {
        return normal_cdf(t);
    }
    // Density: c * (1 + x^2/df)^{-(df+1)/2}, with c = Γ((df+1)/2) /
    // (sqrt(df·π) Γ(df/2)).
    let c = (ln_gamma((df + 1.0) / 2.0) - ln_gamma(df / 2.0)).exp()
        / (df * std::f64::consts::PI).sqrt();
    let pdf = |x: f64| c * (1.0 + x * x / df).powf(-(df + 1.0) / 2.0);

    // Integrate from -40 (effectively -inf) to t with Simpson's rule.
    let lo = (t - 1.0).min(-40.0);
    let hi = t;
    let n = 2000; // even
    let h = (hi - lo) / n as f64;
    let mut acc = pdf(lo) + pdf(hi);
    for k in 1..n {
        let x = lo + k as f64 * h;
        acc += pdf(x) * if k % 2 == 1 { 4.0 } else { 2.0 };
    }
    (acc * h / 3.0).clamp(0.0, 1.0)
}

/// Lanczos log-gamma (g = 7, n = 9), |relative error| < 1e-13.
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Result of a two-sample test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (t or z depending on the test).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Degrees of freedom (Welch); 0 for rank tests.
    pub df: f64,
}

impl TestResult {
    /// Significant at the given level (two-sided).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Welch's unequal-variance two-sample t-test (two-sided).
///
/// Returns `None` when either sample has fewer than 2 observations or
/// both variances are 0.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TestResult> {
    let (na, nb) = (a.len() as f64, b.len() as f64);
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let var = |s: &[f64], m: f64| {
        s.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (s.len() as f64 - 1.0)
    };
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (var(a, ma), var(b, mb));
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return None;
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    let p = 2.0 * (1.0 - students_t_cdf(t.abs(), df));
    Some(TestResult {
        statistic: t,
        p_value: p.clamp(0.0, 1.0),
        df,
    })
}

/// Mann–Whitney U test (two-sided, normal approximation with tie
/// correction). Appropriate for the heavy-tailed samples of Figure 2.
///
/// Returns `None` for empty samples or when every value is tied.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<TestResult> {
    let (na, nb) = (a.len(), b.len());
    if na == 0 || nb == 0 {
        return None;
    }
    // Rank the pooled sample with average ranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&v| (v, 0usize))
        .chain(b.iter().map(|&v| (v, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let rank_sum_a: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, grp), _)| *grp == 0)
        .map(|(_, &r)| r)
        .sum();
    let (naf, nbf, nf) = (na as f64, nb as f64, n as f64);
    let u = rank_sum_a - naf * (naf + 1.0) / 2.0;
    let mean_u = naf * nbf / 2.0;
    let var_u = naf * nbf / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var_u <= 0.0 {
        return None;
    }
    let z = (u - mean_u) / var_u.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(TestResult {
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
        df: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_landmarks() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959_964) - 0.025).abs() < 1e-4);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn ln_gamma_landmarks() {
        // Γ(1) = Γ(2) = 1; Γ(0.5) = sqrt(pi); Γ(5) = 24.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_landmarks() {
        // t distribution is symmetric; at df=inf it matches the normal.
        assert!((students_t_cdf(0.0, 10.0) - 0.5).abs() < 1e-6);
        // Known quantile: t_{0.975, 10} = 2.228.
        assert!((students_t_cdf(2.228, 10.0) - 0.975).abs() < 2e-3);
        // Large df -> normal.
        assert!((students_t_cdf(1.96, 500.0) - normal_cdf(1.96)).abs() < 1e-6);
    }

    #[test]
    fn welch_detects_obvious_difference() {
        let a: Vec<f64> = (0..100).map(|k| 10.0 + (k % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..100).map(|k| 11.0 + (k % 5) as f64 * 0.1).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert!(r.statistic < 0.0, "a < b gives negative t");
        assert!(r.significant_at(0.05));
    }

    #[test]
    fn welch_accepts_identical_populations() {
        let a: Vec<f64> = (0..200).map(|k| ((k * 37 % 101) as f64) * 0.01).collect();
        let b: Vec<f64> = (0..200).map(|k| ((k * 53 % 101) as f64) * 0.01).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn welch_degenerate_inputs() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        assert!(welch_t_test(&[1.0, 1.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn mann_whitney_detects_shift() {
        let a: Vec<f64> = (0..80).map(|k| (k % 10) as f64).collect();
        let b: Vec<f64> = (0..80).map(|k| (k % 10) as f64 + 5.0).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn mann_whitney_is_robust_to_outliers() {
        // A catastrophic outlier should barely move the rank test but
        // wreck the t-test's variance.
        let a: Vec<f64> = (0..50).map(|k| (k % 7) as f64).collect();
        let mut b: Vec<f64> = (0..50).map(|k| (k % 7) as f64 + 2.0).collect();
        let base = mann_whitney_u(&a, &b).unwrap().p_value;
        b[0] = 1e9;
        let with_outlier = mann_whitney_u(&a, &b).unwrap().p_value;
        assert!(
            (base.ln() - with_outlier.ln()).abs() < 2.0,
            "{base} vs {with_outlier}"
        );
    }

    #[test]
    fn mann_whitney_handles_all_ties() {
        let a = vec![1.0; 10];
        let b = vec![1.0; 10];
        assert!(mann_whitney_u(&a, &b).is_none(), "zero variance -> None");
    }

    #[test]
    fn symmetric_under_argument_swap() {
        let a: Vec<f64> = (0..60).map(|k| (k % 11) as f64 * 0.3).collect();
        let b: Vec<f64> = (0..60).map(|k| (k % 13) as f64 * 0.25 + 0.4).collect();
        let r1 = welch_t_test(&a, &b).unwrap();
        let r2 = welch_t_test(&b, &a).unwrap();
        assert!((r1.statistic + r2.statistic).abs() < 1e-12);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
        let m1 = mann_whitney_u(&a, &b).unwrap();
        let m2 = mann_whitney_u(&b, &a).unwrap();
        assert!((m1.p_value - m2.p_value).abs() < 1e-9);
    }
}
