//! An online all-pairs Pearson correlation matrix.
//!
//! The paper's enabling feature is producing "large correlation matrices
//! in an online fashion". For Pearson this can be done *incrementally*:
//! the engine keeps one shared `m × n` ring of the last `m` return
//! vectors, per-stock running sums `Σx` and `Σx²`, and a packed
//! strict-lower-triangular matrix of running cross products `Σ x_i x_j`.
//! Pushing one interval's return vector is a rank-1 subtract of the
//! leaving vector and a rank-1 add of the entering vector against that
//! cross-product matrix — 2 multiply-adds per pair — and a snapshot costs
//! O(n²) arithmetic with **no** dependence on the window length `m`.
//!
//! Compare the previous formulation (one `SlidingPearson` per pair):
//! that duplicated both stocks' windows into every pair — O(n²·m) memory
//! — and pushed five sums plus ring bookkeeping per pair per step. The
//! shared-state layout stores each window once (O(n·m) + O(n²)) and does
//! the minimum per-pair work, which is what lets a snapshot cadence of
//! "every interval" survive market scale.
//!
//! (Maronna has no exact O(1) update — its weights depend on the whole
//! window — which is precisely why the Combined measure screens before
//! refining; see `crate::combined`.)

use rayon::prelude::*;

use crate::correlation::clamp_corr;
use crate::matrix::SymMatrix;
use crate::simd;

/// Below this pair count the rank-1 update runs serially: fanning a few
/// thousand multiply-adds across threads costs more than the flops.
const PAR_PAIR_THRESHOLD: usize = 16_384;

/// Incrementally-maintained all-pairs Pearson matrix over trailing
/// windows of `m` returns.
#[derive(Debug, Clone)]
pub struct OnlineCorrMatrix {
    n: usize,
    m: usize,
    /// Ring of the last `m` return vectors, time-major: slot `t` holds one
    /// full cross-section at `ring[t*n .. (t+1)*n]`.
    ring: Vec<f64>,
    /// Slot that the next push overwrites (the oldest when full).
    head: usize,
    /// Number of vectors currently held (≤ m).
    len: usize,
    /// Per-stock running `Σx` over the window.
    sum: Vec<f64>,
    /// Per-stock running `Σx²` over the window.
    sumsq: Vec<f64>,
    /// Per-pair running `Σ x_i x_j`, packed strict lower triangle in
    /// canonical rank order.
    cross: Vec<f64>,
    /// Scratch copy of the evicted vector during a push.
    evicted: Vec<f64>,
    pushed: usize,
    pushes_since_refresh: usize,
}

impl OnlineCorrMatrix {
    /// Engine over `n` stocks with window `m`.
    ///
    /// # Panics
    /// Panics if `n < 2` or `m < 2`.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n >= 2, "need at least two stocks");
        assert!(m >= 2, "window must hold at least 2 returns");
        OnlineCorrMatrix {
            n,
            m,
            ring: vec![0.0; n * m],
            head: 0,
            len: 0,
            sum: vec![0.0; n],
            sumsq: vec![0.0; n],
            cross: vec![0.0; n * (n - 1) / 2],
            evicted: vec![0.0; n],
            pushed: 0,
            pushes_since_refresh: 0,
        }
    }

    /// Universe size.
    pub fn n_stocks(&self) -> usize {
        self.n
    }

    /// Window size `M`.
    pub fn window(&self) -> usize {
        self.m
    }

    /// Number of return vectors pushed so far.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// True once every pair has a full window.
    pub fn is_warm(&self) -> bool {
        self.pushed >= self.m
    }

    /// Push one interval's return vector (one value per stock): rank-1
    /// subtract of the leaving vector, rank-1 add of the entering one.
    ///
    /// # Panics
    /// Panics if `returns.len() != n`.
    pub fn push(&mut self, returns: &[f64]) {
        assert_eq!(returns.len(), self.n, "return vector length mismatch");
        let n = self.n;
        let full = self.len == self.m;
        if full {
            self.evicted
                .copy_from_slice(&self.ring[self.head * n..(self.head + 1) * n]);
            for (i, &old) in self.evicted.iter().enumerate() {
                self.sum[i] -= old;
                self.sumsq[i] -= old * old;
            }
        } else {
            self.len += 1;
        }
        for (i, &v) in returns.iter().enumerate() {
            self.sum[i] += v;
            self.sumsq[i] += v * v;
        }
        // The rank-1 cross-product update: row `i` of the packed strict
        // lower triangle is contiguous over `j`, so each row is one SIMD
        // sweep (`crate::simd::rank1_sub_add`) — subtract the evicted
        // outer-product row, add the entering one, elementwise in the same
        // order as the historical scalar loop, so the cube equivalence
        // stays bit-exact. Parallel over pair chunks only when the matrix
        // is big enough for the fan-out to pay off; the update is
        // elementwise, so the chunking never changes any entry.
        let old = full.then_some(self.evicted.as_slice());
        let row_update = |row: &mut [f64], i: usize, j0: usize| {
            let hi = j0 + row.len();
            if let Some(old) = old {
                simd::rank1_sub_add(row, old[i], &old[j0..hi], returns[i], &returns[j0..hi]);
            } else {
                simd::rank1_add(row, returns[i], &returns[j0..hi]);
            }
        };
        if self.cross.len() >= PAR_PAIR_THRESHOLD {
            let chunk = self.cross.len().div_ceil(64).max(1);
            self.cross
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(c, slab)| {
                    let mut rank = c * chunk;
                    let mut off = 0;
                    while off < slab.len() {
                        let (i, j) = SymMatrix::pair_from_rank(rank);
                        let seg = (i - j).min(slab.len() - off);
                        row_update(&mut slab[off..off + seg], i, j);
                        rank += seg;
                        off += seg;
                    }
                });
        } else {
            let mut rank = 0;
            for i in 1..n {
                let (row, _) = self.cross[rank..].split_at_mut(i);
                row_update(row, i, 0);
                rank += i;
            }
        }
        self.ring[self.head * n..(self.head + 1) * n].copy_from_slice(returns);
        self.head = (self.head + 1) % self.m;
        self.pushed += 1;
        self.pushes_since_refresh += 1;
        if self.pushes_since_refresh >= crate::pearson::REFRESH_EVERY {
            self.refresh();
        }
    }

    /// Re-derive all running sums from the retained window, bounding
    /// cancellation drift on unboundedly long streams.
    fn refresh(&mut self) {
        self.pushes_since_refresh = 0;
        self.sum.fill(0.0);
        self.sumsq.fill(0.0);
        self.cross.fill(0.0);
        let n = self.n;
        let start = (self.head + self.m - self.len) % self.m;
        for k in 0..self.len {
            let slot = (start + k) % self.m;
            let vec = &self.ring[slot * n..(slot + 1) * n];
            for (i, &v) in vec.iter().enumerate() {
                self.sum[i] += v;
                self.sumsq[i] += v * v;
            }
            let mut rank = 0;
            for i in 1..n {
                let (row, _) = self.cross[rank..].split_at_mut(i);
                simd::rank1_add(row, vec[i], &vec[..i]);
                rank += i;
            }
        }
    }

    /// Inverse-sqrt variance mass of one stock (0 when degenerate),
    /// mirroring `crate::pearson::WindowMoments`.
    #[inline]
    fn inv_sqrt_var(&self, i: usize, inv_len: f64) -> f64 {
        let var = self.sumsq[i] - self.sum[i] * self.sum[i] * inv_len;
        if var > 0.0 {
            1.0 / var.sqrt()
        } else {
            0.0
        }
    }

    /// Correlation of one pair right now (0 until at least 2 vectors, or
    /// on zero variance).
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        if self.len < 2 {
            return 0.0;
        }
        let inv_len = 1.0 / self.len as f64;
        let c = self.cross[SymMatrix::pair_rank(i, j)];
        let cov = c - self.sum[i.max(j)] * self.sum[i.min(j)] * inv_len;
        clamp_corr(cov * self.inv_sqrt_var(i, inv_len) * self.inv_sqrt_var(j, inv_len))
    }

    /// Materialise the current matrix (unit diagonal): O(n²), independent
    /// of the window length.
    pub fn matrix(&self) -> SymMatrix {
        let mut out = SymMatrix::identity(self.n);
        self.matrix_into(&mut out);
        out
    }

    /// [`Self::matrix`] into a caller-provided buffer, fully overwriting
    /// it (and resizing it when the dimension differs). This is what lets
    /// the streaming engine recycle snapshot allocations instead of
    /// producing a fresh `n(n+1)/2` buffer every interval.
    pub fn matrix_into(&self, out: &mut SymMatrix) {
        if out.n() == self.n {
            out.reset_identity();
        } else {
            *out = SymMatrix::identity(self.n);
        }
        if self.len < 2 {
            return;
        }
        let inv_len = 1.0 / self.len as f64;
        let isv: Vec<f64> = (0..self.n).map(|i| self.inv_sqrt_var(i, inv_len)).collect();
        let mut rank = 0;
        for i in 1..self.n {
            for j in 0..i {
                let cov = self.cross[rank] - self.sum[i] * self.sum[j] * inv_len;
                out.set(i, j, clamp_corr(cov * isv[i] * isv[j]));
                rank += 1;
            }
        }
    }
}

// Durable-checkpoint codec: every running sum is encoded verbatim (the
// rank-1 update's rounding depends on the whole eviction history, so
// re-pushing the retained ring would NOT reproduce these sums bit-exactly).
// The `evicted` scratch buffer is per-push transient state and is simply
// reallocated.
impl wire::Codec for OnlineCorrMatrix {
    fn encode(&self, w: &mut wire::Writer) {
        self.n.encode(w);
        self.m.encode(w);
        self.ring.encode(w);
        self.head.encode(w);
        self.len.encode(w);
        self.sum.encode(w);
        self.sumsq.encode(w);
        self.cross.encode(w);
        self.pushed.encode(w);
        self.pushes_since_refresh.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        let n = usize::decode(r)?;
        let m = usize::decode(r)?;
        let ring = Vec::<f64>::decode(r)?;
        let head = usize::decode(r)?;
        let len = usize::decode(r)?;
        let sum = Vec::<f64>::decode(r)?;
        let sumsq = Vec::<f64>::decode(r)?;
        let cross = Vec::<f64>::decode(r)?;
        if n < 2
            || m < 2
            || ring.len() != n * m
            || head >= m
            || len > m
            || sum.len() != n
            || sumsq.len() != n
            || cross.len() != n * (n - 1) / 2
        {
            return Err(wire::WireError::Invalid("online corr matrix geometry"));
        }
        Ok(OnlineCorrMatrix {
            n,
            m,
            ring,
            head,
            len,
            sum,
            sumsq,
            cross,
            evicted: vec![0.0; n],
            pushed: usize::decode(r)?,
            pushes_since_refresh: usize::decode(r)?,
        })
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-driven loops mirror the math
mod tests {
    use super::*;
    use crate::correlation::CorrType;
    use crate::parallel::ParallelCorrEngine;

    fn ret(i: usize, t: usize) -> f64 {
        ((t as f64) * 0.61).sin() * 0.4 + (((t * (i + 2) * 11) % 17) as f64 - 8.0) * 0.03
    }

    #[test]
    fn codec_roundtrips_mid_stream_bit_exactly() {
        let n = 4;
        let m = 16;
        let mut live = OnlineCorrMatrix::new(n, m);
        for t in 0..37 {
            let vec: Vec<f64> = (0..n).map(|i| ret(i, t) * 1e6).collect();
            live.push(&vec);
        }
        let bytes = wire::to_bytes(&live);
        let mut thawed: OnlineCorrMatrix = wire::from_bytes(&bytes).unwrap();
        // Continuing both copies must stay bit-identical: the running sums
        // were restored verbatim, not recomputed.
        let mut a = SymMatrix::identity(n);
        let mut b = SymMatrix::identity(n);
        for t in 37..90 {
            let vec: Vec<f64> = (0..n).map(|i| ret(i, t) * 1e6).collect();
            live.push(&vec);
            thawed.push(&vec);
            live.matrix_into(&mut a);
            thawed.matrix_into(&mut b);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(a.get(i, j).to_bits(), b.get(i, j).to_bits());
                }
            }
        }
    }

    #[test]
    fn codec_rejects_inconsistent_geometry() {
        let live = OnlineCorrMatrix::new(3, 8);
        let bytes = wire::to_bytes(&live);
        // Corrupt `m` (second u64) so ring.len() != n * m.
        let mut bad = bytes.clone();
        bad[8] = bad[8].wrapping_add(1);
        assert!(wire::from_bytes::<OnlineCorrMatrix>(&bad).is_err());
    }

    #[test]
    fn matches_batch_engine_at_every_step() {
        let n = 5;
        let m = 12;
        let mut online = OnlineCorrMatrix::new(n, m);
        let mut history: Vec<Vec<f64>> = vec![Vec::new(); n];
        let engine = ParallelCorrEngine::new(CorrType::Pearson);
        for t in 0..40 {
            let vec: Vec<f64> = (0..n).map(|i| ret(i, t)).collect();
            for (i, h) in history.iter_mut().enumerate() {
                h.push(vec[i]);
            }
            online.push(&vec);
            if online.is_warm() {
                let windows: Vec<&[f64]> = history.iter().map(|h| &h[h.len() - m..]).collect();
                let batch = engine.matrix(&windows);
                let mine = online.matrix();
                assert!(
                    batch.frobenius_distance(&mine) < 1e-9,
                    "diverged at t = {t}"
                );
            }
        }
    }

    #[test]
    fn matches_cube_column_bit_for_bit() {
        // The streaming engine and the batch cube share their update
        // arithmetic (evict-then-add sums, shared inverse-sqrt variance),
        // so a warm snapshot must equal the cube's column exactly — this
        // is what keeps the Figure-1 pipeline and the batch backtester
        // trade-for-trade identical.
        let n = 6;
        let m = 10;
        let total = 35;
        let series: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..total).map(|t| ret(i, t)).collect())
            .collect();
        let cube = ParallelCorrEngine::new(CorrType::Pearson)
            .cube(&series, m)
            .unwrap();
        let mut online = OnlineCorrMatrix::new(n, m);
        for t in 0..total {
            let vec: Vec<f64> = (0..n).map(|i| series[i][t]).collect();
            online.push(&vec);
            if t >= m - 1 {
                let snap = online.matrix();
                for i in 1..n {
                    for j in 0..i {
                        assert_eq!(snap.get(i, j), cube.at(t, i, j), "t={t} pair=({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn warmup_accounting() {
        let mut online = OnlineCorrMatrix::new(3, 5);
        for t in 0..4 {
            online.push(&[ret(0, t), ret(1, t), ret(2, t)]);
            assert!(!online.is_warm());
        }
        online.push(&[1.0, 2.0, 3.0]);
        assert!(online.is_warm());
        assert_eq!(online.pushed(), 5);
    }

    #[test]
    fn matrix_is_valid() {
        let mut online = OnlineCorrMatrix::new(4, 8);
        for t in 0..30 {
            online.push(&[ret(0, t), ret(1, t), ret(2, t), ret(3, t)]);
        }
        let m = online.matrix();
        assert!(m.has_unit_diagonal(0.0));
        assert!(m.entries_in_range(1e-12));
        assert_eq!(online.correlation(2, 1), m.get(1, 2));
    }

    #[test]
    fn long_stream_refresh_does_not_drift() {
        // Push past the refresh threshold; the snapshot must still match
        // a batch recompute of the trailing window.
        let n = 3;
        let m = 6;
        let mut online = OnlineCorrMatrix::new(n, m);
        let mut history: Vec<Vec<f64>> = vec![Vec::new(); n];
        let total = crate::pearson::REFRESH_EVERY + 50;
        for t in 0..total {
            let vec: Vec<f64> = (0..n).map(|i| 1e2 + ret(i, t % 9973) * 0.01).collect();
            for (i, h) in history.iter_mut().enumerate() {
                h.push(vec[i]);
            }
            online.push(&vec);
        }
        let windows: Vec<&[f64]> = history.iter().map(|h| &h[h.len() - m..]).collect();
        let batch = ParallelCorrEngine::new(CorrType::Pearson).matrix(&windows);
        assert!(
            batch.frobenius_distance(&online.matrix()) < 1e-6,
            "drifted after {total} pushes"
        );
    }

    #[test]
    #[should_panic]
    fn wrong_vector_length_rejected() {
        let mut online = OnlineCorrMatrix::new(3, 5);
        online.push(&[1.0, 2.0]);
    }
}
