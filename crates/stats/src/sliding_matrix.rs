//! An online all-pairs Pearson correlation matrix.
//!
//! The paper's enabling feature is producing "large correlation matrices
//! in an online fashion". For Pearson this can be done *incrementally*:
//! each pair keeps its five running sums, so pushing one new return vector
//! (one value per stock) costs O(n²) constant-time updates instead of the
//! O(n² · M) of re-estimating every window — the difference between a
//! per-tick and a per-minute refresh cadence at market scale.
//!
//! (Maronna has no exact O(1) update — its weights depend on the whole
//! window — which is precisely why the Combined measure screens before
//! refining; see `crate::combined`.)

use rayon::prelude::*;

use crate::matrix::SymMatrix;
use crate::pearson::SlidingPearson;

/// Incrementally-maintained all-pairs Pearson matrix over trailing
/// windows of `m` returns.
#[derive(Debug, Clone)]
pub struct OnlineCorrMatrix {
    n: usize,
    m: usize,
    pairs: Vec<SlidingPearson>,
    pushed: usize,
}

impl OnlineCorrMatrix {
    /// Engine over `n` stocks with window `m`.
    ///
    /// # Panics
    /// Panics if `n < 2` or `m < 2`.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n >= 2, "need at least two stocks");
        assert!(m >= 2, "window must hold at least 2 returns");
        OnlineCorrMatrix {
            n,
            m,
            pairs: (0..n * (n - 1) / 2).map(|_| SlidingPearson::new(m)).collect(),
            pushed: 0,
        }
    }

    /// Universe size.
    pub fn n_stocks(&self) -> usize {
        self.n
    }

    /// Window size `M`.
    pub fn window(&self) -> usize {
        self.m
    }

    /// Number of return vectors pushed so far.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// True once every pair has a full window.
    pub fn is_warm(&self) -> bool {
        self.pushed >= self.m
    }

    /// Push one interval's return vector (one value per stock); O(1) per
    /// pair, parallel over pairs.
    ///
    /// # Panics
    /// Panics if `returns.len() != n`.
    pub fn push(&mut self, returns: &[f64]) {
        assert_eq!(returns.len(), self.n, "return vector length mismatch");
        self.pushed += 1;
        self.pairs.par_iter_mut().enumerate().for_each(|(rank, sl)| {
            let (i, j) = SymMatrix::pair_from_rank(rank);
            sl.push(returns[i], returns[j]);
        });
    }

    /// Correlation of one pair right now.
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        self.pairs[SymMatrix::pair_rank(i, j)].correlation()
    }

    /// Materialise the current matrix (unit diagonal).
    pub fn matrix(&self) -> SymMatrix {
        let mut m = SymMatrix::identity(self.n);
        for (rank, sl) in self.pairs.iter().enumerate() {
            let (i, j) = SymMatrix::pair_from_rank(rank);
            m.set(i, j, sl.correlation());
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::CorrType;
    use crate::parallel::ParallelCorrEngine;

    fn ret(i: usize, t: usize) -> f64 {
        ((t as f64) * 0.61).sin() * 0.4 + (((t * (i + 2) * 11) % 17) as f64 - 8.0) * 0.03
    }

    #[test]
    fn matches_batch_engine_at_every_step() {
        let n = 5;
        let m = 12;
        let mut online = OnlineCorrMatrix::new(n, m);
        let mut history: Vec<Vec<f64>> = vec![Vec::new(); n];
        let engine = ParallelCorrEngine::new(CorrType::Pearson);
        for t in 0..40 {
            let vec: Vec<f64> = (0..n).map(|i| ret(i, t)).collect();
            for (i, h) in history.iter_mut().enumerate() {
                h.push(vec[i]);
            }
            online.push(&vec);
            if online.is_warm() {
                let windows: Vec<&[f64]> = history
                    .iter()
                    .map(|h| &h[h.len() - m..])
                    .collect();
                let batch = engine.matrix(&windows);
                let mine = online.matrix();
                assert!(
                    batch.frobenius_distance(&mine) < 1e-9,
                    "diverged at t = {t}"
                );
            }
        }
    }

    #[test]
    fn warmup_accounting() {
        let mut online = OnlineCorrMatrix::new(3, 5);
        for t in 0..4 {
            online.push(&[ret(0, t), ret(1, t), ret(2, t)]);
            assert!(!online.is_warm());
        }
        online.push(&[1.0, 2.0, 3.0]);
        assert!(online.is_warm());
        assert_eq!(online.pushed(), 5);
    }

    #[test]
    fn matrix_is_valid() {
        let mut online = OnlineCorrMatrix::new(4, 8);
        for t in 0..30 {
            online.push(&[ret(0, t), ret(1, t), ret(2, t), ret(3, t)]);
        }
        let m = online.matrix();
        assert!(m.has_unit_diagonal(0.0));
        assert!(m.entries_in_range(1e-12));
        assert_eq!(online.correlation(2, 1), m.get(1, 2));
    }

    #[test]
    #[should_panic]
    fn wrong_vector_length_rejected() {
        let mut online = OnlineCorrMatrix::new(3, 5);
        online.push(&[1.0, 2.0]);
    }
}
