//! Statistical kernels for the pair-trading reproduction.
//!
//! This crate provides everything the MarketMiner correlation engine and the
//! backtester need from numerical land:
//!
//! * [`matrix`] — dense symmetric matrices with packed lower-triangular
//!   storage, the natural container for correlation matrices.
//! * [`linalg`] — Cholesky factorisation (used both to *generate* correlated
//!   synthetic markets and to *test* positive semi-definiteness) and a Jacobi
//!   eigensolver (used by PSD repair).
//! * [`descriptive`] — the summary statistics reported in Tables III–V of the
//!   paper: mean, median, standard deviation, Sharpe ratio, skewness,
//!   kurtosis, quartiles and full box-plot statistics (Figure 2).
//! * [`online`] — Welford-style streaming moments and rolling-window moments.
//! * [`pearson`] — classical product-moment correlation: batch form, an
//!   O(1)-per-step sliding-window engine, and the shared incremental
//!   machinery (per-stock window moments + running cross products) behind
//!   the all-pairs sweeps.
//! * [`blocked`] — the cache-blocked all-pairs Pearson kernel: z-score every
//!   window once, then compute the matrix as a tiled `Z·Zᵀ`.
//! * [`quadrant`] — quadrant (sign) correlation, the cheap robust screen.
//! * [`maronna`] — the robust bivariate M-estimator of Maronna (1976) as
//!   parallelised by Chilson, Ng, Wagner and Zamar (2006).
//! * [`combined`] — MarketMiner's two-stage estimator: quadrant pre-screen
//!   with Maronna refinement of highly-correlated pairs.
//! * [`correlation`] — a common [`correlation::CorrelationMeasure`] trait and
//!   the [`correlation::CorrType`] treatment enum used throughout the
//!   backtester.
//! * [`parallel`] — the rayon-parallel all-pairs correlation-matrix engine,
//!   the enabling kernel of the whole system.
//! * [`psd`] — positive semi-definiteness checking and eigenvalue-clipping
//!   repair for matrices assembled from independent pairwise estimates (the
//!   Approach-2 caveat in the paper).
//! * [`simd`] — runtime-dispatched 4-wide f64 primitives (AVX2 with a
//!   bit-identical scalar fallback) behind the hot correlation kernels.
//! * [`sliding_matrix`] — an O(1)-per-step online all-pairs Pearson matrix
//!   (the "online fashion" of the paper's Section II).
//! * [`inference`] — Welch's t-test and the Mann–Whitney U test, the
//!   "simple inferential statistical tests" Section V defers to future
//!   work.

pub mod blocked;
pub mod combined;
pub mod correlation;
pub mod descriptive;
pub mod inference;
pub mod kendall;
pub mod linalg;
pub mod maronna;
pub mod matrix;
pub mod online;
pub mod parallel;
pub mod pearson;
pub mod psd;
pub mod quadrant;
pub mod simd;
pub mod sliding_matrix;
pub mod spearman;

pub use combined::CombinedEstimator;
pub use correlation::{CorrType, CorrelationMeasure};
pub use descriptive::{BoxPlot, Summary};
pub use kendall::KendallEstimator;
pub use maronna::MaronnaEstimator;
pub use matrix::SymMatrix;
pub use parallel::ParallelCorrEngine;
pub use pearson::PearsonEstimator;
pub use quadrant::QuadrantEstimator;
pub use sliding_matrix::OnlineCorrMatrix;
pub use spearman::SpearmanEstimator;
