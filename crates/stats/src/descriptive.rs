//! Descriptive statistics for the paper's evaluation tables and box plots.
//!
//! Tables III–V report, per correlation type: mean, median, standard
//! deviation, Sharpe ratio (Table III only), skewness and kurtosis of a
//! sample of per-pair averaged performance measures. Figure 2 shows box
//! plots (median, quartiles, whiskers at the most extreme non-outlier
//! points, and individually plotted outliers — Matlab's `boxplot`
//! convention with whisker factor 1.5).

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample, matching the rows of Tables III–V.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of middle two for even n).
    pub median: f64,
    /// Sample standard deviation (n - 1 denominator).
    pub std_dev: f64,
    /// Sharpe ratio as defined in the paper: `mean / std_dev`.
    ///
    /// The paper defines SR = r-bar / sigma-hat over the *excess* growth;
    /// callers pass returns already net of the baseline (e.g. growth factors
    /// minus 1) when that is the intended quantity.
    pub sharpe: f64,
    /// Sample skewness (third standardised moment, biased version
    /// `m3 / m2^{3/2}` as Matlab's `skewness(x)` default, which the paper's
    /// Matlab prototype would have produced).
    pub skewness: f64,
    /// Sample kurtosis (fourth standardised moment `m4 / m2^2`, *not*
    /// excess; a normal distribution scores 3 — Matlab's `kurtosis(x)`
    /// default, consistent with Table V values near 3).
    pub kurtosis: f64,
}

impl Summary {
    /// Compute all summary statistics for a sample.
    ///
    /// Returns a zeroed summary for an empty sample; `std_dev` is 0 for a
    /// single observation and `sharpe` is 0 whenever `std_dev` is 0.
    ///
    /// ```
    /// let s = stats::descriptive::Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
    /// assert_eq!(s.mean, 3.0);
    /// assert_eq!(s.median, 3.0);
    /// assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
    /// ```
    pub fn of(sample: &[f64]) -> Summary {
        let n = sample.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                median: 0.0,
                std_dev: 0.0,
                sharpe: 0.0,
                skewness: 0.0,
                kurtosis: 0.0,
            };
        }
        let nf = n as f64;
        let mean = sample.iter().sum::<f64>() / nf;
        let mut m2 = 0.0;
        let mut m3 = 0.0;
        let mut m4 = 0.0;
        for &x in sample {
            let d = x - mean;
            let d2 = d * d;
            m2 += d2;
            m3 += d2 * d;
            m4 += d2 * d2;
        }
        m2 /= nf;
        m3 /= nf;
        m4 /= nf;
        let std_dev = if n > 1 {
            (m2 * nf / (nf - 1.0)).sqrt()
        } else {
            0.0
        };
        let skewness = if m2 > 0.0 { m3 / m2.powf(1.5) } else { 0.0 };
        let kurtosis = if m2 > 0.0 { m4 / (m2 * m2) } else { 0.0 };
        let sharpe = if std_dev > 0.0 { mean / std_dev } else { 0.0 };
        Summary {
            n,
            mean,
            median: median(sample),
            std_dev,
            sharpe,
            skewness,
            kurtosis,
        }
    }
}

/// Median of a sample (does not require sorted input). Returns 0 for empty.
pub fn median(sample: &[f64]) -> f64 {
    percentile(sample, 50.0)
}

/// Linear-interpolation percentile (Matlab / NIST convention: the `p`-th
/// percentile of a sorted sample `x[0..n]` sits at fractional index
/// `p/100 * (n - 1)`). `p` is clamped to `[0, 100]`. Returns 0 for empty.
pub fn percentile(sample: &[f64], p: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_sorted(&sorted, p)
}

/// Percentile of an already-sorted sample (ascending).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 100.0);
    let pos = p / 100.0 * (n as f64 - 1.0);
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Box-plot statistics in the Matlab `boxplot` convention used by Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Lower whisker: smallest observation >= q1 - whisker_factor * IQR.
    pub whisker_lo: f64,
    /// Upper whisker: largest observation <= q3 + whisker_factor * IQR.
    pub whisker_hi: f64,
    /// Observations outside the whiskers, "plotted individually".
    pub outliers: Vec<f64>,
}

impl BoxPlot {
    /// Compute box-plot statistics with the conventional whisker factor 1.5.
    pub fn of(sample: &[f64]) -> BoxPlot {
        Self::with_whisker(sample, 1.5)
    }

    /// Compute box-plot statistics with an explicit whisker factor.
    pub fn with_whisker(sample: &[f64], factor: f64) -> BoxPlot {
        let mut sorted: Vec<f64> = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q1 = percentile_sorted(&sorted, 25.0);
        let med = percentile_sorted(&sorted, 50.0);
        let q3 = percentile_sorted(&sorted, 75.0);
        let iqr = q3 - q1;
        let lo_fence = q1 - factor * iqr;
        let hi_fence = q3 + factor * iqr;
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(q1);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(q3);
        let outliers = sorted
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        BoxPlot {
            q1,
            median: med,
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
        }
    }

    /// Render a one-line ASCII box plot over `[axis_lo, axis_hi]` with the
    /// given width; used by the Figure-2 report so the reproduction is
    /// inspectable in a terminal.
    pub fn render_ascii(&self, axis_lo: f64, axis_hi: f64, width: usize) -> String {
        let width = width.max(10);
        let span = (axis_hi - axis_lo).max(f64::MIN_POSITIVE);
        let col = |x: f64| -> usize {
            (((x - axis_lo) / span) * (width - 1) as f64)
                .round()
                .clamp(0.0, (width - 1) as f64) as usize
        };
        let mut row = vec![' '; width];
        for o in &self.outliers {
            if *o >= axis_lo && *o <= axis_hi {
                row[col(*o)] = 'o';
            }
        }
        let (wl, q1, md, q3, wh) = (
            col(self.whisker_lo),
            col(self.q1),
            col(self.median),
            col(self.q3),
            col(self.whisker_hi),
        );
        for c in row.iter_mut().take(q1).skip(wl) {
            if *c == ' ' {
                *c = '-';
            }
        }
        for c in row.iter_mut().take(wh + 1).skip(q3 + 1) {
            if *c == ' ' {
                *c = '-';
            }
        }
        for c in row.iter_mut().take(q3 + 1).skip(q1) {
            *c = '=';
        }
        row[wl] = '|';
        row[wh] = '|';
        row[q1] = '[';
        row[q3] = ']';
        row[md] = '#';
        row.into_iter().collect()
    }
}

/// Maximum drawdown of a cumulative series: the largest peak-to-trough drop
/// `max(peak - later value)` over the series. Zero for monotone increasing
/// or empty input.
pub fn max_drawdown(cumulative: &[f64]) -> f64 {
    let mut peak = f64::NEG_INFINITY;
    let mut mdd: f64 = 0.0;
    for &x in cumulative {
        if x > peak {
            peak = x;
        }
        mdd = mdd.max(peak - x);
    }
    if cumulative.is_empty() {
        0.0
    } else {
        mdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_constant_sample() {
        let s = Summary::of(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.sharpe, 0.0);
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.kurtosis, 0.0);
    }

    #[test]
    fn summary_known_values() {
        // Sample 1..=5: mean 3, median 3, var (n-1) = 2.5.
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((s.sharpe - 3.0 / 2.5f64.sqrt()).abs() < 1e-12);
        assert!(s.skewness.abs() < 1e-12, "symmetric sample");
        // m2 = 2, m4 = (16+1+0+1+16)/5 = 6.8 -> kurtosis 1.7.
        assert!((s.kurtosis - 1.7).abs() < 1e-12);
    }

    #[test]
    fn summary_skew_sign() {
        let right = Summary::of(&[1.0, 1.0, 1.0, 10.0]);
        assert!(right.skewness > 1.0);
        let left = Summary::of(&[-10.0, 1.0, 1.0, 1.0]);
        assert!(left.skewness < -1.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn percentile_interpolation() {
        let x = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&x, 0.0), 10.0);
        assert_eq!(percentile(&x, 100.0), 40.0);
        // pos = 0.25 * 3 = 0.75 -> 10 + 0.75*10 = 17.5
        assert!((percentile(&x, 25.0) - 17.5).abs() < 1e-12);
        assert!((percentile(&x, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn boxplot_no_outliers() {
        let x: Vec<f64> = (1..=11).map(|v| v as f64).collect();
        let b = BoxPlot::of(&x);
        assert_eq!(b.median, 6.0);
        assert_eq!(b.q1, 3.5);
        assert_eq!(b.q3, 8.5);
        assert!(b.outliers.is_empty());
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 11.0);
    }

    #[test]
    fn boxplot_flags_outliers() {
        let mut x: Vec<f64> = (1..=11).map(|v| v as f64).collect();
        x.push(100.0);
        let b = BoxPlot::of(&x);
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_hi <= 11.0);
    }

    #[test]
    fn boxplot_ascii_renders_markers() {
        let x: Vec<f64> = (1..=11).map(|v| v as f64).collect();
        let b = BoxPlot::of(&x);
        let s = b.render_ascii(0.0, 12.0, 40);
        assert_eq!(s.len(), 40);
        assert!(s.contains('['));
        assert!(s.contains(']'));
        assert!(s.contains('#'));
    }

    #[test]
    fn max_drawdown_basic() {
        // Peak 1.3, trough after peak 0.9 -> MDD 0.4.
        let c = [1.0, 1.3, 1.1, 0.9, 1.2];
        assert!((max_drawdown(&c) - 0.4).abs() < 1e-12);
        assert_eq!(max_drawdown(&[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(max_drawdown(&[]), 0.0);
    }
}
