//! Quadrant (sign) correlation.
//!
//! The quadrant correlation of `(x, y)` is obtained by centring both series
//! at their medians, keeping only the *signs* of the centred values, and
//! mapping the resulting sign agreement through the Gaussian consistency
//! transform:
//!
//! ```text
//! rho_Q = sin( (pi / 2) * mean( sign(x_t - med x) * sign(y_t - med y) ) )
//! ```
//!
//! It is extremely cheap (one pass after two median selections), bounded,
//! and has a 50% breakdown point — which is why MarketMiner uses it as the
//! pre-screening stage of the Combined estimator: quadrant first everywhere,
//! expensive Maronna refinement only where the screen says the pair matters.

use crate::correlation::{clamp_corr, CorrelationMeasure};

/// Stateless quadrant correlation estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadrantEstimator;

/// Median by selection (O(n) average), tolerating unsorted input.
fn median_select(values: &mut [f64]) -> f64 {
    let n = values.len();
    debug_assert!(n > 0);
    let mid = n / 2;
    let (_, &mut hi, _) = values.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).unwrap());
    if n % 2 == 1 {
        hi
    } else {
        // Lower middle is the max of the left partition.
        let lo = values[..mid]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        0.5 * (lo + hi)
    }
}

/// Quadrant correlation of two equal-length slices.
///
/// Returns 0 for degenerate inputs (length < 2). Observations that fall
/// exactly on a median contribute sign 0. Result lies in `[-1, 1]`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn quadrant(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "quadrant: length mismatch");
    if x.len() < 2 {
        return 0.0;
    }
    let mut xc = x.to_vec();
    let mut yc = y.to_vec();
    let med_x = median_select(&mut xc);
    let med_y = median_select(&mut yc);
    quadrant_with_medians(x, y, med_x, med_y)
}

/// [`quadrant`] with the two medians supplied by the caller.
///
/// An all-pairs sweep that lets every pair re-derive both medians does
/// `2(n-1)` selections (and two window copies) per stock per interval;
/// computing each stock's median once and passing it here is
/// bitwise-identical, since the same selection code runs on the same
/// slice either way.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
pub fn quadrant_with_medians(x: &[f64], y: &[f64], med_x: f64, med_y: f64) -> f64 {
    assert_eq!(x.len(), y.len(), "quadrant: length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    // `f64::signum` maps +0.0 to 1.0; points sitting exactly on a median
    // must contribute nothing, so use a true three-valued sign.
    #[inline]
    fn sgn(v: f64) -> f64 {
        if v > 0.0 {
            1.0
        } else if v < 0.0 {
            -1.0
        } else {
            0.0
        }
    }
    let mut acc = 0.0;
    let mut informative = 0usize;
    for k in 0..n {
        let sx = sgn(x[k] - med_x);
        let sy = sgn(y[k] - med_y);
        let s = sx * sy;
        if s != 0.0 {
            acc += s;
            informative += 1;
        }
    }
    if informative == 0 {
        return 0.0;
    }
    let mean_sign = acc / n as f64;
    clamp_corr((std::f64::consts::FRAC_PI_2 * mean_sign).sin())
}

impl CorrelationMeasure for QuadrantEstimator {
    fn correlation(&self, x: &[f64], y: &[f64]) -> f64 {
        quadrant(x, y)
    }

    fn name(&self) -> &'static str {
        "Quadrant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pearson::pearson;

    #[test]
    fn perfect_monotone_relation() {
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect(); // monotone, nonlinear
        assert!(quadrant(&x, &y) > 0.95);
        let y_neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!(quadrant(&x, &y_neg) < -0.95);
    }

    #[test]
    fn independent_signs_give_zero() {
        // Alternate quadrant membership evenly: mean sign = 0.
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(quadrant(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn robust_to_gross_outliers() {
        // Strongly correlated series with one catastrophic outlier in y.
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let mut y: Vec<f64> = x.iter().map(|v| v + 0.001 * (v * 17.0).sin()).collect();
        y[25] = 1e9;
        let q = quadrant(&x, &y);
        let p = pearson(&x, &y);
        assert!(q > 0.9, "quadrant survives the outlier: {q}");
        assert!(p < 0.5, "pearson is destroyed by it: {p}");
    }

    #[test]
    fn gaussian_consistency_on_linear_data() {
        // On exactly linear data every point has agreeing signs (except
        // possible median zeros), so mean sign ~ 1 and rho_Q ~ sin(pi/2) = 1.
        let x: Vec<f64> = (0..101).map(|i| i as f64 - 50.0).collect();
        let y = x.clone();
        // 101 points: the median point itself contributes 0, rest agree.
        let expected = (std::f64::consts::FRAC_PI_2 * (100.0 / 101.0)).sin();
        assert!((quadrant(&x, &y) - expected).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(quadrant(&[], &[]), 0.0);
        assert_eq!(quadrant(&[1.0], &[1.0]), 0.0);
        let flat = vec![3.0; 8];
        let ramp: Vec<f64> = (0..8).map(|i| i as f64).collect();
        assert_eq!(quadrant(&flat, &ramp), 0.0);
    }

    #[test]
    fn median_select_even_odd() {
        let mut odd = vec![5.0, 1.0, 3.0];
        assert_eq!(median_select(&mut odd), 3.0);
        let mut even = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_select(&mut even), 2.5);
    }
}
