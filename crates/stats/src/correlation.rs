//! The correlation-measure abstraction shared by the whole system.
//!
//! The paper's experiment treats the correlation measure as the *treatment*:
//! every strategy is run three times, once per [`CorrType`]. The trait below
//! is the single point where the backtester, the MarketMiner correlation
//! engine and the benches meet the estimators.

use serde::{Deserialize, Serialize};

use crate::combined::CombinedEstimator;
use crate::kendall::KendallEstimator;
use crate::maronna::MaronnaEstimator;
use crate::pearson::PearsonEstimator;
use crate::quadrant::QuadrantEstimator;
use crate::spearman::SpearmanEstimator;

/// The three correlation treatments of the paper, plus the quadrant screen
/// on its own (used by ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorrType {
    /// Classical Pearson product-moment correlation.
    Pearson,
    /// Maronna's robust bivariate M-estimator.
    Maronna,
    /// MarketMiner's two-stage estimator: quadrant screen + Maronna refine.
    Combined,
    /// Quadrant (sign) correlation alone.
    Quadrant,
    /// Spearman rank correlation (extension beyond the paper).
    Spearman,
    /// Kendall tau-b rank correlation (extension beyond the paper).
    Kendall,
}

impl CorrType {
    /// The three treatments evaluated in Tables III–V, in paper order.
    pub const TREATMENTS: [CorrType; 3] =
        [CorrType::Maronna, CorrType::Pearson, CorrType::Combined];

    /// Instantiate the estimator for this type with default settings.
    pub fn estimator(self) -> Box<dyn CorrelationMeasure> {
        match self {
            CorrType::Pearson => Box::new(PearsonEstimator),
            CorrType::Maronna => Box::new(MaronnaEstimator::default()),
            CorrType::Combined => Box::new(CombinedEstimator::default()),
            CorrType::Quadrant => Box::new(QuadrantEstimator),
            CorrType::Spearman => Box::new(SpearmanEstimator),
            CorrType::Kendall => Box::new(KendallEstimator),
        }
    }

    /// Human-readable name as it appears in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            CorrType::Pearson => "Pearson",
            CorrType::Maronna => "Maronna",
            CorrType::Combined => "Combined",
            CorrType::Quadrant => "Quadrant",
            CorrType::Spearman => "Spearman",
            CorrType::Kendall => "Kendall",
        }
    }
}

impl std::fmt::Display for CorrType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CorrType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "pearson" => Ok(CorrType::Pearson),
            "maronna" => Ok(CorrType::Maronna),
            "combined" => Ok(CorrType::Combined),
            "quadrant" => Ok(CorrType::Quadrant),
            "spearman" => Ok(CorrType::Spearman),
            "kendall" => Ok(CorrType::Kendall),
            other => Err(format!("unknown correlation type: {other}")),
        }
    }
}

/// A pairwise correlation estimator over two equal-length samples.
///
/// Implementations must be deterministic (the backtester's reproducibility
/// tests rely on it) and thread-safe, because the parallel engine evaluates
/// many pairs concurrently.
pub trait CorrelationMeasure: Send + Sync {
    /// Estimate the correlation of `x` and `y`.
    ///
    /// Returns a value clamped to `[-1, 1]`. Degenerate inputs (length < 2,
    /// zero variance) return 0, which downstream strategy code treats as
    /// "no evidence of co-movement" — the trade trigger requires the
    /// average correlation to *exceed* a positive threshold, so 0 is the
    /// conservative choice.
    ///
    /// # Panics
    /// Implementations panic if `x.len() != y.len()`.
    fn correlation(&self, x: &[f64], y: &[f64]) -> f64;

    /// Name for reports and benches.
    fn name(&self) -> &'static str;
}

/// Clamp helper shared by implementations: estimators can exceed |1| by a
/// few ulps due to rounding.
#[inline]
pub(crate) fn clamp_corr(r: f64) -> f64 {
    if r.is_nan() {
        0.0
    } else {
        r.clamp(-1.0, 1.0)
    }
}

impl wire::Codec for CorrType {
    fn encode(&self, w: &mut wire::Writer) {
        let tag: u8 = match self {
            CorrType::Pearson => 0,
            CorrType::Maronna => 1,
            CorrType::Combined => 2,
            CorrType::Quadrant => 3,
            CorrType::Spearman => 4,
            CorrType::Kendall => 5,
        };
        wire::Codec::encode(&tag, w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(match <u8 as wire::Codec>::decode(r)? {
            0 => CorrType::Pearson,
            1 => CorrType::Maronna,
            2 => CorrType::Combined,
            3 => CorrType::Quadrant,
            4 => CorrType::Spearman,
            5 => CorrType::Kendall,
            _ => return Err(wire::WireError::Invalid("correlation type tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn treatments_match_paper_tables() {
        let names: Vec<&str> = CorrType::TREATMENTS.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["Maronna", "Pearson", "Combined"]);
    }

    #[test]
    fn parse_round_trip() {
        for c in [
            CorrType::Pearson,
            CorrType::Maronna,
            CorrType::Combined,
            CorrType::Quadrant,
        ] {
            assert_eq!(CorrType::from_str(c.name()).unwrap(), c);
        }
        assert_eq!(CorrType::from_str("spearman").unwrap(), CorrType::Spearman);
        assert_eq!(CorrType::from_str("kendall").unwrap(), CorrType::Kendall);
        assert!(CorrType::from_str("cosine").is_err());
    }

    #[test]
    fn estimators_agree_on_perfect_correlation() {
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        for c in [
            CorrType::Pearson,
            CorrType::Maronna,
            CorrType::Combined,
            CorrType::Quadrant,
            CorrType::Spearman,
        ] {
            let e = c.estimator();
            let r = e.correlation(&x, &y);
            assert!(r > 0.99, "{}: {}", e.name(), r);
        }
    }

    #[test]
    fn estimators_handle_degenerate_inputs() {
        let flat = vec![1.0; 30];
        let ramp: Vec<f64> = (0..30).map(|i| i as f64).collect();
        for c in [
            CorrType::Pearson,
            CorrType::Maronna,
            CorrType::Combined,
            CorrType::Quadrant,
            CorrType::Spearman,
        ] {
            let e = c.estimator();
            assert_eq!(e.correlation(&flat, &ramp), 0.0, "{}", e.name());
            assert_eq!(e.correlation(&[], &[]), 0.0, "{}", e.name());
            assert_eq!(e.correlation(&[1.0], &[2.0]), 0.0, "{}", e.name());
        }
    }
}
