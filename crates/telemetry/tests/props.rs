//! Property tests for the merge semantics the deterministic report rests
//! on — sharded counter/gauge/histogram merges must be associative and
//! order-independent — plus a Chrome-trace round-trip through the JSON
//! parser.

use proptest::prelude::*;

use telemetry::json::{self, Json};
use telemetry::metrics::{Histogram, Registry};
use telemetry::trace::{Arg, Tracer, TrackId};

fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1_000_000, 0..64)
}

fn histogram_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c) and a ⊔ b == b ⊔ a for histograms.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in samples(),
        ys in samples(),
        zs in samples(),
    ) {
        let (a, b, c) = (histogram_of(&xs), histogram_of(&ys), histogram_of(&zs));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associativity");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "commutativity");
    }

    /// Splitting a sample stream across any number of shards in any
    /// interleaving yields the same merged histogram as one shard.
    #[test]
    fn sharded_histogram_is_order_independent(
        values in samples(),
        shard_of in proptest::collection::vec(0usize..4, 0..64),
    ) {
        let single = histogram_of(&values);
        let mut shards = vec![Histogram::default(); 4];
        for (k, &v) in values.iter().enumerate() {
            let s = shard_of.get(k).copied().unwrap_or(0);
            shards[s].observe(v);
        }
        // Merge shards in reverse order for good measure.
        let mut merged = Histogram::default();
        for s in shards.iter().rev() {
            merged.merge(s);
        }
        prop_assert_eq!(&merged, &single);
    }

    /// Registry snapshots are independent of which shard got which
    /// sample: counters sum, gauges take the max, histograms merge.
    #[test]
    fn registry_snapshot_is_shard_assignment_independent(
        counts in proptest::collection::vec(1u64..1000, 1..32),
        shard_of in proptest::collection::vec(0usize..3, 1..32),
    ) {
        let split = Registry::default();
        let shards: Vec<_> = (0..3).map(|_| split.bucket("node")).collect();
        let lumped = Registry::default();
        let one = lumped.bucket("node");
        for (k, &c) in counts.iter().enumerate() {
            let s = shard_of.get(k).copied().unwrap_or(0);
            shards[s].count("n", c);
            shards[s].gauge_max("peak", c);
            shards[s].observe("h", c);
            one.count("n", c);
            one.gauge_max("peak", c);
            one.observe("h", c);
        }
        prop_assert_eq!(split.snapshot(), lumped.snapshot());
    }

    /// Whatever mix of events the tracer captured, the export parses
    /// back as JSON and preserves every event with its track and
    /// timestamps. Track names exercise the escaper (quotes, backslashes,
    /// control characters).
    #[test]
    fn chrome_trace_export_round_trips(
        kinds in proptest::collection::vec(0u64..3, 0..40),
        tids in proptest::collection::vec(0u64..16, 40..41),
        tss in proptest::collection::vec(0u64..1_000_000, 40..41),
        durs in proptest::collection::vec(0u64..10_000, 40..41),
        name_picks in proptest::collection::vec(0usize..4, 1..4),
    ) {
        const ODD_NAMES: [&str; 4] = ["plain", "qu\"ote", "back\\slash", "tab\there"];
        let names: Vec<String> = name_picks
            .iter()
            .map(|&p| ODD_NAMES[p].to_string())
            .collect();
        let t = Tracer::new(10_000);
        for (k, name) in names.iter().enumerate() {
            t.name_track(TrackId::node(k), name.clone());
        }
        let mut slices = 0u64;
        let events: Vec<(u64, u64, u64, u64)> = kinds
            .iter()
            .enumerate()
            .map(|(k, &kind)| (kind, tids[k], tss[k], durs[k]))
            .collect();
        for &(kind, tid, ts, dur) in &events {
            let track = TrackId::node(tid as usize);
            match kind {
                0 => {
                    t.complete(track, "turn", ts, dur, vec![("sim", Arg::U(dur))]);
                    slices += 1;
                }
                1 => t.instant(track, "mark", ts, vec![]),
                _ => t.counter(track, "depth", ts, dur),
            }
        }
        let doc = json::parse(&t.export()).unwrap();
        let items = doc.get("traceEvents").unwrap().items();
        // 2 process_name + names.len() thread_name + events.
        prop_assert_eq!(items.len(), 2 + names.len() + events.len());
        let mut seen_slices = 0u64;
        for e in items {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            prop_assert!(matches!(ph, "M" | "X" | "i" | "C"));
            if ph == "X" {
                prop_assert!(e.get("dur").and_then(Json::as_u64).is_some());
                prop_assert_eq!(
                    e.get("args").unwrap().get("sim").and_then(Json::as_u64).is_some(),
                    true
                );
                seen_slices += 1;
            }
            if ph != "M" {
                prop_assert!(e.get("ts").and_then(Json::as_f64).is_some());
            }
        }
        prop_assert_eq!(seen_slices, slices);
    }
}
