//! Causal-provenance explanation as a library: the ancestor tree,
//! latency waterfall and stage summary the `explain_trade` binary
//! renders, promoted to structured data so the serving layer can answer
//! `explain` queries over the wire and the bin stays a thin caller.
//!
//! A [`Lineage`] is built either from a recorded JSON export
//! ([`Lineage::from_json_str`], the bin's path) or incrementally from
//! live [`LineageEvent`] drains ([`Lineage::from_events`] /
//! [`Lineage::extend`], the server's path). [`Lineage::explanation`]
//! produces an [`Explanation`] — target, rendered ancestor tree,
//! waterfall rows, causal stage chain — whose [`Explanation::render`]
//! reproduces the binary's text output.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::json::{self, Json};
use crate::lineage::{EventId, LineageEvent};

/// One event in an explainable lineage.
#[derive(Debug, Clone)]
pub struct ExplainEvent {
    /// The packed `(node, seq)` event id.
    pub id: EventId,
    /// Message kind tag (`quote`, `bars`, `corr`, `order`, `basket`,
    /// `trades`, ...).
    pub kind: String,
    /// Simulated-time interval, when the payload carries one.
    pub interval: Option<u64>,
    /// Wall-clock emission time, µs from run start.
    pub wall_us: u64,
    /// Direct causal parents.
    pub parents: Vec<EventId>,
    /// Payload annotation: strategy kind for orders, strategy kind plus
    /// exit reasons for trade reports.
    pub detail: Option<String>,
}

/// An explainable lineage: events indexed by id, plus the node-name
/// table and the ring's drop count.
#[derive(Debug, Clone, Default)]
pub struct Lineage {
    /// Dense node-name table indexed by the event id's node field.
    pub nodes: Vec<String>,
    /// Events the recording ring evicted (ancestry may be incomplete).
    pub dropped: u64,
    /// Events in canonical id order.
    pub events: BTreeMap<EventId, ExplainEvent>,
}

/// One row of the latency waterfall, in emission order.
#[derive(Debug, Clone)]
pub struct WaterfallRow {
    /// Emission time relative to the chain's first event, µs.
    pub t_us: u64,
    /// Latency from the latest-emitting recorded parent (`None` for
    /// chain roots).
    pub hop_us: Option<u64>,
    /// Message kind tag.
    pub kind: String,
    /// The event id.
    pub id: EventId,
    /// Emitting node's name.
    pub node: String,
    /// Simulated-time interval, when carried.
    pub interval: Option<u64>,
}

/// A fully resolved explanation of one event's provenance.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The explained event.
    pub target: EventId,
    /// The explained event's kind tag.
    pub target_kind: String,
    /// The rendered ancestor tree (shared ancestry printed once with
    /// back-references, wide fan-ins elided past the first few parents).
    pub tree: String,
    /// Every distinct recorded ancestor, ordered by emission time.
    pub waterfall: Vec<WaterfallRow>,
    /// Distinct stages in causal (first-emission) order, annotated
    /// (`order<paper>`, `trades<paper exits=...>`).
    pub stages: Vec<String>,
    /// Wall-clock span from the chain's first event to its last, µs.
    pub end_to_end_us: u64,
    /// Ring drops at explanation time (a hint that ancestry may be
    /// truncated).
    pub dropped: u64,
}

/// Parse `n<node>#<seq>` (the compact display form) or a raw packed u64.
pub fn parse_id(s: &str) -> Option<EventId> {
    if let Some(rest) = s.strip_prefix('n') {
        let (node, seq) = rest.split_once('#')?;
        return Some(EventId::new(node.parse().ok()?, seq.parse().ok()?));
    }
    s.parse().ok().map(EventId)
}

impl Lineage {
    /// Build from a recorded lineage export (the JSON document
    /// `telemetry::lineage::export` writes and `MARKETMINER_LINEAGE`
    /// captures).
    pub fn from_json_str(text: &str) -> Result<Lineage, String> {
        let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
        Lineage::from_json(&doc)
    }

    /// Build from a parsed export document.
    pub fn from_json(doc: &Json) -> Result<Lineage, String> {
        let nodes = doc
            .get("nodes")
            .ok_or("no `nodes` array")?
            .items()
            .iter()
            .map(|n| n.as_str().unwrap_or("?").to_string())
            .collect();
        let dropped = doc.get("dropped").and_then(Json::as_u64).unwrap_or(0);
        let mut events = BTreeMap::new();
        for e in doc.get("events").ok_or("no `events` array")?.items() {
            let id = EventId(
                e.get("id")
                    .and_then(Json::as_u64)
                    .ok_or("event without id")?,
            );
            events.insert(
                id,
                ExplainEvent {
                    id,
                    kind: e
                        .get("kind")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    interval: e.get("interval").and_then(Json::as_u64),
                    detail: e.get("detail").and_then(Json::as_str).map(str::to_string),
                    wall_us: e.get("wall_us").and_then(Json::as_u64).unwrap_or(0),
                    parents: e
                        .get("parents")
                        .map(|p| {
                            p.items()
                                .iter()
                                .filter_map(Json::as_u64)
                                .map(EventId)
                                .collect()
                        })
                        .unwrap_or_default(),
                },
            );
        }
        Ok(Lineage {
            nodes,
            dropped,
            events,
        })
    }

    /// Build from live drained events (the serving layer's path).
    pub fn from_events(events: &[LineageEvent], dropped: u64, nodes: Vec<String>) -> Lineage {
        let mut lin = Lineage {
            nodes,
            dropped,
            events: BTreeMap::new(),
        };
        lin.extend(events);
        lin
    }

    /// Fold another drain into the lineage (first write per id wins —
    /// drains never legitimately repeat an id).
    pub fn extend(&mut self, events: &[LineageEvent]) {
        for ev in events {
            self.events.entry(ev.id).or_insert_with(|| ExplainEvent {
                id: ev.id,
                kind: ev.kind.to_string(),
                interval: ev.interval,
                wall_us: ev.wall_us,
                parents: ev.parents.clone(),
                detail: ev.detail.clone(),
            });
        }
    }

    /// Replace the node-name table (a live graph's names can change at a
    /// reconfiguration cut).
    pub fn set_nodes(&mut self, nodes: Vec<String>) {
        self.nodes = nodes;
    }

    /// The name of the node an event id was minted by.
    pub fn node_name(&self, id: EventId) -> &str {
        self.nodes.get(id.node()).map(String::as_str).unwrap_or("?")
    }

    /// The default explanation target: the last trade report of the run,
    /// else the last basket.
    pub fn default_target(&self) -> Option<EventId> {
        ["trades", "basket"].iter().find_map(|k| {
            self.events
                .values()
                .rev()
                .find(|e| e.kind == *k)
                .map(|e| e.id)
        })
    }

    /// The listable outcomes — trade reports and baskets, in id order.
    pub fn outcomes(&self) -> Vec<&ExplainEvent> {
        self.events
            .values()
            .filter(|e| e.kind == "trades" || e.kind == "basket")
            .collect()
    }

    /// Render the outcome listing (the bin's `--list` output).
    pub fn render_list(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<7} {:>10} {:>8}  node",
            "id", "kind", "wall (µs)", "parents"
        );
        for ev in self.outcomes() {
            let _ = writeln!(
                out,
                "{:<10} {:<7} {:>10} {:>8}  {}{}",
                ev.id.to_string(),
                ev.kind,
                ev.wall_us,
                ev.parents.len(),
                self.node_name(ev.id),
                ev.detail
                    .as_ref()
                    .map(|d| format!("  <{d}>"))
                    .unwrap_or_default()
            );
        }
        out
    }

    /// Full ancestor closure of `id` (including itself), recorded events
    /// only, in id order.
    pub fn ancestors(&self, id: EventId) -> Vec<EventId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![id];
        while let Some(e) = stack.pop() {
            if !seen.insert(e) {
                continue;
            }
            if let Some(ev) = self.events.get(&e) {
                stack.extend(ev.parents.iter().copied());
            }
        }
        seen.into_iter()
            .filter(|e| self.events.contains_key(e))
            .collect()
    }

    /// Resolve the full explanation of `id`, or `None` when the event is
    /// not in this capture.
    pub fn explanation(&self, id: EventId) -> Option<Explanation> {
        let target = self.events.get(&id)?;
        let mut tree = String::new();
        let mut seen = BTreeSet::new();
        self.render_tree(&mut tree, id, "", true, true, &mut seen);

        let mut chain = self.ancestors(id);
        chain.sort_by_key(|e| (self.events[e].wall_us, e.0));
        let t0 = chain.first().map(|e| self.events[e].wall_us).unwrap_or(0);
        let waterfall: Vec<WaterfallRow> = chain
            .iter()
            .map(|e| {
                let ev = &self.events[e];
                WaterfallRow {
                    t_us: ev.wall_us - t0,
                    hop_us: ev
                        .parents
                        .iter()
                        .filter_map(|p| self.events.get(p))
                        .map(|p| p.wall_us)
                        .max()
                        .map(|pw| ev.wall_us.saturating_sub(pw)),
                    kind: ev.kind.clone(),
                    id: ev.id,
                    node: self.node_name(ev.id).to_string(),
                    interval: ev.interval,
                }
            })
            .collect();

        // Stage summary in causal (first-emission) order, annotated.
        let mut stages: Vec<String> = Vec::new();
        for e in &chain {
            let ev = &self.events[e];
            let k = match &ev.detail {
                Some(d) => format!("{}<{}>", ev.kind, d),
                None => ev.kind.clone(),
            };
            if !stages.contains(&k) {
                stages.push(k);
            }
        }
        let end_to_end_us = chain
            .last()
            .map(|e| self.events[e].wall_us - t0)
            .unwrap_or(0);
        Some(Explanation {
            target: id,
            target_kind: target.kind.clone(),
            tree,
            waterfall,
            stages,
            end_to_end_us,
            dropped: self.dropped,
        })
    }

    fn dropped_hint(&self) -> String {
        if self.dropped > 0 {
            format!("; ring dropped {} events", self.dropped)
        } else {
            String::new()
        }
    }

    /// Depth-first ancestor tree. Each event is expanded once; re-visits
    /// print a back-reference so shared ancestry (every order of a
    /// basket shares the corr snapshot) stays readable.
    fn render_tree(
        &self,
        out: &mut String,
        id: EventId,
        prefix: &str,
        last: bool,
        root: bool,
        seen: &mut BTreeSet<EventId>,
    ) {
        let (branch, cont) = if root {
            ("", "")
        } else if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        let Some(ev) = self.events.get(&id) else {
            let _ = writeln!(
                out,
                "{prefix}{branch}{id}  (not recorded{})",
                self.dropped_hint()
            );
            return;
        };
        let iv = ev
            .interval
            .map(|i| format!("  interval={i}"))
            .unwrap_or_default();
        let detail = ev
            .detail
            .as_ref()
            .map(|d| format!("  <{d}>"))
            .unwrap_or_default();
        let expanded = seen.insert(id);
        let back = if expanded || ev.parents.is_empty() {
            ""
        } else {
            "  (ancestors shown above)"
        };
        let _ = writeln!(
            out,
            "{prefix}{branch}{:<7} {:<10} @{:>10} µs  [{}]{iv}{detail}{back}",
            ev.kind,
            id.to_string(),
            ev.wall_us,
            self.node_name(id),
        );
        if !expanded {
            return;
        }
        // Wide fan-ins (a bar batch derived from dozens of quote
        // batches) get elided past the first few parents.
        const MAX_CHILDREN: usize = 8;
        let shown = ev.parents.len().min(MAX_CHILDREN);
        for (k, &p) in ev.parents.iter().take(shown).enumerate() {
            let is_last = k + 1 == ev.parents.len();
            self.render_tree(out, p, &format!("{prefix}{cont}"), is_last, false, seen);
        }
        if ev.parents.len() > shown {
            let _ = writeln!(
                out,
                "{prefix}{cont}└─ … (+{} more parents)",
                ev.parents.len() - shown
            );
        }
    }
}

impl Explanation {
    /// Render the full text explanation (tree + waterfall + stage
    /// chain), byte-identical to what the `explain_trade` binary prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== provenance of {} {} ==\n",
            self.target_kind, self.target
        );
        out.push_str(&self.tree);
        let _ = writeln!(
            out,
            "\n== latency waterfall ({} events) ==\n",
            self.waterfall.len()
        );
        let _ = writeln!(
            out,
            "{:>12}  {:>10}  {:<7} {:<10} {:<24} interval",
            "t (µs)", "hop (µs)", "kind", "id", "node"
        );
        for row in &self.waterfall {
            let hop = row
                .hop_us
                .map(|h| h.to_string())
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{:>12}  {:>10}  {:<7} {:<10} {:<24} {}",
                row.t_us,
                hop,
                row.kind,
                row.id.to_string(),
                row.node,
                row.interval.map(|i| i.to_string()).unwrap_or_default()
            );
        }
        let _ = writeln!(
            out,
            "\nchain covers: {}  (end-to-end {} µs)",
            self.stages.join(" → "),
            self.end_to_end_us
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: usize, seq: u64, kind: &str, wall: u64, parents: Vec<EventId>) -> LineageEvent {
        LineageEvent {
            id: EventId::new(node, seq),
            kind: match kind {
                "quote" => "quote",
                "bars" => "bars",
                "corr" => "corr",
                "order" => "order",
                "basket" => "basket",
                "trades" => "trades",
                _ => "?",
            },
            interval: Some(seq),
            wall_us: wall,
            parents,
            detail: None,
        }
    }

    fn sample_events() -> Vec<LineageEvent> {
        let q = ev(0, 0, "quote", 10, vec![]);
        let b = ev(1, 0, "bars", 20, vec![q.id]);
        let c = ev(2, 0, "corr", 30, vec![b.id]);
        let o = ev(3, 0, "order", 40, vec![c.id, b.id]);
        let t = ev(3, 1, "trades", 50, vec![o.id]);
        vec![q, b, c, o, t]
    }

    fn sample_names() -> Vec<String> {
        vec![
            "collector".into(),
            "bars".into(),
            "corr".into(),
            "host".into(),
        ]
    }

    fn sample() -> Lineage {
        Lineage::from_events(&sample_events(), 0, sample_names())
    }

    #[test]
    fn explanation_resolves_chain_and_waterfall() {
        let lin = sample();
        let target = lin.default_target().expect("has a trades event");
        assert_eq!(target, EventId::new(3, 1));
        let ex = lin.explanation(target).unwrap();
        assert_eq!(ex.waterfall.len(), 5, "full ancestor closure");
        assert_eq!(ex.end_to_end_us, 40);
        assert_eq!(
            ex.stages,
            vec!["quote", "bars", "corr", "order", "trades"],
            "causal stage order"
        );
        assert_eq!(ex.waterfall[0].hop_us, None, "root has no hop");
        assert_eq!(ex.waterfall[4].hop_us, Some(10));
        let text = ex.render();
        assert!(text.contains("== provenance of trades"));
        assert!(text.contains("chain covers: quote → bars → corr → order → trades"));
        assert!(text.contains("[host]"));
    }

    #[test]
    fn unknown_target_is_none_and_ids_parse() {
        let lin = sample();
        assert!(lin.explanation(EventId::new(9, 9)).is_none());
        assert_eq!(parse_id("n3#1"), Some(EventId::new(3, 1)));
        assert_eq!(
            parse_id(&EventId::new(3, 1).0.to_string()).unwrap().node(),
            3
        );
        assert_eq!(parse_id("bogus"), None);
    }

    #[test]
    fn json_round_trip_matches_live_build() {
        let lin = sample();
        let json = crate::lineage::export(&sample_events(), 0, &sample_names());
        let parsed = Lineage::from_json_str(&json).unwrap();
        assert_eq!(parsed.events.len(), lin.events.len());
        let a = parsed
            .explanation(parsed.default_target().unwrap())
            .unwrap();
        let b = lin.explanation(lin.default_target().unwrap()).unwrap();
        assert_eq!(a.render(), b.render());
    }
}
