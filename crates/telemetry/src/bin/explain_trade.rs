//! Render the causal provenance of a trade from a recorded lineage
//! export (`MARKETMINER_LINEAGE=lineage.json` on a `Full`-level run, or
//! `Runtime::with_lineage_path`): the ancestor tree — which quotes fed
//! which bars, which bars fed which correlation snapshot, which snapshot
//! produced which orders and baskets — plus a latency waterfall with the
//! per-hop wall-clock cost of every stage.
//!
//! All parsing and rendering lives in [`telemetry::explain`] (the serve
//! API answers the same query over a socket); this binary is the
//! file-reading, arg-parsing shell around it.
//!
//! Usage:
//!   explain_trade <lineage.json>            # explain the last trade report
//!   explain_trade <lineage.json> n20#41     # explain a specific event id
//!   explain_trade <lineage.json> --list     # enumerate trade/basket ids
//!
//! Ids accept both the compact display form (`n<node>#<seq>`) and the
//! raw packed u64 the JSON carries.

use std::io::Write as _;
use std::process::ExitCode;

use telemetry::explain::{parse_id, Lineage};

fn main() -> ExitCode {
    let mut path = None;
    let mut target = None;
    let mut do_list = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list" => do_list = true,
            "--help" | "-h" => {
                eprintln!("usage: explain_trade <lineage.json> [event-id | --list]");
                return ExitCode::from(2);
            }
            a if path.is_none() => path = Some(a.to_string()),
            a => match parse_id(a) {
                Some(id) => target = Some(id),
                None => {
                    eprintln!("not an event id: {a} (want n<node>#<seq> or a raw u64)");
                    return ExitCode::from(2);
                }
            },
        }
    }
    let Some(path) = path else {
        eprintln!("usage: explain_trade <lineage.json> [event-id | --list]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lin = match Lineage::from_json_str(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{path} is not a lineage export: {e}");
            return ExitCode::FAILURE;
        }
    };
    if lin.dropped > 0 {
        eprintln!(
            "warning: the lineage ring dropped {} events — ancestry may be \
             incomplete (raise MARKETMINER_LINEAGE_CAP)",
            lin.dropped
        );
    }
    // Output is buffered and written once; a broken pipe (| head) is
    // ignored rather than a panic.
    if do_list {
        let _ = std::io::stdout().write_all(lin.render_list().as_bytes());
        return ExitCode::SUCCESS;
    }
    let Some(target) = target.or_else(|| lin.default_target()) else {
        eprintln!("no trade or basket events in {path} — was the run at TelemetryLevel::Full?");
        return ExitCode::FAILURE;
    };
    let Some(explanation) = lin.explanation(target) else {
        let hint = if lin.dropped > 0 {
            format!("; ring dropped {} events", lin.dropped)
        } else {
            String::new()
        };
        eprintln!("event {target} is not in this capture{hint}");
        return ExitCode::FAILURE;
    };
    let _ = std::io::stdout().write_all(explanation.render().as_bytes());
    ExitCode::SUCCESS
}
