//! Render the causal provenance of a trade from a recorded lineage
//! export (`MARKETMINER_LINEAGE=lineage.json` on a `Full`-level run, or
//! `Runtime::with_lineage_path`): the ancestor tree — which quotes fed
//! which bars, which bars fed which correlation snapshot, which snapshot
//! produced which orders and baskets — plus a latency waterfall with the
//! per-hop wall-clock cost of every stage.
//!
//! Usage:
//!   explain_trade <lineage.json>            # explain the last trade report
//!   explain_trade <lineage.json> n20#41     # explain a specific event id
//!   explain_trade <lineage.json> --list     # enumerate trade/basket ids
//!
//! Ids accept both the compact display form (`n<node>#<seq>`) and the
//! raw packed u64 the JSON carries.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::process::ExitCode;

use telemetry::json::{self, Json};
use telemetry::lineage::EventId;

/// One parsed lineage event.
struct Ev {
    id: EventId,
    kind: String,
    interval: Option<u64>,
    wall_us: u64,
    parents: Vec<EventId>,
    /// Payload annotation: strategy kind for orders, strategy kind plus
    /// exit reasons for trade reports.
    detail: Option<String>,
}

/// The parsed export: events indexed by id, plus node names.
struct Lineage {
    nodes: Vec<String>,
    dropped: u64,
    events: BTreeMap<EventId, Ev>,
}

impl Lineage {
    fn node_name(&self, id: EventId) -> &str {
        self.nodes.get(id.node()).map(String::as_str).unwrap_or("?")
    }
}

fn parse_lineage(doc: &Json) -> Result<Lineage, String> {
    let nodes = doc
        .get("nodes")
        .ok_or("no `nodes` array")?
        .items()
        .iter()
        .map(|n| n.as_str().unwrap_or("?").to_string())
        .collect();
    let dropped = doc.get("dropped").and_then(Json::as_u64).unwrap_or(0);
    let mut events = BTreeMap::new();
    for e in doc.get("events").ok_or("no `events` array")?.items() {
        let id = EventId(
            e.get("id")
                .and_then(Json::as_u64)
                .ok_or("event without id")?,
        );
        events.insert(
            id,
            Ev {
                id,
                kind: e
                    .get("kind")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                interval: e.get("interval").and_then(Json::as_u64),
                detail: e.get("detail").and_then(Json::as_str).map(str::to_string),
                wall_us: e.get("wall_us").and_then(Json::as_u64).unwrap_or(0),
                parents: e
                    .get("parents")
                    .map(|p| {
                        p.items()
                            .iter()
                            .filter_map(Json::as_u64)
                            .map(EventId)
                            .collect()
                    })
                    .unwrap_or_default(),
            },
        );
    }
    Ok(Lineage {
        nodes,
        dropped,
        events,
    })
}

/// Parse `n<node>#<seq>` or a raw packed u64.
fn parse_id(s: &str) -> Option<EventId> {
    if let Some(rest) = s.strip_prefix('n') {
        let (node, seq) = rest.split_once('#')?;
        return Some(EventId::new(node.parse().ok()?, seq.parse().ok()?));
    }
    s.parse().ok().map(EventId)
}

/// Depth-first ancestor tree. Each event is expanded once; re-visits
/// print a back-reference so shared ancestry (every order of a basket
/// shares the corr snapshot) stays readable.
fn render_tree(
    out: &mut String,
    lin: &Lineage,
    id: EventId,
    prefix: &str,
    last: bool,
    root: bool,
    seen: &mut std::collections::BTreeSet<EventId>,
) {
    let (branch, cont) = if root {
        ("", "")
    } else if last {
        ("└─ ", "   ")
    } else {
        ("├─ ", "│  ")
    };
    let Some(ev) = lin.events.get(&id) else {
        let _ = writeln!(
            out,
            "{prefix}{branch}{id}  (not recorded{})",
            dropped_hint(lin)
        );
        return;
    };
    let iv = ev
        .interval
        .map(|i| format!("  interval={i}"))
        .unwrap_or_default();
    let detail = ev
        .detail
        .as_ref()
        .map(|d| format!("  <{d}>"))
        .unwrap_or_default();
    let expanded = seen.insert(id);
    let back = if expanded || ev.parents.is_empty() {
        ""
    } else {
        "  (ancestors shown above)"
    };
    let _ = writeln!(
        out,
        "{prefix}{branch}{:<7} {:<10} @{:>10} µs  [{}]{iv}{detail}{back}",
        ev.kind,
        id.to_string(),
        ev.wall_us,
        lin.node_name(id),
    );
    if !expanded {
        return;
    }
    // Wide fan-ins (a bar batch derived from dozens of quote batches)
    // get elided past the first few parents.
    const MAX_CHILDREN: usize = 8;
    let shown = ev.parents.len().min(MAX_CHILDREN);
    for (k, &p) in ev.parents.iter().take(shown).enumerate() {
        let is_last = k + 1 == ev.parents.len();
        render_tree(
            out,
            lin,
            p,
            &format!("{prefix}{cont}"),
            is_last,
            false,
            seen,
        );
    }
    if ev.parents.len() > shown {
        let _ = writeln!(
            out,
            "{prefix}{cont}└─ … (+{} more parents)",
            ev.parents.len() - shown
        );
    }
}

fn dropped_hint(lin: &Lineage) -> String {
    if lin.dropped > 0 {
        format!("; ring dropped {} events", lin.dropped)
    } else {
        String::new()
    }
}

/// Full ancestor closure of `id` (including itself), only recorded events.
fn ancestors(lin: &Lineage, id: EventId) -> Vec<EventId> {
    let mut seen = std::collections::BTreeSet::new();
    let mut stack = vec![id];
    while let Some(e) = stack.pop() {
        if !seen.insert(e) {
            continue;
        }
        if let Some(ev) = lin.events.get(&e) {
            stack.extend(ev.parents.iter().copied());
        }
    }
    seen.into_iter()
        .filter(|e| lin.events.contains_key(e))
        .collect()
}

fn explain(out: &mut String, lin: &Lineage, id: EventId) -> bool {
    let Some(target) = lin.events.get(&id) else {
        eprintln!("event {id} is not in this capture{}", dropped_hint(lin));
        return false;
    };
    let _ = writeln!(out, "== provenance of {} {} ==\n", target.kind, id);
    let mut seen = std::collections::BTreeSet::new();
    render_tree(out, lin, id, "", true, true, &mut seen);

    // Waterfall: every distinct ancestor ordered by emission time, with
    // the hop latency from its latest-emitting recorded parent.
    let mut chain = ancestors(lin, id);
    chain.sort_by_key(|e| (lin.events[e].wall_us, e.0));
    let t0 = chain.first().map(|e| lin.events[e].wall_us).unwrap_or(0);
    let _ = writeln!(out, "\n== latency waterfall ({} events) ==\n", chain.len());
    let _ = writeln!(
        out,
        "{:>12}  {:>10}  {:<7} {:<10} {:<24} interval",
        "t (µs)", "hop (µs)", "kind", "id", "node"
    );
    for e in &chain {
        let ev = &lin.events[e];
        let hop = ev
            .parents
            .iter()
            .filter_map(|p| lin.events.get(p))
            .map(|p| p.wall_us)
            .max()
            .map(|pw| format!("{}", ev.wall_us.saturating_sub(pw)))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:>12}  {:>10}  {:<7} {:<10} {:<24} {}",
            ev.wall_us - t0,
            hop,
            ev.kind,
            ev.id.to_string(),
            lin.node_name(ev.id),
            ev.interval.map(|i| i.to_string()).unwrap_or_default()
        );
    }
    // Stage summary in causal (first-emission) order, not alphabetical.
    // Annotated stages (orders, trade reports) carry their strategy kind
    // and exit reasons inline.
    let mut kinds: Vec<String> = Vec::new();
    for e in &chain {
        let ev = &lin.events[e];
        let k = match &ev.detail {
            Some(d) => format!("{}<{}>", ev.kind, d),
            None => ev.kind.clone(),
        };
        if !kinds.contains(&k) {
            kinds.push(k);
        }
    }
    let _ = writeln!(
        out,
        "\nchain covers: {}  (end-to-end {} µs)",
        kinds.join(" → "),
        lin.events[chain.last().unwrap()].wall_us - t0
    );
    true
}

fn list(out: &mut String, lin: &Lineage) {
    let _ = writeln!(
        out,
        "{:<10} {:<7} {:>10} {:>8}  node",
        "id", "kind", "wall (µs)", "parents"
    );
    for ev in lin.events.values() {
        if ev.kind == "trades" || ev.kind == "basket" {
            let _ = writeln!(
                out,
                "{:<10} {:<7} {:>10} {:>8}  {}{}",
                ev.id.to_string(),
                ev.kind,
                ev.wall_us,
                ev.parents.len(),
                lin.node_name(ev.id),
                ev.detail
                    .as_ref()
                    .map(|d| format!("  <{d}>"))
                    .unwrap_or_default()
            );
        }
    }
}

fn main() -> ExitCode {
    let mut path = None;
    let mut target = None;
    let mut do_list = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--list" => do_list = true,
            "--help" | "-h" => {
                eprintln!("usage: explain_trade <lineage.json> [event-id | --list]");
                return ExitCode::from(2);
            }
            a if path.is_none() => path = Some(a.to_string()),
            a => match parse_id(a) {
                Some(id) => target = Some(id),
                None => {
                    eprintln!("not an event id: {a} (want n<node>#<seq> or a raw u64)");
                    return ExitCode::from(2);
                }
            },
        }
    }
    let Some(path) = path else {
        eprintln!("usage: explain_trade <lineage.json> [event-id | --list]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lin = match parse_lineage(&doc) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{path} is not a lineage export: {e}");
            return ExitCode::FAILURE;
        }
    };
    if lin.dropped > 0 {
        eprintln!(
            "warning: the lineage ring dropped {} events — ancestry may be \
             incomplete (raise MARKETMINER_LINEAGE_CAP)",
            lin.dropped
        );
    }
    // Output is buffered and written once; a broken pipe (| head) is
    // ignored rather than a panic.
    let mut out = String::new();
    if do_list {
        list(&mut out, &lin);
        let _ = std::io::stdout().write_all(out.as_bytes());
        return ExitCode::SUCCESS;
    }
    // Default target: the last trade report of the run, else the last
    // basket.
    let target = target.or_else(|| {
        ["trades", "basket"].iter().find_map(|k| {
            lin.events
                .values()
                .rev()
                .find(|e| e.kind == *k)
                .map(|e| e.id)
        })
    });
    let Some(target) = target else {
        eprintln!("no trade or basket events in {path} — was the run at TelemetryLevel::Full?");
        return ExitCode::FAILURE;
    };
    let ok = explain(&mut out, &lin, target);
    let _ = std::io::stdout().write_all(out.as_bytes());
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
