//! CI validator for exported Chrome traces: parses the JSON, checks the
//! trace_event structure, asserts that every named node track carries
//! at least one real (non-metadata) event, and validates flow binds —
//! every `ph:"s"` must have exactly one matching `ph:"f"` under a unique
//! id, with no dangling half anywhere.
//!
//! Works on single-process traces (the fixed `workers`/`nodes` lanes at
//! pid 1/2) and on fleet-merged traces, where the supervisor splices
//! each rank's records under its own pid pair named
//! `shard<r>/workers` / `shard<r>/nodes`. Lanes are classified by
//! `process_name` metadata, not by hard-coded pids; `--expect-ranks N`
//! additionally asserts that exactly N shard lane pairs are present,
//! each on its own distinct pid pair.
//!
//! Usage: `trace_check <trace.json> [--min-per-node N] [--expect-ranks N]`
//! Exits non-zero with a diagnostic when the trace is malformed, a node
//! track is silent, a shard lane is missing, or flow events do not pair.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use telemetry::json::{self, Json};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_check <trace.json> [--min-per-node N] [--expect-ranks N]");
        return ExitCode::from(2);
    };
    let mut min_per_node = 1u64;
    let mut expect_ranks: Option<usize> = None;
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{flag} needs an integer");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--min-per-node" => min_per_node = value("--min-per-node"),
            "--expect-ranks" => expect_ranks = Some(value("--expect-ranks") as usize),
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(events) = doc.get("traceEvents") else {
        eprintln!("FAIL: no traceEvents array");
        return ExitCode::FAILURE;
    };

    // First pass over metadata: process_name classifies each pid lane as
    // a workers lane or a nodes lane (local or `shard<r>/…`); pids 1/2
    // remain the fallback for traces without process metadata.
    let mut proc_names: BTreeMap<u64, String> = BTreeMap::new();
    for e in events.items() {
        if e.get("ph").and_then(Json::as_str) == Some("M")
            && e.get("name").and_then(Json::as_str) == Some("process_name")
        {
            let pid = e.get("pid").and_then(Json::as_u64).unwrap_or(0);
            let name = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            if let Some(prev) = proc_names.get(&pid) {
                eprintln!("FAIL: pid {pid} named twice ({prev:?} and {name:?})");
                return ExitCode::FAILURE;
            }
            proc_names.insert(pid, name);
        }
    }
    let is_nodes_lane = |pid: u64| match proc_names.get(&pid) {
        Some(n) => n == "nodes" || n.ends_with("/nodes"),
        None => pid == 2,
    };
    let is_workers_lane = |pid: u64| match proc_names.get(&pid) {
        Some(n) => n == "workers" || n.ends_with("/workers"),
        None => pid == 1,
    };

    // thread_name metadata declares the expected tracks; count real
    // events per (pid, tid).
    let mut node_names: BTreeMap<(u64, u64), String> = BTreeMap::new();
    let mut worker_tracks = 0usize;
    let mut counts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut total = 0u64;
    // Flow-bind pairing: per flow id, how many starts ("s") and finishes
    // ("f") were seen. A well-formed trace has exactly one of each —
    // duplicated ids after a fleet merge mean the supervisor failed to
    // remap a rank's flow ids into its own namespace.
    let mut flows: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for e in events.items() {
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
        let pid = e.get("pid").and_then(Json::as_u64).unwrap_or(0);
        let tid = e.get("tid").and_then(Json::as_u64).unwrap_or(0);
        if ph == "M" {
            if e.get("name").and_then(Json::as_str) == Some("thread_name") {
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                if is_nodes_lane(pid) {
                    node_names.insert((pid, tid), name);
                } else if is_workers_lane(pid) {
                    worker_tracks += 1;
                }
            }
            continue;
        }
        // Real events must carry a timestamp.
        if e.get("ts").and_then(Json::as_f64).is_none() {
            eprintln!("FAIL: event without ts: {}", e.render());
            return ExitCode::FAILURE;
        }
        if ph == "s" || ph == "f" {
            let Some(id) = e.get("id").and_then(Json::as_u64) else {
                eprintln!("FAIL: flow event without id: {}", e.render());
                return ExitCode::FAILURE;
            };
            let slot = flows.entry(id).or_insert((0, 0));
            if ph == "s" {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
        *counts.entry((pid, tid)).or_insert(0) += 1;
        total += 1;
    }

    // Every flow id must bind exactly one start to exactly one finish.
    let mut dangling_s = 0u64;
    let mut dangling_f = 0u64;
    let mut dup_ids = 0u64;
    for (id, &(s, f)) in &flows {
        if s > 1 || f > 1 {
            dup_ids += 1;
            if dup_ids <= 5 {
                eprintln!("  flow id {id}: {s} start(s), {f} finish(es)");
            }
        } else if s == 0 {
            dangling_f += 1;
            if dangling_f <= 5 {
                eprintln!("  flow id {id}: finish without a start");
            }
        } else if f == 0 {
            dangling_s += 1;
            if dangling_s <= 5 {
                eprintln!("  flow id {id}: start without a finish");
            }
        }
    }
    if dangling_s + dangling_f + dup_ids > 0 {
        eprintln!(
            "FAIL: flow validation: {dangling_s} dangling start(s), {dangling_f} dangling \
             finish(es), {dup_ids} duplicated id(s) across {} flows",
            flows.len()
        );
        return ExitCode::FAILURE;
    }

    // Fleet lanes: with --expect-ranks N, every rank 0..N must have
    // named shard<r>/workers and shard<r>/nodes lanes, each pair on its
    // own pids (distinct from every other rank and from the local 1/2),
    // and each shard nodes lane must carry at least one real event.
    let mut shard_lanes = 0usize;
    if let Some(n_ranks) = expect_ranks {
        let mut seen_pids: BTreeSet<u64> = BTreeSet::new();
        for rank in 0..n_ranks {
            for kind in ["workers", "nodes"] {
                let want = format!("shard{rank}/{kind}");
                let Some((&pid, _)) = proc_names.iter().find(|(_, n)| **n == want) else {
                    eprintln!("FAIL: missing process lane {want:?}");
                    return ExitCode::FAILURE;
                };
                if pid <= 2 || !seen_pids.insert(pid) {
                    eprintln!("FAIL: lane {want:?} on pid {pid} collides with another lane");
                    return ExitCode::FAILURE;
                }
                if kind == "nodes" {
                    let events_on_lane: u64 = counts
                        .iter()
                        .filter(|((p, _), _)| *p == pid)
                        .map(|(_, c)| c)
                        .sum();
                    if events_on_lane == 0 {
                        eprintln!("FAIL: lane {want:?} (pid {pid}) carries no events");
                        return ExitCode::FAILURE;
                    }
                }
                shard_lanes += 1;
            }
        }
    }

    if node_names.is_empty() {
        eprintln!("FAIL: no node tracks (nodes-lane thread_name metadata) found");
        return ExitCode::FAILURE;
    }
    let mut silent = Vec::new();
    for (track, name) in &node_names {
        let n = counts.get(track).copied().unwrap_or(0);
        if n < min_per_node {
            silent.push(format!(
                "{name} (pid {} tid {}): {n} events",
                track.0, track.1
            ));
        }
    }
    if !silent.is_empty() {
        eprintln!(
            "FAIL: {} of {} node tracks below {min_per_node} event(s):",
            silent.len(),
            node_names.len()
        );
        for s in &silent {
            eprintln!("  {s}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "OK: {path}: {total} events, {} node tracks (all >= {min_per_node}), {worker_tracks} \
         worker tracks, {shard_lanes} shard lanes, {} flow binds (all paired)",
        node_names.len(),
        flows.len()
    );
    ExitCode::SUCCESS
}
