//! Sampling profiler over the scheduler's step accounting: per-node
//! self-time attribution without signals or timers.
//!
//! The pooled scheduler already wraps every node step in a monotonic
//! clock read and records the elapsed nanoseconds into that node's
//! `step.ns` histogram. A [`Profile`] is simply the canonical view of
//! those histograms: for each node, `self_ns` (the histogram sum — time
//! spent inside the node's `step`, excluding queueing and delivery) and
//! `samples` (the histogram count — exactly one sample per executed
//! step, so at `TelemetryLevel::Full` the sample counts are deterministic
//! across worker counts even though the sampled durations are not).
//!
//! Exports: a ranked table ([`Profile::render_ranked`]), folded-stack
//! text compatible with Brendan Gregg's `flamegraph.pl` / `inferno`
//! ([`Profile::render_folded`]), and Perfetto counter-track samples via
//! the tracer's `counter` phase (emitted by the runtime at epoch
//! granularity when a trace is being captured).
//!
//! The motivating question is ROADMAP #2's "where does the
//! non-correlation floor go": [`Profile::top_non_correlation`] names the
//! hottest node outside the correlation engines, which is the next
//! optimisation target once the correlation kernels are saturated.

use crate::metrics::MetricsSnapshot;

/// The histogram name the scheduler records per-step elapsed time under.
pub const STEP_NS: &str = "step.ns";

/// Per-node self-time attribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeProfile {
    /// Node label (the metrics-bucket label, e.g. `corr-engine(Pearson,
    /// M=20)`).
    pub node: String,
    /// Nanoseconds spent inside the node's `step` across the run.
    pub self_ns: u64,
    /// Executed steps (deterministic at `Full`).
    pub samples: u64,
}

impl NodeProfile {
    /// True for the correlation engines — the paper's dominant cost
    /// centre, excluded when asking where the *rest* of the floor goes.
    pub fn is_correlation(&self) -> bool {
        self.node.starts_with("corr-engine")
    }
}

/// A run's per-node self-time profile, ranked hottest first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    nodes: Vec<NodeProfile>,
}

impl Profile {
    /// Build from a metrics snapshot by collecting every `step.ns`
    /// histogram. Ordering is canonical: self-time descending, label
    /// ascending on ties — so two runs with identical accounting render
    /// identical reports.
    pub fn from_snapshot(snap: &MetricsSnapshot) -> Profile {
        let mut nodes: Vec<NodeProfile> = snap
            .histograms
            .iter()
            .filter(|((_, name), _)| name == STEP_NS)
            .map(|((label, _), h)| NodeProfile {
                node: label.clone(),
                self_ns: h.sum(),
                samples: h.count(),
            })
            .collect();
        nodes.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.node.cmp(&b.node)));
        Profile { nodes }
    }

    /// The ranked nodes, hottest first.
    pub fn nodes(&self) -> &[NodeProfile] {
        &self.nodes
    }

    /// True when no node recorded step accounting (e.g. `Off`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total attributed self-time across all nodes.
    pub fn total_self_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.self_ns).sum()
    }

    /// The hottest node outside the correlation engines — the head of
    /// the non-correlation floor.
    pub fn top_non_correlation(&self) -> Option<&NodeProfile> {
        self.nodes.iter().find(|n| !n.is_correlation())
    }

    /// Folded-stack text: one `frames count` line per node, `;`-joined
    /// frames rooted at the DAG, counts in nanoseconds — pipe into
    /// `flamegraph.pl --countname=ns` (or `inferno-flamegraph`) for an
    /// interactive SVG. Nodes are grouped under a `corr` / `floor` frame
    /// so the flame graph splits the paper's two cost centres at the
    /// first level.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            if n.self_ns == 0 {
                continue;
            }
            let class = if n.is_correlation() { "corr" } else { "floor" };
            // Frame names must not contain ';' (the frame separator).
            let frame = n.node.replace(';', ",");
            out.push_str(&format!("marketminer;{class};{frame} {}\n", n.self_ns));
        }
        out
    }

    /// Human-facing ranking: share of total self-time, per-step mean,
    /// and the correlation/floor classification per node.
    pub fn render_ranked(&self) -> String {
        let total = self.total_self_ns().max(1);
        let width = self.nodes.iter().map(|n| n.node.len()).max().unwrap_or(4);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<w$}  {:>10}  {:>6}  {:>10}  {:>9}  class\n",
            "node",
            "self ms",
            "%",
            "steps",
            "ns/step",
            w = width
        ));
        for n in &self.nodes {
            out.push_str(&format!(
                "{:<w$}  {:>10.3}  {:>5.1}%  {:>10}  {:>9}  {}\n",
                n.node,
                n.self_ns as f64 / 1e6,
                n.self_ns as f64 * 100.0 / total as f64,
                n.samples,
                n.self_ns.checked_div(n.samples).unwrap_or(0),
                if n.is_correlation() { "corr" } else { "floor" },
                w = width
            ));
        }
        if let Some(top) = self.top_non_correlation() {
            out.push_str(&format!(
                "top non-correlation node: {} ({:.3} ms self, {:.1}% of total)\n",
                top.node,
                top.self_ns as f64 / 1e6,
                top.self_ns as f64 * 100.0 / total as f64,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn snap_with(steps: &[(&str, &[u64])]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for (node, samples) in steps {
            let mut h = Histogram::default();
            for &v in *samples {
                h.observe(v);
            }
            s.histograms.insert((node.to_string(), STEP_NS.into()), h);
        }
        // A non-step histogram must not leak into the profile.
        let mut other = Histogram::default();
        other.observe(5);
        s.histograms
            .insert(("scheduler".into(), "run_queue.depth".into()), other);
        s
    }

    #[test]
    fn ranks_by_self_time_and_names_the_floor() {
        let snap = snap_with(&[
            ("ohlc-bars(ds=30s)", &[500, 500][..]),
            ("corr-engine(Pearson, M=20)", &[10_000]),
            ("pair-strategy-host(#0, paper)", &[300]),
        ]);
        let p = Profile::from_snapshot(&snap);
        assert_eq!(p.nodes().len(), 3);
        assert_eq!(p.nodes()[0].node, "corr-engine(Pearson, M=20)");
        assert_eq!(p.nodes()[0].self_ns, 10_000);
        assert_eq!(p.nodes()[1].samples, 2);
        assert_eq!(p.total_self_ns(), 11_300);
        let top = p.top_non_correlation().unwrap();
        assert_eq!(top.node, "ohlc-bars(ds=30s)");
        let ranked = p.render_ranked();
        assert!(ranked.contains("top non-correlation node: ohlc-bars(ds=30s)"));
        assert!(ranked.contains("corr\n") && ranked.contains("floor\n"));
    }

    #[test]
    fn folded_stacks_are_flamegraph_compatible() {
        let snap = snap_with(&[
            ("corr-engine(Pearson, M=20)", &[10_000][..]),
            ("ohlc-bars(ds=30s)", &[750]),
            ("idle-node", &[0]),
        ]);
        let folded = Profile::from_snapshot(&snap).render_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2, "zero-self-time nodes are omitted");
        for line in &lines {
            let (frames, count) = line.rsplit_once(' ').unwrap();
            assert!(frames.starts_with("marketminer;"));
            assert!(count.parse::<u64>().is_ok());
        }
        assert!(folded.contains("marketminer;corr;corr-engine(Pearson, M=20) 10000\n"));
        assert!(folded.contains("marketminer;floor;ohlc-bars(ds=30s) 750\n"));
    }

    #[test]
    fn deterministic_ordering_under_ties() {
        let snap = snap_with(&[("b-node", &[100][..]), ("a-node", &[100])]);
        let p = Profile::from_snapshot(&snap);
        assert_eq!(p.nodes()[0].node, "a-node", "ties break by label");
    }
}
