//! Minimal JSON value, writer and recursive-descent parser.
//!
//! The workspace's `serde` shim is marker-traits only (no serializer), so
//! the Chrome-trace exporter hand-rolls its JSON through this module and
//! the round-trip tests parse it back with [`parse`]. Covers exactly the
//! JSON subset the exporters emit: objects, arrays, strings (with escape
//! sequences), finite numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or under-construction JSON value.
///
/// Object keys keep insertion order on the *write* side (`Vec` of pairs)
/// so emitted traces are stable; [`Json::get`] does a linear scan, which
/// is fine for the handful of keys a trace event carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (emitted without an exponent when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric payload truncated to u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => render_num(*x, out),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (k, v) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (k, (key, v)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Group object-array elements by a string field (test helper for
    /// trace inspection).
    pub fn group_by<'a>(&'a self, key: &str) -> BTreeMap<&'a str, Vec<&'a Json>> {
        let mut groups: BTreeMap<&str, Vec<&Json>> = BTreeMap::new();
        for item in self.items() {
            if let Some(Json::Str(v)) = item.get(key) {
                groups.entry(v).or_default().push(item);
            }
        }
        groups
    }
}

fn render_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; exporters never emit them
    } else if x == x.trunc() && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry the byte offset and a short
/// description — enough for a CI assertion, not a full diagnostic.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Decode one multibyte character from a bounded window —
                // validating the whole remaining input per character would
                // make string parsing quadratic in document size. A UTF-8
                // char is at most 4 bytes; a trailing char truncated by
                // the window only shortens `valid_up_to`, never past the
                // char starting at `pos`.
                let end = (*pos + 4).min(bytes.len());
                let window = &bytes[*pos..end];
                let valid = match std::str::from_utf8(window) {
                    Ok(s) => s,
                    Err(e) if e.valid_up_to() > 0 => {
                        std::str::from_utf8(&window[..e.valid_up_to()]).expect("validated prefix")
                    }
                    Err(_) => return Err(format!("invalid utf-8 at byte {pos}")),
                };
                let c = valid.chars().next().expect("non-empty valid prefix");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("worker \"0\"\n".into())),
            ("ts".into(), Json::Num(1234.5)),
            ("n".into(), Json::Num(42.0)),
            (
                "args".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-7.0)]),
            ),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            parse("\"a\\u00e9b\"").unwrap(),
            Json::Str("a\u{e9}b".into())
        );
    }
}
