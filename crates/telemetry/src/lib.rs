//! Zero-dependency observability for the MarketMiner DAG runtime.
//!
//! The subsystem has four parts, all merged into one end-of-run
//! [`report::TelemetryReport`]:
//!
//! * [`metrics`] — counters, peak gauges and log2-bucketed histograms,
//!   accumulated in per-node/per-worker shards and merged in canonical
//!   `(label, name)` order, plus lock-free [`metrics::AtomicHistogram`]s
//!   for scheduler hot paths.
//! * spans — wall-clock slices carrying a second, *simulated-time* axis
//!   (the trading interval / processed-message count) in their args, so a
//!   latency spike can be attributed to a point in the trading day.
//! * [`recorder`] — a bounded flight-recorder ring of structured
//!   lifecycle events (panic/restart/checkpoint/replay/sever/quarantine/
//!   health), replacing ad-hoc diagnostic lines.
//! * [`trace`] — Chrome `trace_event` JSON export (Perfetto-loadable),
//!   one track per worker and one per node; [`json`] is the hand-rolled
//!   emitter/parser (the workspace `serde` shim has no serializer).
//! * [`profile`] — per-node self-time attribution derived from the
//!   scheduler's `step.ns` accounting, exported as a ranked table and
//!   `flamegraph.pl`-compatible folded stacks.
//!
//! Instrumentation is gated by [`TelemetryLevel`]: `Off` costs one
//! predictable branch per site (every probe call starts with an `Option`
//! check on a field that never changes during a run), `Counters` adds
//! atomic/sharded counter updates but never reads the clock on hot paths,
//! `Full` adds timing, spans and the trace.

pub mod explain;
pub mod json;
pub mod lineage;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod report;
pub mod trace;

use std::sync::Arc;
use std::time::Instant;

use lineage::LineageRing;
use metrics::{Bucket, Name, Registry};
use recorder::{FlightKind, FlightRecorder};
use trace::{Arg, Tracer, TrackId};

pub use report::TelemetryReport;

/// Environment variable selecting the [`TelemetryLevel`]
/// (`off`/`counters`/`full`, or `0`/`1`/`2`).
pub const TELEMETRY_ENV: &str = "MARKETMINER_TELEMETRY";

/// Environment variable naming the Chrome-trace output path (implies
/// nothing about level: the trace is only written at `Full`).
pub const TRACE_ENV: &str = "MARKETMINER_TRACE";

/// Environment variable naming the lineage-export output path (like the
/// trace, only written at `Full`).
pub const LINEAGE_ENV: &str = "MARKETMINER_LINEAGE";

/// Environment variable overriding the flight-recorder bound.
pub const RECORDER_CAP_ENV: &str = "MARKETMINER_RECORDER_CAP";

/// Environment variable overriding the lineage-ring bound.
pub const LINEAGE_CAP_ENV: &str = "MARKETMINER_LINEAGE_CAP";

/// A telemetry configuration error. Unlike a missing variable (which
/// falls back to a default), a *malformed* value is a hard error: a run
/// that silently ignored `MARKETMINER_LINEAGE_CAP=1e6` would drop
/// lineage without the operator ever learning why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// An environment variable was set to a value that does not parse.
    InvalidEnv {
        /// The variable's name.
        var: &'static str,
        /// The rejected value.
        value: String,
    },
    /// A run-level configuration object (strategy spec, sweep, schedule)
    /// failed validation. Same philosophy as `InvalidEnv`: refusing to
    /// start beats silently substituting a default.
    Invalid {
        /// What was being configured (e.g. `"strategy spec #3"`).
        what: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl ConfigError {
    /// Build an [`ConfigError::Invalid`] from anything displayable.
    pub fn invalid(what: impl Into<String>, reason: impl std::fmt::Display) -> Self {
        ConfigError::Invalid {
            what: what.into(),
            reason: reason.to_string(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidEnv { var, value } => {
                write!(f, "{var}={value:?} is not a positive integer")
            }
            ConfigError::Invalid { what, reason } => {
                write!(f, "invalid {what}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Ring/collector bounds for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Caps {
    /// Flight-recorder bound.
    pub flight: usize,
    /// Chrome-trace collector bound.
    pub trace: usize,
    /// Lineage-ring bound.
    pub lineage: usize,
}

impl Default for Caps {
    fn default() -> Self {
        Caps {
            flight: DEFAULT_FLIGHT_CAP,
            trace: DEFAULT_TRACE_CAP,
            lineage: lineage::DEFAULT_LINEAGE_CAP,
        }
    }
}

impl Caps {
    /// Bounds from the environment: unset variables keep their defaults,
    /// set-but-malformed values are a [`ConfigError`].
    pub fn from_env() -> Result<Caps, ConfigError> {
        Ok(Caps {
            flight: cap_from_env(RECORDER_CAP_ENV, DEFAULT_FLIGHT_CAP)?,
            trace: DEFAULT_TRACE_CAP,
            lineage: cap_from_env(LINEAGE_CAP_ENV, lineage::DEFAULT_LINEAGE_CAP)?,
        })
    }
}

fn cap_from_env(var: &'static str, default: usize) -> Result<usize, ConfigError> {
    match std::env::var(var) {
        Err(_) => Ok(default),
        Ok(raw) => raw
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or(ConfigError::InvalidEnv { var, value: raw }),
    }
}

/// How much a run measures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TelemetryLevel {
    /// No measurement: every instrumentation site is one predictable
    /// branch. The default.
    #[default]
    Off,
    /// Counters, gauges and the flight recorder — no clock reads on hot
    /// paths, no trace.
    Counters,
    /// Everything: step-latency histograms, spans, Chrome-trace capture.
    Full,
}

impl TelemetryLevel {
    /// Parse a level string (`off`/`counters`/`full`, `0`/`1`/`2`;
    /// unknown values mean `Off`).
    pub fn parse(value: &str) -> TelemetryLevel {
        match value.trim().to_ascii_lowercase().as_str() {
            "counters" | "1" => TelemetryLevel::Counters,
            "full" | "2" => TelemetryLevel::Full,
            _ => TelemetryLevel::Off,
        }
    }

    /// Level from the `MARKETMINER_TELEMETRY` environment variable
    /// (`Off` when unset).
    pub fn from_env() -> TelemetryLevel {
        std::env::var(TELEMETRY_ENV)
            .map(|v| TelemetryLevel::parse(&v))
            .unwrap_or(TelemetryLevel::Off)
    }

    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Full => "full",
        }
    }

    /// Anything at all is measured.
    pub fn enabled(&self) -> bool {
        *self != TelemetryLevel::Off
    }

    /// Timing, spans and trace capture are on.
    pub fn is_full(&self) -> bool {
        *self == TelemetryLevel::Full
    }
}

/// Trace output path from the `MARKETMINER_TRACE` environment variable.
pub fn trace_path_from_env() -> Option<String> {
    std::env::var(TRACE_ENV)
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
}

/// Lineage output path from the `MARKETMINER_LINEAGE` environment
/// variable.
pub fn lineage_path_from_env() -> Option<String> {
    std::env::var(LINEAGE_ENV)
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
}

/// The per-run telemetry hub: one shared instance per `Runtime::run`,
/// handed to probes, the supervisor and the exporters.
pub struct Telemetry {
    level: TelemetryLevel,
    start: Instant,
    /// The sharded metrics registry.
    pub registry: Registry,
    /// The flight recorder.
    pub recorder: FlightRecorder,
    /// The Chrome-trace collector.
    pub tracer: Tracer,
    /// The causal-lineage ring.
    pub lineage: LineageRing,
}

/// Default flight-recorder bound.
pub const DEFAULT_FLIGHT_CAP: usize = 4096;

/// Default trace-event bound (a full sweep day stays well under this;
/// the cap exists so a pathological run cannot exhaust memory).
pub const DEFAULT_TRACE_CAP: usize = 400_000;

impl Telemetry {
    /// New hub at the given level with default bounds.
    pub fn new(level: TelemetryLevel) -> Arc<Telemetry> {
        Telemetry::build(level, Caps::default())
    }

    /// New hub with explicit flight-recorder and tracer bounds (lineage
    /// keeps its default).
    pub fn with_caps(level: TelemetryLevel, flight_cap: usize, trace_cap: usize) -> Arc<Telemetry> {
        Telemetry::build(
            level,
            Caps {
                flight: flight_cap,
                trace: trace_cap,
                ..Caps::default()
            },
        )
    }

    /// New hub with every bound explicit.
    pub fn build(level: TelemetryLevel, caps: Caps) -> Arc<Telemetry> {
        Arc::new(Telemetry {
            level,
            start: Instant::now(),
            registry: Registry::default(),
            recorder: FlightRecorder::new(caps.flight),
            tracer: Tracer::new(caps.trace),
            lineage: LineageRing::new(caps.lineage),
        })
    }

    /// The run's level.
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Timing/span/trace capture is on.
    pub fn is_full(&self) -> bool {
        self.level.is_full()
    }

    /// Wall-clock microseconds since the hub was created (the trace's
    /// time origin).
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// A probe bound to one label (node/worker/subsystem) and trace
    /// track: the handle instrumented code holds. Returns a no-op probe
    /// when the level is `Off`, so call sites need no gating of their own.
    pub fn probe(self: &Arc<Self>, label: impl Into<String>, track: TrackId) -> Probe {
        if !self.level.enabled() {
            return Probe::off();
        }
        let label = label.into();
        Probe {
            inner: Some(Arc::new(ProbeInner {
                bucket: self.registry.bucket(label),
                track,
                tel: Arc::clone(self),
            })),
        }
    }

    /// Record a flight event not attributable to a probe.
    pub fn flight(
        &self,
        kind: FlightKind,
        label: impl Into<String>,
        sim: Option<u64>,
        detail: impl Into<String>,
    ) {
        if self.level.enabled() {
            self.recorder
                .record(kind, label, self.now_us(), sim, detail);
        }
    }

    /// Merge every shard and drain the recorder into the final report.
    pub fn finish(&self) -> TelemetryReport {
        TelemetryReport {
            level: self.level,
            metrics: self.registry.snapshot(),
            flight: self.recorder.drain(),
            flight_dropped: self.recorder.dropped(),
            trace_events: self.tracer.len() as u64,
            trace_dropped: self.tracer.dropped(),
            trace_path: None,
            lineage: self.lineage.drain(),
            lineage_dropped: self.lineage.dropped(),
            lineage_path: None,
        }
    }
}

struct ProbeInner {
    bucket: Arc<Bucket>,
    track: TrackId,
    tel: Arc<Telemetry>,
}

/// A cheap, cloneable handle instrumented code holds: a metrics shard +
/// a trace track + the hub. A disabled probe (`Off`, or a component that
/// was never attached) is `None` inside — every method is then a single
/// predictable branch. Probes survive component snapshot/restore because
/// cloning shares the same shard.
#[derive(Clone, Default)]
pub struct Probe {
    inner: Option<Arc<ProbeInner>>,
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(p) => write!(f, "Probe({})", p.bucket.label()),
            None => f.write_str("Probe(off)"),
        }
    }
}

impl Probe {
    /// The disabled probe.
    pub fn off() -> Probe {
        Probe { inner: None }
    }

    /// Counters/gauges/flight are recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Timing/spans/trace are recorded.
    pub fn is_full(&self) -> bool {
        self.inner.as_ref().is_some_and(|p| p.tel.is_full())
    }

    /// Add to a counter.
    #[inline]
    pub fn count(&self, name: impl Into<Name>, n: u64) {
        if let Some(p) = &self.inner {
            p.bucket.count(name, n);
        }
    }

    /// Record a peak gauge.
    #[inline]
    pub fn gauge_max(&self, name: impl Into<Name>, value: u64) {
        if let Some(p) = &self.inner {
            p.bucket.gauge_max(name, value);
        }
    }

    /// Record a histogram sample (the *value* must already be known; use
    /// [`Probe::span`] when the value is a duration to be measured).
    #[inline]
    pub fn observe(&self, name: impl Into<Name>, value: u64) {
        if let Some(p) = &self.inner {
            p.bucket.observe(name, value);
        }
    }

    /// Record a flight event. `detail` is a closure so disabled probes
    /// never pay for formatting.
    #[inline]
    pub fn flight(&self, kind: FlightKind, sim: Option<u64>, detail: impl FnOnce() -> String) {
        if let Some(p) = &self.inner {
            p.tel
                .recorder
                .record(kind, p.bucket.label(), p.tel.now_us(), sim, detail());
        }
    }

    /// Mark an instant on this probe's trace track (`Full` only).
    #[inline]
    pub fn instant(&self, name: &'static str, sim: Option<u64>) {
        if let Some(p) = &self.inner {
            if p.tel.is_full() {
                let mut args = Vec::new();
                if let Some(s) = sim {
                    args.push(("sim", Arg::U(s)));
                }
                p.tel.tracer.instant(p.track, name, p.tel.now_us(), args);
            }
        }
    }

    /// Open a wall-clock span on this probe's trace track, tagged with a
    /// simulated-time coordinate. The slice is recorded when the guard
    /// drops; its duration is also folded into the `<name>.us` histogram.
    /// Returns an inert guard below `Full`.
    #[inline]
    pub fn span(&self, name: &'static str, sim: Option<u64>) -> SpanGuard {
        match &self.inner {
            Some(p) if p.tel.is_full() => SpanGuard {
                inner: Some(SpanInner {
                    probe: Arc::clone(p),
                    name,
                    start_us: p.tel.now_us(),
                    sim,
                }),
            },
            _ => SpanGuard { inner: None },
        }
    }
}

struct SpanInner {
    probe: Arc<ProbeInner>,
    name: &'static str,
    start_us: u64,
    sim: Option<u64>,
}

/// An open span; records a Chrome-trace slice and a duration histogram
/// sample on drop.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Set (or update) the simulated-time coordinate after the span was
    /// opened — e.g. once the message's interval is known.
    pub fn set_sim(&mut self, sim: u64) {
        if let Some(s) = &mut self.inner {
            s.sim = Some(sim);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.inner.take() {
            let end = s.probe.tel.now_us();
            let dur = end.saturating_sub(s.start_us);
            let mut args = Vec::new();
            if let Some(sim) = s.sim {
                args.push(("sim", Arg::U(sim)));
            }
            s.probe
                .tel
                .tracer
                .complete(s.probe.track, s.name, s.start_us, dur, args);
            s.probe.bucket.observe(format!("{}.us", s.name), dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(TelemetryLevel::parse("full"), TelemetryLevel::Full);
        assert_eq!(TelemetryLevel::parse("COUNTERS"), TelemetryLevel::Counters);
        assert_eq!(TelemetryLevel::parse("2"), TelemetryLevel::Full);
        assert_eq!(TelemetryLevel::parse("nonsense"), TelemetryLevel::Off);
        assert!(TelemetryLevel::Off < TelemetryLevel::Counters);
        assert!(TelemetryLevel::Counters < TelemetryLevel::Full);
    }

    #[test]
    fn off_probe_is_inert() {
        let tel = Telemetry::new(TelemetryLevel::Off);
        let probe = tel.probe("node", TrackId::node(0));
        assert!(!probe.is_enabled());
        probe.count("x", 1);
        probe.flight(FlightKind::Panic, None, || unreachable!("lazy detail"));
        drop(probe.span("step", None));
        let rep = tel.finish();
        assert!(rep.metrics.counters.is_empty());
        assert!(rep.flight.is_empty());
        assert_eq!(rep.trace_events, 0);
    }

    #[test]
    fn counters_level_skips_spans_but_keeps_counts() {
        let tel = Telemetry::new(TelemetryLevel::Counters);
        let probe = tel.probe("node", TrackId::node(0));
        assert!(probe.is_enabled());
        assert!(!probe.is_full());
        probe.count("msgs", 2);
        probe.flight(FlightKind::Checkpoint, Some(10), || "16 bytes".into());
        drop(probe.span("step", Some(1)));
        let rep = tel.finish();
        assert_eq!(rep.metrics.counter("node", "msgs"), 2);
        assert_eq!(rep.flight.len(), 1);
        assert_eq!(rep.trace_events, 0, "no trace below Full");
    }

    #[test]
    fn full_level_records_spans_with_both_axes() {
        let tel = Telemetry::new(TelemetryLevel::Full);
        let probe = tel.probe("corr", TrackId::node(4));
        {
            let mut span = probe.span("snapshot", None);
            span.set_sim(42);
        }
        let rep = tel.finish();
        assert_eq!(rep.trace_events, 1);
        assert!(rep.metrics.histogram("corr", "snapshot.us").is_some());
        let doc = json::parse(&tel.tracer.export()).unwrap();
        let slice = doc
            .get("traceEvents")
            .unwrap()
            .items()
            .iter()
            .find(|e| e.get("ph").and_then(json::Json::as_str) == Some("X"))
            .cloned()
            .unwrap();
        assert_eq!(
            slice.get("args").unwrap().get("sim").unwrap().as_u64(),
            Some(42)
        );
    }
}
