//! The metrics registry: counters, peak gauges and log-bucketed
//! histograms, accumulated in per-worker/per-node shards ([`Bucket`]s)
//! and merged into one canonically ordered [`MetricsSnapshot`] at the end
//! of a run.
//!
//! Every merge operation is associative and commutative — counters add,
//! gauges take the maximum, histograms add per power-of-two bucket — so
//! the merged snapshot is independent of shard order and of how samples
//! were distributed across shards. That is what makes the end-of-run
//! report deterministic in *structure* under any worker interleaving (the
//! sampled values themselves reflect real scheduling, of course).

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Metric name: `&'static` for instrumentation sites, owned for labels
/// synthesised at runtime (per-edge counters).
pub type Name = Cow<'static, str>;

/// Number of power-of-two histogram buckets: bucket 0 holds the value 0,
/// bucket `k >= 1` holds values in `[2^(k-1), 2^k)`, covering all of u64.
pub const HISTO_BUCKETS: usize = 65;

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Lower bound of a bucket (its reported representative value).
pub fn bucket_floor(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A log2-bucketed histogram of u64 samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTO_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTO_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram in (associative, commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate: the lower bound of the bucket the `q`-quantile
    /// sample falls in. Deterministic given the bucket contents; accurate
    /// to within a factor of 2 (the bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_floor(k).max(self.min()).min(self.max);
            }
        }
        self.max
    }

    /// Raw bucket counts (for property tests).
    pub fn buckets(&self) -> &[u64; HISTO_BUCKETS] {
        &self.buckets
    }
}

/// A lock-free histogram for hot paths: power-of-two buckets of
/// `AtomicU64`, folded into a plain [`Histogram`] at end of run. Sized
/// and pre-allocated once (e.g. one per node), so the record path is a
/// handful of relaxed atomic RMWs with no allocation or locking.
pub struct AtomicHistogram {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Record one sample (relaxed ordering: totals are read only after
    /// all workers have joined).
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Snapshot into a plain histogram.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram {
            buckets: std::array::from_fn(|k| self.buckets[k].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        };
        if h.count == 0 {
            h.min = u64::MAX;
        }
        h
    }
}

#[derive(Default)]
struct BucketData {
    counters: BTreeMap<Name, u64>,
    gauges: BTreeMap<Name, u64>,
    histograms: BTreeMap<Name, Histogram>,
}

/// One shard of the registry, owned by a probe (typically one per node or
/// per worker). All writes go through a shard-local mutex that is
/// effectively uncontended: exactly one worker executes a given node at a
/// time, so the lock is there for the snapshot/restore clone path, not
/// for throughput.
pub struct Bucket {
    label: String,
    data: Mutex<BucketData>,
}

impl Bucket {
    /// Add to a counter.
    pub fn count(&self, name: impl Into<Name>, n: u64) {
        let mut d = self.data.lock().expect("metrics bucket");
        *d.counters.entry(name.into()).or_insert(0) += n;
    }

    /// Record a peak gauge (merge takes the maximum, so the merged value
    /// is order-independent: the run's high-water mark).
    pub fn gauge_max(&self, name: impl Into<Name>, value: u64) {
        let mut d = self.data.lock().expect("metrics bucket");
        let g = d.gauges.entry(name.into()).or_insert(0);
        *g = (*g).max(value);
    }

    /// Record a histogram sample.
    pub fn observe(&self, name: impl Into<Name>, value: u64) {
        let mut d = self.data.lock().expect("metrics bucket");
        d.histograms.entry(name.into()).or_default().observe(value);
    }

    /// Fold a pre-aggregated histogram in — the end-of-run merge path for
    /// hot-path [`AtomicHistogram`] snapshots. Empty histograms are
    /// skipped so they leave no entry in the report.
    pub fn merge_histogram(&self, name: impl Into<Name>, h: &Histogram) {
        if h.count() == 0 {
            return;
        }
        let mut d = self.data.lock().expect("metrics bucket");
        d.histograms.entry(name.into()).or_default().merge(h);
    }

    /// The shard's label (node or worker name).
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// The sharded registry: hands out [`Bucket`]s and merges them all into a
/// canonical snapshot at the end of a run.
#[derive(Default)]
pub struct Registry {
    buckets: Mutex<Vec<Arc<Bucket>>>,
}

impl Registry {
    /// Create (and register) a new shard with the given label. Multiple
    /// shards may share a label; they merge at snapshot time.
    pub fn bucket(&self, label: impl Into<String>) -> Arc<Bucket> {
        let b = Arc::new(Bucket {
            label: label.into(),
            data: Mutex::new(BucketData::default()),
        });
        self.buckets.lock().expect("registry").push(Arc::clone(&b));
        b
    }

    /// Merge every shard into one canonically ordered snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let buckets = self.buckets.lock().expect("registry");
        let mut snap = MetricsSnapshot::default();
        for b in buckets.iter() {
            let d = b.data.lock().expect("metrics bucket");
            for (name, &v) in &d.counters {
                *snap
                    .counters
                    .entry((b.label.clone(), name.to_string()))
                    .or_insert(0) += v;
            }
            for (name, &v) in &d.gauges {
                let g = snap
                    .gauges
                    .entry((b.label.clone(), name.to_string()))
                    .or_insert(0);
                *g = (*g).max(v);
            }
            for (name, h) in &d.histograms {
                snap.histograms
                    .entry((b.label.clone(), name.to_string()))
                    .or_default()
                    .merge(h);
            }
        }
        snap
    }
}

/// The merged, canonically ordered (by `(label, name)`) view of every
/// shard — what the text reporter renders.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters keyed by `(label, name)`.
    pub counters: BTreeMap<(String, String), u64>,
    /// Peak gauges keyed by `(label, name)`.
    pub gauges: BTreeMap<(String, String), u64>,
    /// Histograms keyed by `(label, name)`.
    pub histograms: BTreeMap<(String, String), Histogram>,
}

impl MetricsSnapshot {
    /// Counter lookup.
    pub fn counter(&self, label: &str, name: &str) -> u64 {
        self.counters
            .get(&(label.to_string(), name.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Histogram lookup.
    pub fn histogram(&self, label: &str, name: &str) -> Option<&Histogram> {
        self.histograms.get(&(label.to_string(), name.to_string()))
    }

    /// Sum a counter across all labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((_, n), _)| n == name)
            .map(|(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_floor(2), 2);
        assert_eq!(bucket_floor(64), 1 << 63);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile(0.5) <= 100);
        assert!(h.quantile(1.0) <= 1000);
    }

    #[test]
    fn atomic_histogram_matches_plain() {
        let a = AtomicHistogram::default();
        let mut h = Histogram::default();
        for v in [0u64, 7, 7, 512, 81, 3] {
            a.observe(v);
            h.observe(v);
        }
        assert_eq!(a.snapshot(), h);
    }

    #[test]
    fn registry_merges_shards_canonically() {
        let r = Registry::default();
        let b1 = r.bucket("node-a");
        let b2 = r.bucket("node-a");
        let b3 = r.bucket("node-b");
        b1.count("msgs", 3);
        b2.count("msgs", 4);
        b3.count("msgs", 5);
        b1.gauge_max("depth", 9);
        b2.gauge_max("depth", 2);
        b1.observe("lat", 10);
        b2.observe("lat", 20);
        let s = r.snapshot();
        assert_eq!(s.counter("node-a", "msgs"), 7);
        assert_eq!(s.counter("node-b", "msgs"), 5);
        assert_eq!(s.counter_total("msgs"), 12);
        assert_eq!(s.gauges[&("node-a".to_string(), "depth".to_string())], 9);
        assert_eq!(s.histogram("node-a", "lat").unwrap().count(), 2);
    }
}
