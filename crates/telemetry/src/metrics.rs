//! The metrics registry: counters, peak gauges and log-bucketed
//! histograms, accumulated in per-worker/per-node shards ([`Bucket`]s)
//! and merged into one canonically ordered [`MetricsSnapshot`] at the end
//! of a run.
//!
//! Every merge operation is associative and commutative — counters add,
//! gauges take the maximum, histograms add per power-of-two bucket — so
//! the merged snapshot is independent of shard order and of how samples
//! were distributed across shards. That is what makes the end-of-run
//! report deterministic in *structure* under any worker interleaving (the
//! sampled values themselves reflect real scheduling, of course).

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Metric name: `&'static` for instrumentation sites, owned for labels
/// synthesised at runtime (per-edge counters).
pub type Name = Cow<'static, str>;

/// Number of power-of-two histogram buckets: bucket 0 holds the value 0,
/// bucket `k >= 1` holds values in `[2^(k-1), 2^k)`, covering all of u64.
pub const HISTO_BUCKETS: usize = 65;

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Lower bound of a bucket (its reported representative value).
pub fn bucket_floor(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A log2-bucketed histogram of u64 samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTO_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTO_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram in (associative, commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate: the lower bound of the bucket the `q`-quantile
    /// sample falls in. Deterministic given the bucket contents; accurate
    /// to within a factor of 2 (the bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_floor(k).max(self.min()).min(self.max);
            }
        }
        self.max
    }

    /// Raw bucket counts (for property tests).
    pub fn buckets(&self) -> &[u64; HISTO_BUCKETS] {
        &self.buckets
    }

    /// Decompose into wire-friendly parts: the non-empty buckets as
    /// `(index, count)` pairs, plus `(count, sum, raw_min, max)`.
    /// `raw_min` is the internal sentinel (`u64::MAX` when empty), so
    /// `from_parts` reconstructs the histogram bit-identically.
    pub fn to_parts(&self) -> (Vec<(u32, u64)>, u64, u64, u64, u64) {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(k, &n)| (k as u32, n))
            .collect();
        (buckets, self.count, self.sum, self.min, self.max)
    }

    /// Rebuild from [`to_parts`](Histogram::to_parts) output. Bucket
    /// indices past [`HISTO_BUCKETS`] are ignored (a corrupt frame fails
    /// its CRC long before this, but stay total anyway).
    pub fn from_parts(
        buckets: &[(u32, u64)],
        count: u64,
        sum: u64,
        raw_min: u64,
        max: u64,
    ) -> Histogram {
        let mut h = Histogram {
            buckets: [0; HISTO_BUCKETS],
            count,
            sum,
            min: raw_min,
            max,
        };
        for &(k, n) in buckets {
            if let Some(b) = h.buckets.get_mut(k as usize) {
                *b = n;
            }
        }
        h
    }

    /// The per-epoch delta against an earlier snapshot of the same
    /// histogram: buckets, count and sum subtract (the earlier snapshot
    /// is a prefix of this one, so the subtraction is exact), while min
    /// and max are carried *cumulatively* — [`merge`](Histogram::merge)
    /// takes min/max anyway, so folding a stream of deltas reproduces
    /// the cumulative histogram bit-identically.
    pub fn delta_since(&self, prev: &Histogram) -> Histogram {
        let mut d = Histogram {
            buckets: [0; HISTO_BUCKETS],
            count: self.count.saturating_sub(prev.count),
            sum: self.sum.saturating_sub(prev.sum),
            min: self.min,
            max: self.max,
        };
        for (k, b) in d.buckets.iter_mut().enumerate() {
            *b = self.buckets[k].saturating_sub(prev.buckets[k]);
        }
        d
    }
}

/// A lock-free histogram for hot paths: power-of-two buckets of
/// `AtomicU64`, folded into a plain [`Histogram`] at end of run. Sized
/// and pre-allocated once (e.g. one per node), so the record path is a
/// handful of relaxed atomic RMWs with no allocation or locking.
pub struct AtomicHistogram {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Record one sample (relaxed ordering: totals are read only after
    /// all workers have joined).
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Snapshot into a plain histogram.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram {
            buckets: std::array::from_fn(|k| self.buckets[k].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        };
        if h.count == 0 {
            h.min = u64::MAX;
        }
        h
    }
}

#[derive(Default)]
struct BucketData {
    counters: BTreeMap<Name, u64>,
    gauges: BTreeMap<Name, u64>,
    histograms: BTreeMap<Name, Histogram>,
}

/// One shard of the registry, owned by a probe (typically one per node or
/// per worker). All writes go through a shard-local mutex that is
/// effectively uncontended: exactly one worker executes a given node at a
/// time, so the lock is there for the snapshot/restore clone path, not
/// for throughput.
pub struct Bucket {
    label: String,
    data: Mutex<BucketData>,
}

impl Bucket {
    /// Add to a counter.
    pub fn count(&self, name: impl Into<Name>, n: u64) {
        let mut d = self.data.lock().expect("metrics bucket");
        *d.counters.entry(name.into()).or_insert(0) += n;
    }

    /// Record a peak gauge (merge takes the maximum, so the merged value
    /// is order-independent: the run's high-water mark).
    pub fn gauge_max(&self, name: impl Into<Name>, value: u64) {
        let mut d = self.data.lock().expect("metrics bucket");
        let g = d.gauges.entry(name.into()).or_insert(0);
        *g = (*g).max(value);
    }

    /// Record a histogram sample.
    pub fn observe(&self, name: impl Into<Name>, value: u64) {
        let mut d = self.data.lock().expect("metrics bucket");
        d.histograms.entry(name.into()).or_default().observe(value);
    }

    /// Fold a pre-aggregated histogram in — the end-of-run merge path for
    /// hot-path [`AtomicHistogram`] snapshots. Empty histograms are
    /// skipped so they leave no entry in the report.
    pub fn merge_histogram(&self, name: impl Into<Name>, h: &Histogram) {
        if h.count() == 0 {
            return;
        }
        let mut d = self.data.lock().expect("metrics bucket");
        d.histograms.entry(name.into()).or_default().merge(h);
    }

    /// The shard's label (node or worker name).
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// The sharded registry: hands out [`Bucket`]s and merges them all into a
/// canonical snapshot at the end of a run.
#[derive(Default)]
pub struct Registry {
    buckets: Mutex<Vec<Arc<Bucket>>>,
}

impl Registry {
    /// Create (and register) a new shard with the given label. Multiple
    /// shards may share a label; they merge at snapshot time.
    pub fn bucket(&self, label: impl Into<String>) -> Arc<Bucket> {
        let b = Arc::new(Bucket {
            label: label.into(),
            data: Mutex::new(BucketData::default()),
        });
        self.buckets.lock().expect("registry").push(Arc::clone(&b));
        b
    }

    /// Merge every shard into one canonically ordered snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let buckets = self.buckets.lock().expect("registry");
        let mut snap = MetricsSnapshot::default();
        for b in buckets.iter() {
            let d = b.data.lock().expect("metrics bucket");
            for (name, &v) in &d.counters {
                *snap
                    .counters
                    .entry((b.label.clone(), name.to_string()))
                    .or_insert(0) += v;
            }
            for (name, &v) in &d.gauges {
                let g = snap
                    .gauges
                    .entry((b.label.clone(), name.to_string()))
                    .or_insert(0);
                *g = (*g).max(v);
            }
            for (name, h) in &d.histograms {
                snap.histograms
                    .entry((b.label.clone(), name.to_string()))
                    .or_default()
                    .merge(h);
            }
        }
        snap
    }
}

/// The merged, canonically ordered (by `(label, name)`) view of every
/// shard — what the text reporter renders.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters keyed by `(label, name)`.
    pub counters: BTreeMap<(String, String), u64>,
    /// Peak gauges keyed by `(label, name)`.
    pub gauges: BTreeMap<(String, String), u64>,
    /// Histograms keyed by `(label, name)`.
    pub histograms: BTreeMap<(String, String), Histogram>,
}

impl MetricsSnapshot {
    /// Counter lookup.
    pub fn counter(&self, label: &str, name: &str) -> u64 {
        self.counters
            .get(&(label.to_string(), name.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Histogram lookup.
    pub fn histogram(&self, label: &str, name: &str) -> Option<&Histogram> {
        self.histograms.get(&(label.to_string(), name.to_string()))
    }

    /// Sum a counter across all labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((_, n), _)| n == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// True when no metric of any kind is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another snapshot in with the same semantics as the registry
    /// merge: counters add, gauges take the maximum, histograms
    /// bucket-merge. Associative and commutative, so a fleet of shard
    /// snapshots merges to the same totals in any arrival order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (key, &v) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += v;
        }
        for (key, &v) in &other.gauges {
            let g = self.gauges.entry(key.clone()).or_insert(0);
            *g = (*g).max(v);
        }
        for (key, h) in &other.histograms {
            self.histograms.entry(key.clone()).or_default().merge(h);
        }
    }

    /// The delta against an earlier snapshot of the same registry:
    /// counters subtract, histograms subtract per bucket (min/max carried
    /// cumulatively, see [`Histogram::delta_since`]), gauges carry their
    /// current high-water mark. Unchanged entries are omitted, so an idle
    /// epoch encodes to (almost) nothing. `prev.merge(&delta)` rebuilds
    /// this snapshot bit-identically.
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        let mut d = MetricsSnapshot::default();
        for (key, &v) in &self.counters {
            let before = prev.counters.get(key).copied().unwrap_or(0);
            if v != before {
                d.counters.insert(key.clone(), v - before);
            }
        }
        for (key, &v) in &self.gauges {
            if prev.gauges.get(key) != Some(&v) {
                d.gauges.insert(key.clone(), v);
            }
        }
        for (key, h) in &self.histograms {
            match prev.histograms.get(key) {
                Some(before) if before == h => {}
                Some(before) => {
                    d.histograms.insert(key.clone(), h.delta_since(before));
                }
                None => {
                    d.histograms.insert(key.clone(), h.clone());
                }
            }
        }
        d
    }

    /// Zero-dependency Prometheus-style text exposition. Metric names
    /// are sanitised (`[a-zA-Z0-9_]`, prefixed `mm_`), the shard label
    /// becomes a `node="..."` label, counters get the `_total` suffix,
    /// and histograms expose cumulative `_bucket{le=...}` series over the
    /// power-of-two buckets plus `_count` / `_sum`. Output order is the
    /// canonical snapshot order, so two identical snapshots render
    /// byte-identically.
    pub fn render_prometheus(&self) -> String {
        fn sanitise(name: &str) -> String {
            let mut s: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            if s.starts_with(|c: char| c.is_ascii_digit()) {
                s.insert(0, '_');
            }
            s
        }
        fn escape(label: &str) -> String {
            label.replace('\\', "\\\\").replace('"', "\\\"")
        }
        // Regroup by metric name: one # TYPE header per family, then the
        // per-node samples in canonical label order.
        let mut counters: BTreeMap<String, Vec<(&str, u64)>> = BTreeMap::new();
        for ((label, name), &v) in &self.counters {
            counters.entry(sanitise(name)).or_default().push((label, v));
        }
        let mut gauges: BTreeMap<String, Vec<(&str, u64)>> = BTreeMap::new();
        for ((label, name), &v) in &self.gauges {
            gauges.entry(sanitise(name)).or_default().push((label, v));
        }
        let mut histograms: BTreeMap<String, Vec<(&str, &Histogram)>> = BTreeMap::new();
        for ((label, name), h) in &self.histograms {
            histograms
                .entry(sanitise(name))
                .or_default()
                .push((label, h));
        }
        let mut out = String::new();
        for (name, samples) in &counters {
            out.push_str(&format!("# TYPE mm_{name}_total counter\n"));
            for (label, v) in samples {
                out.push_str(&format!(
                    "mm_{name}_total{{node=\"{}\"}} {v}\n",
                    escape(label)
                ));
            }
        }
        for (name, samples) in &gauges {
            out.push_str(&format!("# TYPE mm_{name} gauge\n"));
            for (label, v) in samples {
                out.push_str(&format!("mm_{name}{{node=\"{}\"}} {v}\n", escape(label)));
            }
        }
        for (name, samples) in &histograms {
            out.push_str(&format!("# TYPE mm_{name} histogram\n"));
            for (label, h) in samples {
                let node = escape(label);
                let mut cum = 0u64;
                for (k, &n) in h.buckets().iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cum += n;
                    // The bucket holding [2^(k-1), 2^k) is cumulative at
                    // le = 2^k - 1 (the largest value it can contain).
                    let le = if k == 0 { 0 } else { (1u128 << k) - 1 };
                    out.push_str(&format!(
                        "mm_{name}_bucket{{node=\"{node}\",le=\"{le}\"}} {cum}\n"
                    ));
                }
                out.push_str(&format!(
                    "mm_{name}_bucket{{node=\"{node}\",le=\"+Inf\"}} {}\n",
                    h.count()
                ));
                out.push_str(&format!(
                    "mm_{name}_count{{node=\"{node}\"}} {}\n",
                    h.count()
                ));
                out.push_str(&format!("mm_{name}_sum{{node=\"{node}\"}} {}\n", h.sum()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_floor(2), 2);
        assert_eq!(bucket_floor(64), 1 << 63);
    }

    #[test]
    fn histogram_summary_stats() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile(0.5) <= 100);
        assert!(h.quantile(1.0) <= 1000);
    }

    #[test]
    fn atomic_histogram_matches_plain() {
        let a = AtomicHistogram::default();
        let mut h = Histogram::default();
        for v in [0u64, 7, 7, 512, 81, 3] {
            a.observe(v);
            h.observe(v);
        }
        assert_eq!(a.snapshot(), h);
    }

    #[test]
    fn histogram_parts_round_trip() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 7, 7, 512, u64::MAX] {
            h.observe(v);
        }
        let (buckets, count, sum, raw_min, max) = h.to_parts();
        assert_eq!(Histogram::from_parts(&buckets, count, sum, raw_min, max), h);
        // The empty histogram round-trips too (raw min sentinel intact).
        let e = Histogram::default();
        let (buckets, count, sum, raw_min, max) = e.to_parts();
        assert!(buckets.is_empty());
        assert_eq!(raw_min, u64::MAX);
        assert_eq!(Histogram::from_parts(&buckets, count, sum, raw_min, max), e);
    }

    #[test]
    fn histogram_deltas_refold_bit_identically() {
        let mut cum = Histogram::default();
        let mut folded = Histogram::default();
        let mut prev = Histogram::default();
        for chunk in [vec![3u64, 9], vec![], vec![1, 1024, 2]] {
            for v in chunk {
                cum.observe(v);
            }
            let delta = cum.delta_since(&prev);
            folded.merge(&delta);
            prev = cum.clone();
        }
        assert_eq!(folded, cum);
    }

    #[test]
    fn snapshot_deltas_refold_and_merge_commutes() {
        let mk = |msgs: u64, lat: &[u64]| {
            let mut s = MetricsSnapshot::default();
            s.counters.insert(("a".into(), "msgs".into()), msgs);
            s.gauges.insert(("a".into(), "depth".into()), msgs + 1);
            let mut h = Histogram::default();
            for &v in lat {
                h.observe(v);
            }
            s.histograms.insert(("a".into(), "lat".into()), h);
            s
        };
        let early = mk(3, &[10]);
        let late = mk(9, &[10, 20, 40]);
        let delta = late.delta_since(&early);
        assert_eq!(delta.counter("a", "msgs"), 6);
        let mut refolded = early.clone();
        refolded.merge(&delta);
        assert_eq!(refolded, late);
        // Idle delta is empty.
        assert!(late.delta_since(&late).is_empty());
        // Merge is commutative on disjoint-and-overlapping snapshots.
        let mut ab = early.clone();
        ab.merge(&late);
        let mut ba = late.clone();
        ba.merge(&early);
        assert_eq!(ab, ba);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let mut s = MetricsSnapshot::default();
        s.counters
            .insert(("risk-gateway".into(), "orders.passed".into()), 42);
        s.gauges.insert(("scheduler".into(), "depth".into()), 7);
        let mut h = Histogram::default();
        h.observe(3);
        h.observe(300);
        s.histograms
            .insert(("ohlc-bars".into(), "step.ns".into()), h);
        let text = s.render_prometheus();
        assert!(text.contains("# TYPE mm_orders_passed_total counter\n"));
        assert!(text.contains("mm_orders_passed_total{node=\"risk-gateway\"} 42\n"));
        assert!(text.contains("mm_depth{node=\"scheduler\"} 7\n"));
        assert!(text.contains("mm_step_ns_bucket{node=\"ohlc-bars\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("mm_step_ns_count{node=\"ohlc-bars\"} 2\n"));
        assert!(text.contains("mm_step_ns_sum{node=\"ohlc-bars\"} 303\n"));
        // Every sample line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(series.starts_with("mm_"), "prefixed: {line}");
            assert!(series.contains("{node=\""), "labelled: {line}");
            assert!(value.parse::<f64>().is_ok(), "numeric value: {line}");
        }
        // Determinism: identical snapshot renders byte-identically.
        assert_eq!(text, s.clone().render_prometheus());
    }

    #[test]
    fn registry_merges_shards_canonically() {
        let r = Registry::default();
        let b1 = r.bucket("node-a");
        let b2 = r.bucket("node-a");
        let b3 = r.bucket("node-b");
        b1.count("msgs", 3);
        b2.count("msgs", 4);
        b3.count("msgs", 5);
        b1.gauge_max("depth", 9);
        b2.gauge_max("depth", 2);
        b1.observe("lat", 10);
        b2.observe("lat", 20);
        let s = r.snapshot();
        assert_eq!(s.counter("node-a", "msgs"), 7);
        assert_eq!(s.counter("node-b", "msgs"), 5);
        assert_eq!(s.counter_total("msgs"), 12);
        assert_eq!(s.gauges[&("node-a".to_string(), "depth".to_string())], 9);
        assert_eq!(s.histogram("node-a", "lat").unwrap().count(), 2);
    }
}
