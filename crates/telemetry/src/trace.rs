//! Chrome `trace_event`-format export: the run becomes a Perfetto /
//! `about://tracing`-loadable JSON document with one track per worker
//! (pid 1) and one track per DAG node (pid 2).
//!
//! Emitted phases: `X` (complete slices with `ts`/`dur` in µs), `i`
//! (instants), `C` (counter series, e.g. run-queue depth), plus `M`
//! metadata naming every process and thread track. Slice `args` carry the
//! second time axis — the simulated trading interval — so a wall-clock
//! slice can be attributed to a point in simulated time.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// A trace track: Chrome's (pid, tid) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TrackId {
    /// Process row in the viewer.
    pub pid: u32,
    /// Thread row within the process.
    pub tid: u64,
}

impl TrackId {
    /// The per-worker process row.
    pub fn worker(index: usize) -> TrackId {
        TrackId {
            pid: 1,
            tid: index as u64,
        }
    }

    /// The per-node process row.
    pub fn node(index: usize) -> TrackId {
        TrackId {
            pid: 2,
            tid: index as u64,
        }
    }
}

/// One slice/instant/counter argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// Unsigned integer.
    U(u64),
    /// Float.
    F(f64),
    /// String.
    S(String),
}

impl Arg {
    fn to_json(&self) -> Json {
        match self {
            Arg::U(v) => Json::Num(*v as f64),
            Arg::F(v) => Json::Num(*v),
            Arg::S(s) => Json::Str(s.clone()),
        }
    }
}

/// Event phase, mirrored publicly so captured events can cross a process
/// boundary as [`TraceRecord`]s and be spliced into another tracer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordPhase {
    /// A complete slice (`ph: "X"`).
    Complete {
        /// Slice duration in µs.
        dur_us: u64,
    },
    /// An instant (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`).
    Counter {
        /// The sampled value.
        value: u64,
    },
    /// A flow-bind start (`ph: "s"`).
    FlowStart {
        /// Flow id shared with the matching finish.
        id: u64,
    },
    /// A flow-bind finish (`ph: "f"`, binding point `"e"`).
    FlowFinish {
        /// Flow id shared with the matching start.
        id: u64,
    },
}

/// An owned, wire-shippable trace event: what a shard worker drains and
/// the supervisor splices (with its pids and flow ids remapped onto the
/// merged namespace) into the fleet-wide tracer.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// The event phase and its phase-specific payload.
    pub phase: RecordPhase,
    /// Process row.
    pub pid: u32,
    /// Thread row within the process.
    pub tid: u64,
    /// Timestamp in µs on the capturing process's clock.
    pub ts_us: u64,
    /// Event name.
    pub name: String,
    /// Slice arguments.
    pub args: Vec<(String, Arg)>,
}

type Phase = RecordPhase;

struct TraceEvent {
    phase: Phase,
    track: TrackId,
    ts_us: u64,
    name: String,
    args: Vec<(Cow<'static, str>, Arg)>,
}

/// The bounded trace-event collector. Appends are a short uncontended
/// mutex hold (workers emit at *turn* granularity — once per up-to-128
/// messages — not per message); the cap bounds memory and JSON size on
/// pathological runs, with the overflow counted and reported.
pub struct Tracer {
    cap: usize,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    /// Flow-bind id allocator: every `flow()` call gets a fresh id, so
    /// each `"s"` event has exactly one matching `"f"`.
    next_flow: AtomicU64,
    /// Track-name metadata, emitted for every track up front so the
    /// exporter (and CI's trace check) can enumerate expected tracks even
    /// if a node never ran.
    names: Mutex<Vec<(TrackId, String)>>,
    /// Process-name metadata beyond the two fixed local rows — one lane
    /// per spliced shard rank in a merged fleet trace.
    procs: Mutex<Vec<(u32, String)>>,
}

impl Tracer {
    /// Tracer holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Tracer {
            cap: cap.max(1),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            next_flow: AtomicU64::new(0),
            names: Mutex::new(Vec::new()),
            procs: Mutex::new(Vec::new()),
        }
    }

    /// Name a track (thread_name metadata).
    pub fn name_track(&self, track: TrackId, name: impl Into<String>) {
        self.names
            .lock()
            .expect("trace names")
            .push((track, name.into()));
    }

    /// Name an additional process lane (process_name metadata). Pids 1
    /// and 2 are the fixed local `workers` / `nodes` lanes; a fleet
    /// supervisor names one extra pair per shard rank.
    pub fn name_process(&self, pid: u32, name: impl Into<String>) {
        self.procs
            .lock()
            .expect("trace procs")
            .push((pid, name.into()));
    }

    /// Allocate a fresh flow id from this tracer's allocator — used when
    /// splicing records whose original ids came from another process's
    /// allocator and must be remapped into this trace's id space.
    pub fn alloc_flow_id(&self) -> u64 {
        self.next_flow.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn push(&self, ev: TraceEvent) {
        let mut events = self.events.lock().expect("trace events");
        if events.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(ev);
    }

    /// A complete slice (`ph: "X"`).
    pub fn complete(
        &self,
        track: TrackId,
        name: impl Into<String>,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(&'static str, Arg)>,
    ) {
        self.push(TraceEvent {
            phase: Phase::Complete { dur_us },
            track,
            ts_us,
            name: name.into(),
            args: args
                .into_iter()
                .map(|(k, v)| (Cow::Borrowed(k), v))
                .collect(),
        });
    }

    /// An instant event (`ph: "i"`).
    pub fn instant(
        &self,
        track: TrackId,
        name: impl Into<String>,
        ts_us: u64,
        args: Vec<(&'static str, Arg)>,
    ) {
        self.push(TraceEvent {
            phase: Phase::Instant,
            track,
            ts_us,
            name: name.into(),
            args: args
                .into_iter()
                .map(|(k, v)| (Cow::Borrowed(k), v))
                .collect(),
        });
    }

    /// A cross-track flow bind: `ph: "s"` on the producer's track at the
    /// emission time, `ph: "f"` (binding point `"e"`) on the consumer's
    /// track at the delivery time, sharing a fresh unique id. Both events
    /// are appended atomically — the cap can never strand a dangling
    /// `"s"` without its `"f"`.
    pub fn flow(
        &self,
        name: impl Into<String>,
        from: TrackId,
        from_ts_us: u64,
        to: TrackId,
        to_ts_us: u64,
    ) {
        let id = self.next_flow.fetch_add(1, Ordering::Relaxed) + 1;
        let name = name.into();
        let mut events = self.events.lock().expect("trace events");
        if events.len() + 2 > self.cap {
            self.dropped.fetch_add(2, Ordering::Relaxed);
            return;
        }
        events.push(TraceEvent {
            phase: Phase::FlowStart { id },
            track: from,
            ts_us: from_ts_us,
            name: name.clone(),
            args: Vec::new(),
        });
        events.push(TraceEvent {
            phase: Phase::FlowFinish { id },
            track: to,
            // Chrome requires the finish at or after the start.
            ts_us: to_ts_us.max(from_ts_us),
            name,
            args: Vec::new(),
        });
    }

    /// A counter sample (`ph: "C"`).
    pub fn counter(&self, track: TrackId, name: impl Into<String>, ts_us: u64, value: u64) {
        self.push(TraceEvent {
            phase: Phase::Counter { value },
            track,
            ts_us,
            name: name.into(),
            args: Vec::new(),
        });
    }

    /// Events captured (excluding dropped).
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace events").len()
    }

    /// True when no events were captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped by the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain every captured event as owned [`TraceRecord`]s, in capture
    /// order (flow start/finish pairs stay adjacent, so a drained batch
    /// never splits a bind). The capacity freed by the drain is reusable,
    /// which is what lets a shard worker ship its trace incrementally at
    /// epoch granularity without ever hitting the cap.
    pub fn drain_records(&self) -> Vec<TraceRecord> {
        let events = std::mem::take(&mut *self.events.lock().expect("trace events"));
        events
            .into_iter()
            .map(|ev| TraceRecord {
                phase: ev.phase,
                pid: ev.track.pid,
                tid: ev.track.tid,
                ts_us: ev.ts_us,
                name: ev.name,
                args: ev
                    .args
                    .into_iter()
                    .map(|(k, v)| (k.into_owned(), v))
                    .collect(),
            })
            .collect()
    }

    /// Splice foreign records into this tracer (the fleet-merge path).
    /// The caller is responsible for having remapped pids and flow ids
    /// onto this trace's namespace first; records land verbatim, subject
    /// to the cap like any local event.
    pub fn splice_records(&self, records: Vec<TraceRecord>) {
        for rec in records {
            self.push(TraceEvent {
                phase: rec.phase,
                track: TrackId {
                    pid: rec.pid,
                    tid: rec.tid,
                },
                ts_us: rec.ts_us,
                name: rec.name,
                args: rec
                    .args
                    .into_iter()
                    .map(|(k, v)| (Cow::Owned(k), v))
                    .collect(),
            });
        }
    }

    /// Render the whole capture as a Chrome trace_event JSON document.
    /// Events are sorted by `(ts, track)` so the output is stable for a
    /// given set of captured events.
    pub fn export(&self) -> String {
        let mut out: Vec<Json> = Vec::new();
        // Process-name metadata: the two fixed local rows plus any lanes
        // registered via `name_process` (merged fleet traces), in pid
        // order with the first registration winning a duplicate pid.
        let mut procs: Vec<(u32, String)> = vec![(1u32, "workers".into()), (2, "nodes".into())];
        procs.extend(self.procs.lock().expect("trace procs").iter().cloned());
        procs.sort_by_key(|p| p.0);
        procs.dedup_by_key(|p| p.0);
        for (pid, pname) in procs {
            out.push(Json::Obj(vec![
                ("ph".into(), Json::Str("M".into())),
                ("pid".into(), Json::Num(pid as f64)),
                ("tid".into(), Json::Num(0.0)),
                ("name".into(), Json::Str("process_name".into())),
                (
                    "args".into(),
                    Json::Obj(vec![("name".into(), Json::Str(pname))]),
                ),
            ]));
        }
        {
            let mut names = self.names.lock().expect("trace names").clone();
            names.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            for (track, name) in names {
                out.push(Json::Obj(vec![
                    ("ph".into(), Json::Str("M".into())),
                    ("pid".into(), Json::Num(track.pid as f64)),
                    ("tid".into(), Json::Num(track.tid as f64)),
                    ("name".into(), Json::Str("thread_name".into())),
                    (
                        "args".into(),
                        Json::Obj(vec![("name".into(), Json::Str(name))]),
                    ),
                ]));
            }
        }
        let events = self.events.lock().expect("trace events");
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&k| (events[k].ts_us, events[k].track, k));
        for &k in &order {
            let ev = &events[k];
            let mut fields: Vec<(String, Json)> = vec![
                (
                    "ph".into(),
                    Json::Str(
                        match ev.phase {
                            Phase::Complete { .. } => "X",
                            Phase::Instant => "i",
                            Phase::Counter { .. } => "C",
                            Phase::FlowStart { .. } => "s",
                            Phase::FlowFinish { .. } => "f",
                        }
                        .into(),
                    ),
                ),
                ("pid".into(), Json::Num(ev.track.pid as f64)),
                ("tid".into(), Json::Num(ev.track.tid as f64)),
                ("ts".into(), Json::Num(ev.ts_us as f64)),
                ("name".into(), Json::Str(ev.name.clone())),
            ];
            match &ev.phase {
                Phase::Complete { dur_us } => {
                    fields.push(("dur".into(), Json::Num(*dur_us as f64)));
                }
                Phase::Instant => {
                    fields.push(("s".into(), Json::Str("t".into())));
                }
                Phase::Counter { value } => {
                    fields.push((
                        "args".into(),
                        Json::Obj(vec![("value".into(), Json::Num(*value as f64))]),
                    ));
                }
                Phase::FlowStart { id } => {
                    fields.push(("cat".into(), Json::Str("lineage".into())));
                    fields.push(("id".into(), Json::Num(*id as f64)));
                }
                Phase::FlowFinish { id } => {
                    fields.push(("cat".into(), Json::Str("lineage".into())));
                    fields.push(("id".into(), Json::Num(*id as f64)));
                    fields.push(("bp".into(), Json::Str("e".into())));
                }
            }
            if !ev.args.is_empty() {
                let args: Vec<(String, Json)> = ev
                    .args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_json()))
                    .collect();
                fields.push(("args".into(), Json::Obj(args)));
            }
            out.push(Json::Obj(fields));
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(out)),
            ("displayTimeUnit".into(), Json::Str("ms".into())),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn export_round_trips_and_carries_tracks() {
        let t = Tracer::new(100);
        t.name_track(TrackId::worker(0), "worker-0");
        t.name_track(TrackId::node(3), "corr-engine");
        t.complete(
            TrackId::worker(0),
            "corr-engine",
            10,
            25,
            vec![("events", Arg::U(128)), ("interval", Arg::U(7))],
        );
        t.instant(TrackId::node(3), "restart", 40, vec![]);
        t.counter(TrackId::worker(0), "run_queue_depth", 50, 4);
        let doc = json::parse(&t.export()).unwrap();
        let events = doc.get("traceEvents").unwrap().items();
        // 2 process_name + 2 thread_name + 3 events.
        assert_eq!(events.len(), 7);
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(slice.get("dur").unwrap().as_u64(), Some(25));
        assert_eq!(
            slice.get("args").unwrap().get("interval").unwrap().as_u64(),
            Some(7)
        );
    }

    #[test]
    fn flow_binds_are_paired_with_unique_ids() {
        let t = Tracer::new(100);
        t.flow("bars", TrackId::node(1), 10, TrackId::node(2), 25);
        t.flow("corr", TrackId::node(2), 30, TrackId::node(3), 20);
        let doc = json::parse(&t.export()).unwrap();
        let events = doc.get("traceEvents").unwrap().items();
        let starts: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("s"))
            .collect();
        let finishes: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("f"))
            .collect();
        assert_eq!(starts.len(), 2);
        assert_eq!(finishes.len(), 2);
        let mut ids: Vec<u64> = starts
            .iter()
            .map(|e| e.get("id").unwrap().as_u64().unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2, "flow ids are unique");
        for f in &finishes {
            assert_eq!(f.get("bp").and_then(Json::as_str), Some("e"));
            let id = f.get("id").unwrap().as_u64().unwrap();
            let s = starts
                .iter()
                .find(|s| s.get("id").unwrap().as_u64() == Some(id))
                .expect("matching start");
            assert_eq!(s.get("name"), f.get("name"), "bound names match");
            assert!(
                s.get("ts").unwrap().as_u64() <= f.get("ts").unwrap().as_u64(),
                "finish at or after start"
            );
        }
    }

    #[test]
    fn flow_cap_never_strands_a_dangling_start() {
        let t = Tracer::new(3);
        t.flow("a", TrackId::node(0), 0, TrackId::node(1), 1); // fits
        t.flow("b", TrackId::node(0), 2, TrackId::node(1), 3); // would strand
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 2, "both halves of the second flow dropped");
    }

    #[test]
    fn drain_and_splice_round_trip_with_process_lanes() {
        let shard = Tracer::new(100);
        shard.complete(
            TrackId::node(3),
            "corr-engine",
            10,
            25,
            vec![("interval", Arg::U(7))],
        );
        shard.flow("bars", TrackId::node(1), 10, TrackId::node(2), 25);
        let mut records = shard.drain_records();
        assert_eq!(records.len(), 3);
        assert!(shard.is_empty(), "drain empties the capture");

        let merged = Tracer::new(100);
        // Remap onto the merged namespace: rank-0 lanes, fresh flow ids.
        let mut remap = std::collections::HashMap::new();
        for rec in &mut records {
            rec.pid += 2;
            if let RecordPhase::FlowStart { id } | RecordPhase::FlowFinish { id } = &mut rec.phase {
                let fresh = *remap.entry(*id).or_insert_with(|| merged.alloc_flow_id());
                *id = fresh;
            }
        }
        merged.name_process(3, "shard0/workers");
        merged.name_process(4, "shard0/nodes");
        merged.splice_records(records);
        let doc = json::parse(&merged.export()).unwrap();
        let events = doc.get("traceEvents").unwrap().items();
        let lanes: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(
            lanes,
            vec!["workers", "nodes", "shard0/workers", "shard0/nodes"]
        );
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(slice.get("pid").unwrap().as_u64(), Some(4));
        assert_eq!(
            slice.get("args").unwrap().get("interval").unwrap().as_u64(),
            Some(7),
            "owned args survive the splice"
        );
        let s = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("s"))
            .unwrap();
        let f = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("f"))
            .unwrap();
        assert_eq!(s.get("id"), f.get("id"), "flow pair survives the remap");
    }

    #[test]
    fn cap_drops_and_counts() {
        let t = Tracer::new(2);
        for k in 0..5 {
            t.instant(TrackId::node(0), "e", k, vec![]);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }
}
