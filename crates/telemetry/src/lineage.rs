//! Causal message lineage: who produced what, from which parents.
//!
//! Every message the runtime emits at `TelemetryLevel::Full` is stamped
//! with a [`Cause`]: a compact [`EventId`] (node index + per-node
//! sequence number), the wall-clock stamp of emission, and the ids of
//! the messages it was derived from. The runtime records one
//! [`LineageEvent`] per stamped emission into a bounded, sharded
//! [`LineageRing`] (drop-counted like the flight recorder), from which a
//! run can reconstruct the full causal DAG of any trade — which quotes
//! fed which bars, which bars fed which correlation snapshot, which
//! snapshot produced which orders and baskets — with per-hop latency on
//! both the wall-clock and the simulated-time axis.
//!
//! Determinism: ids are allocated per *node output stream position*, not
//! from a global clock or counter, so the id of the k-th message node n
//! emits is the same regardless of worker count or scheduling. Replayed
//! emissions after a crash-restart are suppressed before they reach the
//! stamping path (the same suppression argument PR 2 makes for effect
//! exactly-once), so a killed-and-recovered run records the identical
//! edge set as a never-killed one.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Compact causal event id: `(node index + 1) << 48 | seq`, where `seq`
/// is the message's position in its producing node's output stream.
/// `EventId(0)` is the unset sentinel (`Off`/`Counters` runs, or
/// messages built outside the runtime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// Low 48 bits of an [`EventId`] hold the per-node sequence number.
const SEQ_BITS: u32 = 48;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

impl EventId {
    /// The unset sentinel.
    pub const NONE: EventId = EventId(0);

    /// Id of the `seq`-th message emitted by node `node`.
    pub fn new(node: usize, seq: u64) -> EventId {
        EventId(((node as u64 + 1) << SEQ_BITS) | (seq & SEQ_MASK))
    }

    /// True unless this is the unset sentinel.
    pub fn is_set(&self) -> bool {
        self.0 != 0
    }

    /// Producing node index (meaningless on the sentinel).
    pub fn node(&self) -> usize {
        (self.0 >> SEQ_BITS).saturating_sub(1) as usize
    }

    /// Position in the producing node's output stream.
    pub fn seq(&self) -> u64 {
        self.0 & SEQ_MASK
    }
}

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_set() {
            write!(f, "n{}#{}", self.node(), self.seq())
        } else {
            f.write_str("-")
        }
    }
}

/// The causal context a message carries: its own id (stamped by the
/// runtime at emission), the wall-clock stamp of that emission, and the
/// ids of the messages it was derived from.
///
/// `Cause` deliberately compares equal to every other `Cause`: payload
/// structs derive `PartialEq` and the determinism suite compares `Off`
/// and `Full` runs bit-for-bit — provenance is metadata about a message,
/// not part of its value.
#[derive(Clone, Debug, Default)]
pub struct Cause {
    /// This message's id (`EventId::NONE` until the runtime stamps it).
    pub id: EventId,
    /// Wall-clock microseconds (hub clock) at emission; 0 below `Full`.
    pub wall_us: u64,
    /// Ids of the messages this one was derived from.
    pub parents: Vec<EventId>,
}

impl Cause {
    /// The empty sentinel: what every message is built with below
    /// `Full`. Allocation-free (`Vec::new` does not allocate).
    pub fn none() -> Cause {
        Cause::default()
    }

    /// A cause derived from the given parents (unset ids are dropped, so
    /// components can pass whatever they tracked without gating on the
    /// telemetry level).
    pub fn derived(parents: impl IntoIterator<Item = EventId>) -> Cause {
        Cause {
            id: EventId::NONE,
            wall_us: 0,
            parents: parents.into_iter().filter(EventId::is_set).collect(),
        }
    }
}

impl PartialEq for Cause {
    /// Always equal: provenance is not part of a message's value (see
    /// the type docs).
    fn eq(&self, _other: &Cause) -> bool {
        true
    }
}

impl Eq for Cause {}

/// One recorded emission: a node of the causal DAG plus its inbound
/// edges (`parents`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineageEvent {
    /// The emitted message's id.
    pub id: EventId,
    /// Message kind tag (`"bars"`, `"corr"`, `"basket"`, ...).
    pub kind: &'static str,
    /// Simulated-time coordinate (trading interval), when the message
    /// has one.
    pub interval: Option<u64>,
    /// Wall-clock microseconds (hub clock) at emission.
    pub wall_us: u64,
    /// Ids of the messages this one was derived from.
    pub parents: Vec<EventId>,
    /// Payload-level annotation for human-facing renderers: the
    /// originating strategy kind for orders, strategy kind plus exit
    /// reasons for trade reports. `None` for structural messages.
    pub detail: Option<String>,
}

/// Default lineage-ring bound: comfortably holds every emission of the
/// 42-parameter sweep day at `Full` (zero drops there — the hottest
/// shard peaks around 8k events) while bounding a pathological run's
/// memory. Override with `MARKETMINER_LINEAGE_CAP`.
pub const DEFAULT_LINEAGE_CAP: usize = 1 << 18;

/// Shard count: emissions from different nodes land on different locks.
const SHARDS: usize = 16;

/// A bounded, sharded ring of [`LineageEvent`]s. Sharded by producing
/// node so concurrent emissions from different nodes do not contend on
/// one mutex; each shard individually keeps its newest events and counts
/// drops, like the flight recorder.
pub struct LineageRing {
    shard_cap: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
    shards: Vec<Mutex<VecDeque<LineageEvent>>>,
}

impl LineageRing {
    /// Ring holding at most (approximately) `cap` events across all
    /// shards.
    pub fn new(cap: usize) -> Self {
        LineageRing {
            shard_cap: (cap / SHARDS).max(1),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    /// Record one emission. The event's id must be set (it picks the
    /// shard).
    pub fn record(&self, ev: LineageEvent) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.shards[ev.id.node() % SHARDS]
            .lock()
            .expect("lineage shard");
        if ring.len() == self.shard_cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Events recorded so far (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted by the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain every shard, returning events in canonical id order — a
    /// shard-layout-independent total order, so two runs recording the
    /// same emissions drain identically.
    pub fn drain(&self) -> Vec<LineageEvent> {
        let mut events: Vec<LineageEvent> = Vec::new();
        for shard in &self.shards {
            events.extend(shard.lock().expect("lineage shard").drain(..));
        }
        events.sort_by_key(|e| e.id);
        events
    }
}

/// Render a drained lineage capture as a JSON document for
/// `explain_trade`: node names, drop count, and one object per event
/// with its parents.
pub fn export(events: &[LineageEvent], dropped: u64, node_names: &[String]) -> String {
    let mut out: Vec<Json> = Vec::with_capacity(events.len());
    for e in events {
        let mut fields: Vec<(String, Json)> = vec![
            ("id".into(), Json::Num(e.id.0 as f64)),
            ("node".into(), Json::Num(e.id.node() as f64)),
            ("seq".into(), Json::Num(e.id.seq() as f64)),
            ("kind".into(), Json::Str(e.kind.into())),
            ("wall_us".into(), Json::Num(e.wall_us as f64)),
            (
                "parents".into(),
                Json::Arr(e.parents.iter().map(|p| Json::Num(p.0 as f64)).collect()),
            ),
        ];
        if let Some(iv) = e.interval {
            fields.push(("interval".into(), Json::Num(iv as f64)));
        }
        if let Some(d) = &e.detail {
            fields.push(("detail".into(), Json::Str(d.clone())));
        }
        out.push(Json::Obj(fields));
    }
    Json::Obj(vec![
        (
            "nodes".into(),
            Json::Arr(node_names.iter().map(|n| Json::Str(n.clone())).collect()),
        ),
        ("dropped".into(), Json::Num(dropped as f64)),
        ("events".into(), Json::Arr(out)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ids_pack_and_unpack() {
        let id = EventId::new(7, 12345);
        assert!(id.is_set());
        assert_eq!(id.node(), 7);
        assert_eq!(id.seq(), 12345);
        assert_eq!(id.to_string(), "n7#12345");
        assert!(!EventId::NONE.is_set());
        assert_eq!(EventId::NONE.to_string(), "-");
    }

    #[test]
    fn causes_compare_equal_regardless_of_content() {
        let a = Cause::none();
        let b = Cause {
            id: EventId::new(1, 2),
            wall_us: 99,
            parents: vec![EventId::new(0, 0)],
        };
        assert_eq!(a, b, "provenance must not perturb payload equality");
    }

    #[test]
    fn derived_drops_unset_parents() {
        let c = Cause::derived([EventId::NONE, EventId::new(2, 5), EventId::NONE]);
        assert_eq!(c.parents, vec![EventId::new(2, 5)]);
        assert!(Cause::derived([EventId::NONE]).parents.is_empty());
    }

    #[test]
    fn ring_records_drops_and_drains_in_id_order() {
        let ring = LineageRing::new(SHARDS); // one slot per shard
        for seq in 0..3u64 {
            ring.record(LineageEvent {
                id: EventId::new(0, seq),
                kind: "bars",
                interval: Some(seq),
                wall_us: seq,
                parents: vec![],
                detail: None,
            });
        }
        ring.record(LineageEvent {
            id: EventId::new(1, 0),
            kind: "corr",
            interval: None,
            wall_us: 9,
            parents: vec![EventId::new(0, 2)],
            detail: None,
        });
        assert_eq!(ring.recorded(), 4);
        assert_eq!(ring.dropped(), 2, "node-0 shard holds one slot");
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].id, EventId::new(0, 2), "newest node-0 event won");
        assert_eq!(events[1].id, EventId::new(1, 0));
    }

    #[test]
    fn export_round_trips_through_the_json_parser() {
        let events = vec![
            LineageEvent {
                id: EventId::new(0, 0),
                kind: "quote",
                interval: None,
                wall_us: 5,
                parents: vec![],
                detail: None,
            },
            LineageEvent {
                id: EventId::new(1, 0),
                kind: "bars",
                interval: Some(3),
                wall_us: 11,
                parents: vec![EventId::new(0, 0)],
                detail: Some("paper: retracement".into()),
            },
        ];
        let names = vec!["tape".to_string(), "ohlc-bars".to_string()];
        let doc = crate::json::parse(&export(&events, 7, &names)).unwrap();
        assert_eq!(doc.get("dropped").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("nodes").unwrap().items().len(), 2);
        let evs = doc.get("events").unwrap().items();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].get("kind").unwrap().as_str(), Some("bars"));
        assert_eq!(evs[1].get("interval").unwrap().as_u64(), Some(3));
        assert_eq!(
            evs[1].get("detail").unwrap().as_str(),
            Some("paper: retracement")
        );
        assert!(evs[0].get("detail").is_none());
        assert_eq!(
            evs[1].get("parents").unwrap().items()[0].as_u64(),
            Some(EventId::new(0, 0).0)
        );
    }
}
