//! The flight recorder: a bounded ring buffer of structured lifecycle
//! events (panics, restarts, checkpoints, replays, severs, quarantines,
//! health transitions), replacing ad-hoc diagnostic lines.
//!
//! Events are rare (they mark supervision activity, not data flow), so a
//! single mutex-guarded ring is plenty; the bound keeps a pathological
//! run (a panic loop) from growing without limit — the newest events win
//! and the drop count is reported.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What kind of lifecycle event happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A component panicked inside `on_message`/`on_end`.
    Panic,
    /// The supervisor restored a checkpoint and the node resumed.
    Restart,
    /// A periodic checkpoint was taken.
    Checkpoint,
    /// The since-checkpoint log was replayed during recovery.
    Replay,
    /// The watchdog severed a wedged node.
    Sever,
    /// A symbol entered quarantine (cleaning-filter tripwire).
    Quarantine,
    /// A symbol health transition (outage/halt/recovery).
    Health,
    /// A node failed for good (restart budget exhausted).
    Failure,
    /// A fault injector fired (chaos harness).
    Fault,
    /// A coarse pipeline/backtest phase boundary.
    Phase,
    /// A durable checkpoint file failed validation during recovery and
    /// was skipped (`checkpoint.corrupt`).
    Corrupt,
    /// A bounded egress ring evicted its oldest entry for a slow
    /// consumer (serving-layer backpressure isolation).
    Drop,
}

impl FlightKind {
    /// Stable lowercase tag for reports and traces.
    pub fn as_str(&self) -> &'static str {
        match self {
            FlightKind::Panic => "panic",
            FlightKind::Restart => "restart",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::Replay => "replay",
            FlightKind::Sever => "sever",
            FlightKind::Quarantine => "quarantine",
            FlightKind::Health => "health",
            FlightKind::Failure => "failure",
            FlightKind::Fault => "fault",
            FlightKind::Phase => "phase",
            FlightKind::Corrupt => "checkpoint.corrupt",
            FlightKind::Drop => "drop",
        }
    }

    /// Every kind, in declaration order — the wire codec's tag table.
    pub const ALL: [FlightKind; 12] = [
        FlightKind::Panic,
        FlightKind::Restart,
        FlightKind::Checkpoint,
        FlightKind::Replay,
        FlightKind::Sever,
        FlightKind::Quarantine,
        FlightKind::Health,
        FlightKind::Failure,
        FlightKind::Fault,
        FlightKind::Phase,
        FlightKind::Corrupt,
        FlightKind::Drop,
    ];

    /// Inverse of [`as_str`](FlightKind::as_str), for wire decode.
    pub fn parse(tag: &str) -> Option<FlightKind> {
        FlightKind::ALL.into_iter().find(|k| k.as_str() == tag)
    }
}

/// One recorded lifecycle event, carrying both time axes: wall-clock
/// microseconds since run start and (when known) the simulated time — the
/// node's processed-message count or trading interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (total order of recording).
    pub seq: u64,
    /// Wall-clock microseconds since run start.
    pub wall_us: u64,
    /// Simulated time, when the event is attributable to one (messages
    /// processed, or a trading interval — the label says which).
    pub sim: Option<u64>,
    /// Node (or subsystem) the event belongs to.
    pub label: String,
    /// Event kind.
    pub kind: FlightKind,
    /// Free-form detail (panic message, checkpoint size, ...).
    pub detail: String,
}

/// The bounded ring buffer.
pub struct FlightRecorder {
    cap: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    /// Recorder holding at most `cap` events (newest win).
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Record one event.
    pub fn record(
        &self,
        kind: FlightKind,
        label: impl Into<String>,
        wall_us: u64,
        sim: Option<u64>,
        detail: impl Into<String>,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = FlightEvent {
            seq,
            wall_us,
            sim,
            label: label.into(),
            kind,
            detail: detail.into(),
        };
        let mut ring = self.ring.lock().expect("flight ring");
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Events recorded so far (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted by the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain the ring in recording order.
    pub fn drain(&self) -> Vec<FlightEvent> {
        let mut ring = self.ring.lock().expect("flight ring");
        let mut events: Vec<FlightEvent> = ring.drain(..).collect();
        events.sort_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let r = FlightRecorder::new(3);
        for k in 0..5u64 {
            r.record(
                FlightKind::Checkpoint,
                "n",
                k * 10,
                Some(k),
                format!("c{k}"),
            );
        }
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
        let events = r.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2, "oldest two evicted");
        assert_eq!(events[2].detail, "c4");
        assert_eq!(events[2].kind.as_str(), "checkpoint");
    }
}
