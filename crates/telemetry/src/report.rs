//! The end-of-run plain-text report: merged metrics plus the flight
//! recorder, rendered in canonical `(label, name)` order so two runs of
//! the same graph produce structurally identical reports regardless of
//! worker interleaving.

use std::fmt::Write as _;

use crate::lineage::LineageEvent;
use crate::metrics::MetricsSnapshot;
use crate::recorder::FlightEvent;
use crate::TelemetryLevel;

/// Everything a run measured, in merged/canonical form. Attached to
/// `RunOutput` by the runtime; render with [`TelemetryReport::render`].
#[derive(Clone, Debug, Default)]
pub struct TelemetryReport {
    /// Level the run was instrumented at.
    pub level: TelemetryLevel,
    /// Merged metrics across all shards.
    pub metrics: MetricsSnapshot,
    /// Flight-recorder events in recording order.
    pub flight: Vec<FlightEvent>,
    /// Flight events evicted by the ring bound.
    pub flight_dropped: u64,
    /// Trace events captured (0 unless `Full` with tracing).
    pub trace_events: u64,
    /// Trace events dropped by the tracer cap.
    pub trace_dropped: u64,
    /// Where the Chrome trace was written, if anywhere.
    pub trace_path: Option<String>,
    /// Lineage events in canonical id order (empty below `Full`).
    pub lineage: Vec<LineageEvent>,
    /// Lineage events evicted by the ring bound.
    pub lineage_dropped: u64,
    /// Where the lineage export was written, if anywhere.
    pub lineage_path: Option<String>,
}

impl TelemetryReport {
    /// Render the report as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== telemetry (level: {}) ==", self.level.as_str());

        if !self.metrics.counters.is_empty() {
            let _ = writeln!(out, "\n-- counters --");
            let width = self
                .metrics
                .counters
                .keys()
                .map(|(l, n)| l.len() + n.len() + 1)
                .max()
                .unwrap_or(0);
            for ((label, name), v) in &self.metrics.counters {
                let key = format!("{label}/{name}");
                let _ = writeln!(out, "{key:<width$} {v:>12}");
            }
        }

        if !self.metrics.gauges.is_empty() {
            let _ = writeln!(out, "\n-- gauges (peak) --");
            for ((label, name), v) in &self.metrics.gauges {
                let _ = writeln!(out, "{label}/{name} {v}");
            }
        }

        if !self.metrics.histograms.is_empty() {
            let _ = writeln!(out, "\n-- histograms --");
            let width = self
                .metrics
                .histograms
                .keys()
                .map(|(l, n)| l.len() + n.len() + 1)
                .max()
                .unwrap_or(0)
                .max(9);
            let _ = writeln!(
                out,
                "{:<width$} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
                "histogram", "count", "mean", "p50", "p90", "p95", "p99", "max"
            );
            for ((label, name), h) in &self.metrics.histograms {
                let key = format!("{label}/{name}");
                let _ = writeln!(
                    out,
                    "{key:<width$} {:>10} {:>12.1} {:>12} {:>12} {:>12} {:>12} {:>12}",
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.9),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max()
                );
            }
        }

        if !self.flight.is_empty() || self.flight_dropped > 0 {
            let _ = writeln!(
                out,
                "\n-- flight recorder ({} events{}) --",
                self.flight.len(),
                if self.flight_dropped > 0 {
                    format!(", {} dropped", self.flight_dropped)
                } else {
                    String::new()
                }
            );
            for e in &self.flight {
                let sim = e.sim.map(|s| format!(" sim={s}")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "#{:<5} +{:>9}us{sim} [{:<10}] {}: {}",
                    e.seq,
                    e.wall_us,
                    e.kind.as_str(),
                    e.label,
                    e.detail
                );
            }
        }

        if !self.lineage.is_empty() || self.lineage_dropped > 0 {
            let mut by_kind: std::collections::BTreeMap<&str, u64> =
                std::collections::BTreeMap::new();
            let mut edges = 0u64;
            for e in &self.lineage {
                *by_kind.entry(e.kind).or_default() += 1;
                edges += e.parents.len() as u64;
            }
            let kinds = by_kind
                .iter()
                .map(|(k, n)| format!("{k}={n}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "\n-- lineage: {} events, {} edges, {} dropped{} ({kinds}) --",
                self.lineage.len(),
                edges,
                self.lineage_dropped,
                self.lineage_path
                    .as_deref()
                    .map(|p| format!(", written to {p}"))
                    .unwrap_or_default()
            );
        }

        if self.trace_events > 0 || self.trace_dropped > 0 {
            let _ = writeln!(
                out,
                "\n-- trace: {} events captured, {} dropped{} --",
                self.trace_events,
                self.trace_dropped,
                self.trace_path
                    .as_deref()
                    .map(|p| format!(", written to {p}"))
                    .unwrap_or_default()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::recorder::{FlightKind, FlightRecorder};

    #[test]
    fn render_is_canonical_and_complete() {
        let r = Registry::default();
        let b = r.bucket("ohlc-bars");
        b.count("bars.emitted", 780);
        b.observe("step_latency_ns", 1500);
        let fr = FlightRecorder::new(16);
        fr.record(
            FlightKind::Restart,
            "corr-engine",
            1234,
            Some(17),
            "replayed 4",
        );
        let rep = TelemetryReport {
            level: TelemetryLevel::Full,
            metrics: r.snapshot(),
            flight: fr.drain(),
            flight_dropped: 0,
            trace_events: 3,
            trace_dropped: 0,
            trace_path: None,
            lineage: vec![crate::lineage::LineageEvent {
                id: crate::lineage::EventId::new(0, 0),
                kind: "bars",
                interval: Some(1),
                wall_us: 10,
                parents: vec![crate::lineage::EventId::new(1, 4)],
                detail: None,
            }],
            lineage_dropped: 2,
            lineage_path: None,
        };
        let text = rep.render();
        assert!(text.contains("level: full"));
        assert!(text.contains("ohlc-bars/bars.emitted"));
        assert!(text.contains("step_latency_ns"));
        assert!(text.contains("[restart"));
        assert!(text.contains("sim=17"));
        assert!(text.contains("3 events captured"));
        assert!(text.contains("p95"), "histogram table reports p95");
        assert!(
            text.contains("lineage: 1 events, 1 edges, 2 dropped (bars=1)"),
            "{text}"
        );
    }
}
