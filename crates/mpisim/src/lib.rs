//! An MPI-flavoured message-passing substrate over threads and channels.
//!
//! MarketMiner is "a modular, MPI-based infrastructure"; its components are
//! processes exchanging tagged messages. Rust's MPI bindings are immature,
//! so this crate reproduces the messaging semantics the platform needs on a
//! shared-memory node:
//!
//! * an SPMD [`World`] of `size` ranks, each a thread running
//!   the same closure with its own [`Comm`];
//! * tagged, typed point-to-point [`send`](comm::Comm::send) /
//!   [`recv`](comm::Comm::recv) with MPI-style out-of-order tag matching;
//! * the collectives the pipeline uses: barrier, broadcast, gather,
//!   scatter, reduce, all-reduce.
//!
//! Semantics intentionally mirror MPI: `send` is asynchronous (buffered,
//! never blocks), `recv` blocks until a matching `(source, tag)` message of
//! the right type arrives, and collectives must be entered by every rank in
//! the same order (SPMD discipline). Anything written against this crate
//! would port to real MPI by substituting the communicator.

pub mod collective;
pub mod comm;
pub mod world;

pub use comm::{Comm, RecvError, Tag};
pub use world::World;
