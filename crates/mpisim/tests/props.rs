//! Property-based tests for the message-passing substrate: collectives
//! must agree with their sequential definitions for arbitrary payloads
//! and world sizes.

use proptest::prelude::*;

use mpisim::World;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_reduce_sum_matches_sequential(
        values in proptest::collection::vec(-1_000i64..1_000, 1..9),
    ) {
        let n = values.len();
        let expected: i64 = values.iter().sum();
        let vals = values.clone();
        let out = World::new(n).run(move |mut comm| {
            comm.all_reduce(vals[comm.rank()], |a, b| a + b)
        });
        prop_assert!(out.into_iter().all(|v| v == expected));
    }

    #[test]
    fn gather_preserves_rank_order(
        values in proptest::collection::vec(any::<u32>(), 1..9),
        root_pick in any::<prop::sample::Index>(),
    ) {
        let n = values.len();
        let root = root_pick.index(n);
        let vals = values.clone();
        let out = World::new(n).run(move |mut comm| {
            comm.gather(root, vals[comm.rank()])
        });
        for (rank, res) in out.into_iter().enumerate() {
            if rank == root {
                prop_assert_eq!(res.as_ref(), Some(&values));
            } else {
                prop_assert!(res.is_none());
            }
        }
    }

    #[test]
    fn scatter_then_gather_is_identity(
        values in proptest::collection::vec(any::<i16>(), 1..9),
    ) {
        let n = values.len();
        let vals = values.clone();
        let out = World::new(n).run(move |mut comm| {
            let mine = if comm.rank() == 0 {
                comm.scatter(0, Some(vals.clone()))
            } else {
                comm.scatter(0, None)
            };
            comm.gather(0, mine)
        });
        prop_assert_eq!(out[0].as_ref(), Some(&values));
    }

    #[test]
    fn reduce_max_and_min(
        values in proptest::collection::vec(-500i32..500, 2..8),
    ) {
        let n = values.len();
        let vals = values.clone();
        let out = World::new(n).run(move |mut comm| {
            let hi = comm.all_reduce(vals[comm.rank()], i32::max);
            let lo = comm.all_reduce(vals[comm.rank()], i32::min);
            (hi, lo)
        });
        let want_hi = *values.iter().max().unwrap();
        let want_lo = *values.iter().min().unwrap();
        prop_assert!(out.into_iter().all(|(hi, lo)| hi == want_hi && lo == want_lo));
    }

    #[test]
    fn broadcast_from_any_root(
        payload in any::<u64>(),
        n in 1usize..8,
        root_pick in any::<prop::sample::Index>(),
    ) {
        let root = root_pick.index(n);
        let out = World::new(n).run(move |mut comm| {
            if comm.rank() == root {
                comm.broadcast(root, Some(payload))
            } else {
                comm.broadcast::<u64>(root, None)
            }
        });
        prop_assert!(out.into_iter().all(|v| v == payload));
    }
}
