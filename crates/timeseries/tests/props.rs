//! Property-based tests for the time-series primitives.

use proptest::prelude::*;

use timeseries::bam::PriceGrid;
use timeseries::bars::BarAccumulator;
use timeseries::returns::ReturnsPanel;
use timeseries::rolling::{RollingMax, RollingMin, RollingRange};
use timeseries::window::SlidingWindow;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn window_is_a_fifo_of_the_tail(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        cap in 1usize..12,
    ) {
        let mut w = SlidingWindow::new(cap);
        for &x in &xs {
            w.push(x);
        }
        let tail: Vec<f64> = xs[xs.len().saturating_sub(cap)..].to_vec();
        prop_assert_eq!(w.to_vec(), tail);
        prop_assert_eq!(w.len(), xs.len().min(cap));
        prop_assert_eq!(w.back(), xs.last().copied());
    }

    #[test]
    fn rolling_extrema_match_naive(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..120),
        win in 1usize..15,
    ) {
        let mut rmax = RollingMax::new(win);
        let mut rmin = RollingMin::new(win);
        for (k, &x) in xs.iter().enumerate() {
            let got_max = rmax.push(x);
            let got_min = rmin.push(x);
            let lo = (k + 1).saturating_sub(win);
            let want_max = xs[lo..=k].iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let want_min = xs[lo..=k].iter().copied().fold(f64::INFINITY, f64::min);
            prop_assert_eq!(got_max, want_max);
            prop_assert_eq!(got_min, want_min);
        }
    }

    #[test]
    fn range_stats_invariants(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..80),
        win in 1usize..10,
    ) {
        let mut rr = RollingRange::new(win);
        for &x in &xs {
            let s = rr.push(x);
            prop_assert!(s.low <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.high + 1e-9);
            prop_assert!(s.low <= x && x <= s.high);
        }
    }

    #[test]
    fn bars_conserve_ticks_and_bound_prices(
        prices in proptest::collection::vec(1.0f64..1e4, 1..80),
    ) {
        let mut acc = BarAccumulator::new(30);
        let mut bars = Vec::new();
        for (k, &p) in prices.iter().enumerate() {
            bars.extend(acc.push(k as u32 * 7, p)); // ~4 ticks/interval
        }
        bars.extend(acc.flush());
        let ticks: u32 = bars.iter().map(|b| b.ticks).sum();
        prop_assert_eq!(ticks as usize, prices.len());
        for b in &bars {
            prop_assert!(b.low <= b.open && b.open <= b.high);
            prop_assert!(b.low <= b.close && b.close <= b.high);
        }
        // Intervals strictly increase.
        for w in bars.windows(2) {
            prop_assert_eq!(w[1].interval, w[0].interval + 1);
        }
    }

    #[test]
    fn grid_from_series_and_returns_shapes(
        flat in proptest::collection::vec(1.0f64..1e3, 4..60),
    ) {
        // Two stocks sharing the series length.
        let half = flat.len() / 2;
        let grid = PriceGrid::from_series(
            vec![flat[..half].to_vec(), flat[half..2 * half].to_vec()],
            30,
        );
        let panel = ReturnsPanel::from_grid(&grid);
        prop_assert_eq!(panel.n_stocks(), 2);
        prop_assert_eq!(panel.len(), half - 1);
        // exp(sum of log returns) recovers the price ratio.
        for stock in 0..2 {
            let total: f64 = panel.series(stock).iter().sum();
            let want = grid.price(stock, half - 1) / grid.price(stock, 0);
            prop_assert!((total.exp() - want).abs() < 1e-9 * want);
        }
    }

    #[test]
    fn window_return_is_compound_of_log_returns(
        prices in proptest::collection::vec(10.0f64..1e3, 5..40),
        w in 1usize..6,
    ) {
        let grid = PriceGrid::from_series(vec![prices.clone()], 30);
        let panel = ReturnsPanel::from_grid(&grid);
        let n = panel.len();
        if w <= n {
            let ret = panel.window_return(0, n - w, n);
            let want = prices[prices.len() - 1] / prices[prices.len() - 1 - w] - 1.0;
            prop_assert!((ret - want).abs() < 1e-9 * (1.0 + want.abs()));
        }
    }
}
