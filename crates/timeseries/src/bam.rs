//! Bid-ask-midpoint sampling onto the Δs interval grid.
//!
//! The paper: "In our high-frequency analysis we use the bid-ask midpoint
//! (BAM) as an approximation to the stock price ... it allows for a closer
//! approximation to the actual price level between trades, which is
//! especially useful for stocks which trade infrequently."
//!
//! A [`PriceGrid`] holds, for every stock and every Δs interval of a day,
//! the midpoint of the last *clean* quote at or before the interval's end
//! — forward-filled through quiet intervals, back-filled before the first
//! quote of the day (an interval with no history yet simply shows the
//! first known price, producing zero returns rather than garbage).

use taq::dataset::DayData;
use taq::time::SECONDS_PER_SESSION;

use crate::clean::{CleanConfig, CleanStats, TcpFilter};

/// A day of BAM prices on the Δs grid, all stocks aligned.
#[derive(Debug, Clone)]
pub struct PriceGrid {
    n_stocks: usize,
    intervals: usize,
    dt_seconds: u32,
    /// Row-major `[stock][interval]`.
    prices: Vec<f64>,
    /// Fraction of intervals per stock that saw at least one fresh clean
    /// quote (1.0 = fully live tape).
    coverage: Vec<f64>,
    /// Cleaning counters per stock.
    clean_stats: Vec<CleanStats>,
}

impl PriceGrid {
    /// Build the grid for one day.
    ///
    /// # Panics
    /// Panics if `dt_seconds` does not divide the session evenly.
    pub fn from_day(day: &DayData, n_stocks: usize, dt_seconds: u32, clean: CleanConfig) -> Self {
        assert!(dt_seconds > 0 && SECONDS_PER_SESSION.is_multiple_of(dt_seconds));
        let intervals = (SECONDS_PER_SESSION / dt_seconds) as usize;
        let mut prices = vec![f64::NAN; n_stocks * intervals];
        let mut coverage = vec![0.0; n_stocks];
        let mut clean_stats = vec![CleanStats::default(); n_stocks];

        for stock in 0..n_stocks {
            let mut filter = TcpFilter::new(clean);
            // Last accepted midpoint per interval.
            let mut last_in_interval = vec![f64::NAN; intervals];
            for q in day.for_symbol(taq::symbol::Symbol(stock as u16)) {
                if let Ok(mid) = filter.process(q) {
                    last_in_interval[q.ts.interval(dt_seconds)] = mid;
                }
            }
            // Forward fill; remember the first observed value for backfill.
            let mut first_seen = f64::NAN;
            let mut carry = f64::NAN;
            let mut fresh = 0usize;
            for (s, &v) in last_in_interval.iter().enumerate() {
                if !v.is_nan() {
                    fresh += 1;
                    if first_seen.is_nan() {
                        first_seen = v;
                    }
                    carry = v;
                }
                prices[stock * intervals + s] = carry;
            }
            // Backfill leading NaNs with the first observation (flat prefix).
            if !first_seen.is_nan() {
                for s in 0..intervals {
                    let cell = &mut prices[stock * intervals + s];
                    if cell.is_nan() {
                        *cell = first_seen;
                    } else {
                        break;
                    }
                }
            }
            coverage[stock] = fresh as f64 / intervals as f64;
            clean_stats[stock] = filter.stats();
        }

        PriceGrid {
            n_stocks,
            intervals,
            dt_seconds,
            prices,
            coverage,
            clean_stats,
        }
    }

    /// Build directly from per-stock per-interval prices (testing and
    /// simulation shortcuts). All series must have equal length.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_series(series: Vec<Vec<f64>>, dt_seconds: u32) -> Self {
        let n_stocks = series.len();
        let intervals = series.first().map(|s| s.len()).unwrap_or(0);
        assert!(series.iter().all(|s| s.len() == intervals), "ragged series");
        let mut prices = Vec::with_capacity(n_stocks * intervals);
        for s in &series {
            prices.extend_from_slice(s);
        }
        PriceGrid {
            n_stocks,
            intervals,
            dt_seconds,
            prices,
            coverage: vec![1.0; n_stocks],
            clean_stats: vec![CleanStats::default(); n_stocks],
        }
    }

    /// Number of stocks.
    pub fn n_stocks(&self) -> usize {
        self.n_stocks
    }

    /// Number of Δs intervals (`smax`).
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// Interval width in seconds.
    pub fn dt_seconds(&self) -> u32 {
        self.dt_seconds
    }

    /// Price of `stock` at interval `s` (NaN only for a stock with no
    /// quotes at all).
    #[inline]
    pub fn price(&self, stock: usize, s: usize) -> f64 {
        self.prices[stock * self.intervals + s]
    }

    /// Full interval series for a stock.
    pub fn series(&self, stock: usize) -> &[f64] {
        &self.prices[stock * self.intervals..(stock + 1) * self.intervals]
    }

    /// Fresh-quote coverage for a stock in [0, 1].
    pub fn coverage(&self, stock: usize) -> f64 {
        self.coverage[stock]
    }

    /// Cleaning counters for a stock.
    pub fn clean_stats(&self, stock: usize) -> CleanStats {
        self.clean_stats[stock]
    }

    /// True if the stock produced at least one usable price.
    pub fn has_data(&self, stock: usize) -> bool {
        !self.price(stock, self.intervals - 1).is_nan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taq::dataset::DayData;
    use taq::quote::Quote;
    use taq::symbol::Symbol;
    use taq::time::Timestamp;

    fn q(sec: u32, sym: u16, bid: u32, ask: u32) -> Quote {
        Quote {
            ts: Timestamp::new(0, sec * 1000),
            symbol: Symbol(sym),
            bid_cents: bid,
            ask_cents: ask,
            bid_size: 1,
            ask_size: 1,
        }
    }

    #[test]
    fn samples_last_quote_per_interval() {
        // Two quotes in interval 0 (Δs = 30): the later one wins.
        let day = DayData::new(
            0,
            vec![
                q(3, 0, 4000, 4002),
                q(20, 0, 4100, 4102),
                q(40, 0, 4200, 4202),
            ],
            1,
            vec![],
        );
        let grid = PriceGrid::from_day(&day, 1, 30, CleanConfig::default());
        assert_eq!(grid.intervals(), 780);
        assert!((grid.price(0, 0) - 41.01).abs() < 1e-9);
        assert!((grid.price(0, 1) - 42.01).abs() < 1e-9);
    }

    #[test]
    fn forward_fills_quiet_intervals() {
        let day = DayData::new(0, vec![q(10, 0, 5000, 5002)], 1, vec![]);
        let grid = PriceGrid::from_day(&day, 1, 30, CleanConfig::default());
        for s in 0..780 {
            assert!((grid.price(0, s) - 50.01).abs() < 1e-9, "interval {s}");
        }
        assert!(grid.has_data(0));
        assert!((grid.coverage(0) - 1.0 / 780.0).abs() < 1e-12);
    }

    #[test]
    fn backfill_prefix_is_flat() {
        // First quote arrives in interval 2; intervals 0-1 are backfilled.
        let day = DayData::new(0, vec![q(70, 0, 3000, 3002)], 1, vec![]);
        let grid = PriceGrid::from_day(&day, 1, 30, CleanConfig::default());
        assert!((grid.price(0, 0) - 30.01).abs() < 1e-9);
        assert!((grid.price(0, 1) - 30.01).abs() < 1e-9);
        assert!((grid.price(0, 2) - 30.01).abs() < 1e-9);
    }

    #[test]
    fn stock_with_no_quotes_is_flagged() {
        let day = DayData::new(0, vec![q(5, 0, 1000, 1002)], 2, vec![]);
        let grid = PriceGrid::from_day(&day, 2, 30, CleanConfig::default());
        assert!(grid.has_data(0));
        assert!(!grid.has_data(1));
        assert_eq!(grid.coverage(1), 0.0);
    }

    #[test]
    fn dirty_quotes_are_excluded_from_grid() {
        // A calm tape plus one fat-finger; the grid must never show $4.
        let mut quotes: Vec<Quote> = (0..100).map(|k| q(k * 30, 0, 4000, 4002)).collect();
        quotes.push(q(1510, 0, 399, 401)); // inside interval 50
        let day = DayData::new(0, quotes, 1, vec![]);
        let grid = PriceGrid::from_day(&day, 1, 30, CleanConfig::default());
        for s in 0..100 {
            assert!((grid.price(0, s) - 40.01).abs() < 1e-9, "interval {s}");
        }
        assert_eq!(grid.clean_stats(0).outlier, 1);
    }

    #[test]
    fn from_series_round_trip() {
        let grid = PriceGrid::from_series(vec![vec![1.0, 2.0], vec![3.0, 4.0]], 30);
        assert_eq!(grid.n_stocks(), 2);
        assert_eq!(grid.intervals(), 2);
        assert_eq!(grid.series(1), &[3.0, 4.0]);
        assert_eq!(grid.coverage(0), 1.0);
    }
}
