//! Pair spread series and rolling spread statistics.
//!
//! The strategy's step 5 reverses a position at the retracement level
//! computed from "the high, low and average of the spread during the last
//! RT time intervals" — [`SpreadTracker`] maintains exactly that triple
//! (`Sl`, `Sh`, `S̄`) in amortised O(1) per interval.

use crate::bam::PriceGrid;
use crate::rolling::{RangeStats, RollingRange};

/// Spread series `P_i(s) - P_j(s)` for a pair over a day.
pub fn spread_series(grid: &PriceGrid, i: usize, j: usize) -> Vec<f64> {
    grid.series(i)
        .iter()
        .zip(grid.series(j))
        .map(|(a, b)| a - b)
        .collect()
}

/// Rolling spread statistics for one pair.
#[derive(Debug, Clone)]
pub struct SpreadTracker {
    range: RollingRange,
    last: Option<f64>,
}

impl SpreadTracker {
    /// Track the spread over windows of `rt` intervals.
    pub fn new(rt: usize) -> Self {
        SpreadTracker {
            range: RollingRange::new(rt.max(1)),
            last: None,
        }
    }

    /// Push the spread at the current interval; returns the updated
    /// `(Sl, Sh, S̄)` stats.
    pub fn push(&mut self, spread: f64) -> RangeStats {
        self.last = Some(spread);
        self.range.push(spread)
    }

    /// Most recent spread value.
    pub fn last(&self) -> Option<f64> {
        self.last
    }

    /// Current stats without pushing.
    pub fn stats(&self) -> Option<RangeStats> {
        self.range.current()
    }
}

impl wire::Codec for SpreadTracker {
    fn encode(&self, w: &mut wire::Writer) {
        self.range.encode(w);
        self.last.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(SpreadTracker {
            range: wire::Codec::decode(r)?,
            last: Option::<f64>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bam::PriceGrid;

    #[test]
    fn spread_series_is_price_difference() {
        let grid =
            PriceGrid::from_series(vec![vec![30.0, 31.0, 32.0], vec![130.0, 129.0, 131.0]], 30);
        assert_eq!(spread_series(&grid, 0, 1), vec![-100.0, -98.0, -99.0]);
        assert_eq!(spread_series(&grid, 1, 0), vec![100.0, 98.0, 99.0]);
    }

    #[test]
    fn tracker_reports_low_high_mean() {
        let mut t = SpreadTracker::new(3);
        t.push(80.0);
        t.push(100.0);
        let s = t.push(90.0);
        assert_eq!((s.low, s.high), (80.0, 100.0));
        assert!((s.mean - 90.0).abs() < 1e-12);
        // Window slides: 80 evicted.
        let s = t.push(95.0);
        assert_eq!((s.low, s.high), (90.0, 100.0));
        assert_eq!(t.last(), Some(95.0));
        assert_eq!(t.stats().unwrap(), s);
    }

    #[test]
    fn paper_retracement_example_inputs() {
        // "if the high of a MSFT-IBM spread is $100, and the low $80":
        // the tracker must surface exactly those for the retracement rule.
        let mut t = SpreadTracker::new(10);
        for &v in &[80.0, 85.0, 100.0, 95.0, 82.0] {
            t.push(v);
        }
        let s = t.stats().unwrap();
        assert_eq!(s.low, 80.0);
        assert_eq!(s.high, 100.0);
    }
}
