//! High-frequency time-series primitives.
//!
//! This crate is the bridge between the raw quote tape (`taq`) and the
//! statistics (`stats`): it turns a day of quotes into the aligned,
//! cleaned, log-return panel the correlation engine and the strategy
//! consume.
//!
//! * [`window`] — a generic fixed-capacity ring buffer.
//! * [`rolling`] — rolling extrema (monotonic deque) and a combined
//!   rolling min/max/mean tracker for spread retracement levels.
//! * [`clean`] — the paper's "TCP-like" data filter: a rolling mean ±
//!   k·sigma gate on bid-ask midpoints, plus structural well-formedness
//!   checks.
//! * [`bam`] — bid-ask-midpoint sampling onto the Δs interval grid
//!   (last quote at or before each interval end, forward-filled).
//! * [`bars`] — OHLC bar accumulation (the "OHLC Bar Accumulator"
//!   component of Figure 1).
//! * [`returns`] — 1-period log returns and the per-stock return panel.
//! * [`spread`] — pair spread series and the rolling spread statistics
//!   (`Sl`, `Sh`, `S̄`) the retracement rule needs.

pub mod bam;
pub mod bars;
pub mod clean;
pub mod returns;
pub mod rolling;
pub mod spread;
pub mod window;

pub use bam::PriceGrid;
pub use bars::{Bar, BarAccumulator};
pub use clean::{CleanConfig, CleanStats, TcpFilter};
pub use returns::ReturnsPanel;
pub use spread::SpreadTracker;
pub use window::SlidingWindow;
