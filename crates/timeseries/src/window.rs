//! A generic fixed-capacity ring buffer with chronological iteration.
//!
//! The strategy's many windowed quantities (last `M` returns, last `W`
//! correlations, last `Y` divergences, last `RT` spreads) all sit on this
//! one container.

/// Fixed-capacity sliding window over values of type `T`.
#[derive(Debug, Clone)]
pub struct SlidingWindow<T> {
    buf: Vec<T>,
    head: usize,
    len: usize,
    cap: usize,
}

impl<T: Copy> SlidingWindow<T> {
    /// Create a window with the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            cap: capacity,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once at capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.cap
    }

    /// Push a value, evicting and returning the oldest when full.
    pub fn push(&mut self, v: T) -> Option<T> {
        if self.buf.len() < self.cap {
            self.buf.push(v);
            self.len += 1;
            None
        } else {
            let evicted = self.buf[self.head];
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
            Some(evicted)
        }
    }

    /// Oldest element, if any.
    pub fn front(&self) -> Option<T> {
        if self.len == 0 {
            None
        } else if self.buf.len() < self.cap {
            Some(self.buf[0])
        } else {
            Some(self.buf[self.head])
        }
    }

    /// Newest element, if any.
    pub fn back(&self) -> Option<T> {
        if self.len == 0 {
            None
        } else if self.buf.len() < self.cap {
            Some(self.buf[self.len - 1])
        } else {
            Some(self.buf[(self.head + self.cap - 1) % self.cap])
        }
    }

    /// Element `k` steps back from the newest (0 = newest).
    pub fn nth_back(&self, k: usize) -> Option<T> {
        if k >= self.len {
            return None;
        }
        if self.buf.len() < self.cap {
            Some(self.buf[self.len - 1 - k])
        } else {
            Some(self.buf[(self.head + self.cap - 1 - k) % self.cap])
        }
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len).map(move |k| {
            if self.buf.len() < self.cap {
                self.buf[k]
            } else {
                self.buf[(self.head + k) % self.cap]
            }
        })
    }

    /// Copy contents oldest → newest into a fresh vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().collect()
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.len = 0;
    }
}

impl SlidingWindow<f64> {
    /// Mean of the current contents (0 when empty) — convenience for the
    /// strategy's `C̄` average-correlation window.
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.iter().sum::<f64>() / self.len as f64
        }
    }
}

// Durable-checkpoint codec. The window is encoded as capacity plus its
// *logical* contents (oldest → newest) and rebuilt by pushing: every
// consumer observes the window through `iter()`-order, so the physical
// ring layout does not affect downstream arithmetic.
impl<T: Copy + wire::Codec> wire::Codec for SlidingWindow<T> {
    fn encode(&self, w: &mut wire::Writer) {
        wire::Codec::encode(&self.cap, w);
        wire::Codec::encode(&self.to_vec(), w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        let cap = <usize as wire::Codec>::decode(r)?;
        let items = <Vec<T> as wire::Codec>::decode(r)?;
        if cap == 0 || items.len() > cap {
            return Err(wire::WireError::Invalid("sliding window geometry"));
        }
        let mut win = SlidingWindow::new(cap);
        for v in items {
            win.push(v);
        }
        Ok(win)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_fifo() {
        let mut w = SlidingWindow::new(3);
        assert_eq!(w.push(1), None);
        assert_eq!(w.push(2), None);
        assert_eq!(w.push(3), None);
        assert!(w.is_full());
        assert_eq!(w.push(4), Some(1));
        assert_eq!(w.push(5), Some(2));
        assert_eq!(w.to_vec(), vec![3, 4, 5]);
    }

    #[test]
    fn front_back_nth() {
        let mut w = SlidingWindow::new(3);
        assert_eq!(w.front(), None);
        assert_eq!(w.back(), None);
        w.push(10);
        w.push(20);
        assert_eq!(w.front(), Some(10));
        assert_eq!(w.back(), Some(20));
        w.push(30);
        w.push(40); // evicts 10
        assert_eq!(w.front(), Some(20));
        assert_eq!(w.back(), Some(40));
        assert_eq!(w.nth_back(0), Some(40));
        assert_eq!(w.nth_back(2), Some(20));
        assert_eq!(w.nth_back(3), None);
    }

    #[test]
    fn iteration_order_after_wrap() {
        let mut w = SlidingWindow::new(4);
        for v in 0..10 {
            w.push(v);
        }
        assert_eq!(w.to_vec(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn mean_of_f64_window() {
        let mut w: SlidingWindow<f64> = SlidingWindow::new(4);
        assert_eq!(w.mean(), 0.0);
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        assert!((w.mean() - 2.0).abs() < 1e-12);
        w.push(4.0);
        w.push(8.0); // evicts 1.0 -> {2, 3, 4, 8}
        assert!((w.mean() - 4.25).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let mut w = SlidingWindow::new(2);
        w.push(1);
        w.push(2);
        w.push(3);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.push(9), None);
        assert_eq!(w.to_vec(), vec![9]);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _: SlidingWindow<u8> = SlidingWindow::new(0);
    }
}
