//! The paper's "TCP-like" data-cleaning filter.
//!
//! "Our approach is to use a very simple but effective TCP-like filter to
//! eliminate prices that are more than a few standard deviations from
//! their corresponding moving average and deviation. The remaining
//! outliers will be gracefully down-weighted by the robust correlation
//! method."
//!
//! The analogy is to TCP's RTT estimation: a smoothed mean and a smoothed
//! deviation, with observations far outside `mean ± k·dev` treated as
//! losses (rejected) rather than signal. Per-symbol state, two structural
//! pre-checks (well-formedness, spread sanity), then the statistical gate.
//!
//! Rejected quotes are *dropped*, not corrected — the paper's design is
//! explicitly "filter the obvious, let Maronna absorb the rest", which the
//! robustness ablation bench quantifies.

use taq::quote::Quote;

/// Filter configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleanConfig {
    /// Gate half-width in standard deviations ("a few").
    pub k_sigma: f64,
    /// Window (quote count) for the rolling midpoint moments.
    pub window: usize,
    /// Quotes to observe per symbol before the statistical gate engages
    /// (the moments are meaningless on two points).
    pub warmup: usize,
    /// Maximum allowed relative spread (ask-bid)/mid; wider quotes are
    /// structurally suspect (test quotes, far-out limits).
    pub max_rel_spread: f64,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            k_sigma: 4.0,
            window: 200,
            warmup: 20,
            max_rel_spread: 0.02,
        }
    }
}

/// Why a quote was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Crossed/locked book or zero price.
    Malformed,
    /// Relative spread above the structural limit.
    WideSpread,
    /// Midpoint outside the rolling `mean ± k·sigma` gate.
    Outlier,
}

/// Acceptance counters, for filter precision/recall studies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanStats {
    /// Quotes accepted.
    pub accepted: u64,
    /// Rejected: malformed book.
    pub malformed: u64,
    /// Rejected: spread too wide.
    pub wide_spread: u64,
    /// Rejected: statistical outlier.
    pub outlier: u64,
}

impl CleanStats {
    /// Total rejected.
    pub fn rejected(&self) -> u64 {
        self.malformed + self.wide_spread + self.outlier
    }

    /// Total processed.
    pub fn total(&self) -> u64 {
        self.accepted + self.rejected()
    }
}

/// Per-symbol cleaning filter.
///
/// One instance per symbol (the rolling moments are price-level specific).
#[derive(Debug, Clone)]
pub struct TcpFilter {
    cfg: CleanConfig,
    moments: stats::online::RollingMoments,
    seen: usize,
    stats: CleanStats,
}

impl TcpFilter {
    /// New filter with the given configuration.
    pub fn new(cfg: CleanConfig) -> Self {
        TcpFilter {
            cfg,
            moments: stats::online::RollingMoments::new(cfg.window),
            seen: 0,
            stats: CleanStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CleanStats {
        self.stats
    }

    /// Process a quote: `Ok(mid)` if accepted (returning its midpoint),
    /// `Err(reason)` if rejected. Accepted midpoints update the rolling
    /// moments; rejected quotes do not (a burst of bad ticks must not drag
    /// the gate toward itself).
    pub fn process(&mut self, q: &Quote) -> Result<f64, RejectReason> {
        if !q.is_well_formed() {
            self.stats.malformed += 1;
            return Err(RejectReason::Malformed);
        }
        let mid = q.midpoint();
        if q.spread() / mid > self.cfg.max_rel_spread {
            self.stats.wide_spread += 1;
            return Err(RejectReason::WideSpread);
        }
        if self.seen >= self.cfg.warmup {
            let mean = self.moments.mean();
            let dev = self.moments.std_dev();
            // Absolute floor on the gate width: on an ultra-quiet tape the
            // rolling deviation can collapse to ~0 and reject everything.
            let gate = (self.cfg.k_sigma * dev).max(mean * 1e-4);
            if (mid - mean).abs() > gate {
                self.stats.outlier += 1;
                return Err(RejectReason::Outlier);
            }
        }
        self.moments.push(mid);
        self.seen += 1;
        self.stats.accepted += 1;
        Ok(mid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taq::symbol::Symbol;
    use taq::time::Timestamp;

    fn q(millis: u32, bid: u32, ask: u32) -> Quote {
        Quote {
            ts: Timestamp::new(0, millis),
            symbol: Symbol(0),
            bid_cents: bid,
            ask_cents: ask,
            bid_size: 1,
            ask_size: 1,
        }
    }

    /// A calm tape around $40.00 with ~1-cent wiggle.
    fn calm_tape(n: usize) -> Vec<Quote> {
        (0..n)
            .map(|k| {
                let wiggle = ((k * 7) % 3) as u32; // 0..2 cents
                q(k as u32 * 1000, 3999 + wiggle, 4001 + wiggle)
            })
            .collect()
    }

    #[test]
    fn accepts_calm_tape() {
        let mut f = TcpFilter::new(CleanConfig::default());
        for quote in calm_tape(500) {
            assert!(f.process(&quote).is_ok());
        }
        assert_eq!(f.stats().rejected(), 0);
        assert_eq!(f.stats().accepted, 500);
    }

    #[test]
    fn rejects_malformed_and_wide() {
        let mut f = TcpFilter::new(CleanConfig::default());
        assert_eq!(f.process(&q(0, 100, 100)), Err(RejectReason::Malformed));
        // 1 -> 99999 test-quote pattern: enormous relative spread.
        assert_eq!(f.process(&q(1, 1, 99_999)), Err(RejectReason::WideSpread));
        assert_eq!(f.stats().malformed, 1);
        assert_eq!(f.stats().wide_spread, 1);
    }

    #[test]
    fn rejects_fat_finger_after_warmup() {
        let mut f = TcpFilter::new(CleanConfig::default());
        for quote in calm_tape(100) {
            f.process(&quote).unwrap();
        }
        // Fat finger: $40 -> $4.00 (narrow spread, well-formed, wrong level).
        let bad = q(200_000, 399, 401);
        assert_eq!(f.process(&bad), Err(RejectReason::Outlier));
        // The gate state must be unpolluted: the next good quote passes.
        assert!(f.process(&q(201_000, 4000, 4002)).is_ok());
    }

    #[test]
    fn warmup_lets_early_quotes_through() {
        let cfg = CleanConfig {
            warmup: 10,
            ..Default::default()
        };
        let mut f = TcpFilter::new(cfg);
        // During warmup even a jumpy tape is accepted (structurally valid).
        for k in 0..10u32 {
            let base = 4000 + k * 10;
            assert!(f.process(&q(k * 1000, base, base + 2)).is_ok());
        }
    }

    #[test]
    fn burst_of_bad_ticks_does_not_move_the_gate() {
        let mut f = TcpFilter::new(CleanConfig::default());
        for quote in calm_tape(100) {
            f.process(&quote).unwrap();
        }
        // 50 consecutive fat fingers at the same wrong level.
        for k in 0..50u32 {
            assert_eq!(
                f.process(&q(300_000 + k * 10, 39_990, 40_010)),
                Err(RejectReason::Outlier),
                "bad tick {k} must stay rejected"
            );
        }
        assert!(f.process(&q(400_000, 4000, 4002)).is_ok());
    }

    #[test]
    fn stats_accounting() {
        let mut f = TcpFilter::new(CleanConfig::default());
        for quote in calm_tape(30) {
            f.process(&quote).unwrap();
        }
        let _ = f.process(&q(31_000, 100, 100));
        assert_eq!(f.stats().total(), 31);
        assert_eq!(f.stats().accepted, 30);
        assert_eq!(f.stats().rejected(), 1);
    }
}
