//! The paper's "TCP-like" data-cleaning filter.
//!
//! "Our approach is to use a very simple but effective TCP-like filter to
//! eliminate prices that are more than a few standard deviations from
//! their corresponding moving average and deviation. The remaining
//! outliers will be gracefully down-weighted by the robust correlation
//! method."
//!
//! The analogy is to TCP's RTT estimation: a smoothed mean and a smoothed
//! deviation, with observations far outside `mean ± k·dev` treated as
//! losses (rejected) rather than signal. Per-symbol state, two structural
//! pre-checks (well-formedness, spread sanity), then the statistical gate.
//!
//! Rejected quotes are *dropped*, not corrected — the paper's design is
//! explicitly "filter the obvious, let Maronna absorb the rest", which the
//! robustness ablation bench quantifies.

use std::collections::VecDeque;

use taq::quote::Quote;

/// Filter configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleanConfig {
    /// Gate half-width in standard deviations ("a few").
    pub k_sigma: f64,
    /// Window (quote count) for the rolling midpoint moments.
    pub window: usize,
    /// Quotes to observe per symbol before the statistical gate engages
    /// (the moments are meaningless on two points).
    pub warmup: usize,
    /// Maximum allowed relative spread (ask-bid)/mid; wider quotes are
    /// structurally suspect (test quotes, far-out limits).
    pub max_rel_spread: f64,
    /// Window (quote count) for the rolling reject-rate tripwire.
    pub gate_window: usize,
    /// Reject rate over the gate window at or above which the symbol is
    /// quarantined: when this many quotes are being discarded, the
    /// survivors are no longer a trustworthy sample of the symbol.
    pub trip_rate: f64,
    /// Reject rate at or below which a quarantined symbol recovers.
    /// Strictly below `trip_rate` so the flag can't chatter when the
    /// rate hovers near the threshold (hysteresis).
    pub untrip_rate: f64,
    /// Minimum observations in the gate window before the tripwire may
    /// fire (a 2-for-3 start must not quarantine anyone).
    pub min_gate_samples: usize,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            k_sigma: 4.0,
            window: 200,
            warmup: 20,
            max_rel_spread: 0.02,
            gate_window: 64,
            trip_rate: 0.5,
            untrip_rate: 0.15,
            min_gate_samples: 32,
        }
    }
}

/// Why a quote was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Crossed/locked book or zero price.
    Malformed,
    /// Relative spread above the structural limit.
    WideSpread,
    /// Midpoint outside the rolling `mean ± k·sigma` gate.
    Outlier,
}

/// Acceptance counters, for filter precision/recall studies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanStats {
    /// Quotes accepted.
    pub accepted: u64,
    /// Rejected: malformed book.
    pub malformed: u64,
    /// Rejected: spread too wide.
    pub wide_spread: u64,
    /// Rejected: statistical outlier.
    pub outlier: u64,
}

impl CleanStats {
    /// Total rejected.
    pub fn rejected(&self) -> u64 {
        self.malformed + self.wide_spread + self.outlier
    }

    /// Total processed.
    pub fn total(&self) -> u64 {
        self.accepted + self.rejected()
    }
}

/// Per-symbol cleaning filter.
///
/// One instance per symbol (the rolling moments are price-level specific).
#[derive(Debug, Clone)]
pub struct TcpFilter {
    cfg: CleanConfig,
    moments: stats::online::RollingMoments,
    seen: usize,
    stats: CleanStats,
    /// Rolling outcome window for the tripwire (true = rejected).
    outcomes: VecDeque<bool>,
    recent_rejects: usize,
    quarantined: bool,
}

impl TcpFilter {
    /// New filter with the given configuration.
    pub fn new(cfg: CleanConfig) -> Self {
        TcpFilter {
            cfg,
            moments: stats::online::RollingMoments::new(cfg.window),
            seen: 0,
            stats: CleanStats::default(),
            outcomes: VecDeque::with_capacity(cfg.gate_window.max(1)),
            recent_rejects: 0,
            quarantined: false,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CleanStats {
        self.stats
    }

    /// True while the reject-rate tripwire is tripped: the symbol's feed
    /// is rejecting so much that the accepted residue should not be
    /// trusted either. Clears with hysteresis once the rolling rate falls
    /// back to [`CleanConfig::untrip_rate`].
    pub fn quarantined(&self) -> bool {
        self.quarantined
    }

    /// Rejected fraction of the rolling gate window.
    pub fn reject_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.recent_rejects as f64 / self.outcomes.len() as f64
        }
    }

    /// Record one outcome in the tripwire window and update the
    /// quarantine flag with trip/untrip hysteresis.
    fn record_outcome(&mut self, rejected: bool) {
        let window = self.cfg.gate_window.max(1);
        if self.outcomes.len() == window && self.outcomes.pop_front() == Some(true) {
            self.recent_rejects -= 1;
        }
        self.outcomes.push_back(rejected);
        if rejected {
            self.recent_rejects += 1;
        }
        let rate = self.reject_rate();
        if !self.quarantined {
            if self.outcomes.len() >= self.cfg.min_gate_samples && rate >= self.cfg.trip_rate {
                self.quarantined = true;
            }
        } else if rate <= self.cfg.untrip_rate {
            self.quarantined = false;
        }
    }

    /// Process a quote: `Ok(mid)` if accepted (returning its midpoint),
    /// `Err(reason)` if rejected. Accepted midpoints update the rolling
    /// moments; rejected quotes do not (a burst of bad ticks must not drag
    /// the gate toward itself).
    pub fn process(&mut self, q: &Quote) -> Result<f64, RejectReason> {
        let result = self.gate(q);
        self.record_outcome(result.is_err());
        result
    }

    fn gate(&mut self, q: &Quote) -> Result<f64, RejectReason> {
        if !q.is_well_formed() {
            self.stats.malformed += 1;
            return Err(RejectReason::Malformed);
        }
        let mid = q.midpoint();
        if q.spread() / mid > self.cfg.max_rel_spread {
            self.stats.wide_spread += 1;
            return Err(RejectReason::WideSpread);
        }
        if self.seen >= self.cfg.warmup {
            let mean = self.moments.mean();
            let dev = self.moments.std_dev();
            // Absolute floor on the gate width: on an ultra-quiet tape the
            // rolling deviation can collapse to ~0 and reject everything.
            let gate = (self.cfg.k_sigma * dev).max(mean * 1e-4);
            if (mid - mean).abs() > gate {
                self.stats.outlier += 1;
                return Err(RejectReason::Outlier);
            }
        }
        self.moments.push(mid);
        self.seen += 1;
        self.stats.accepted += 1;
        Ok(mid)
    }
}

impl wire::Codec for CleanConfig {
    fn encode(&self, w: &mut wire::Writer) {
        self.k_sigma.encode(w);
        self.window.encode(w);
        self.warmup.encode(w);
        self.max_rel_spread.encode(w);
        self.gate_window.encode(w);
        self.trip_rate.encode(w);
        self.untrip_rate.encode(w);
        self.min_gate_samples.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(CleanConfig {
            k_sigma: f64::decode(r)?,
            window: usize::decode(r)?,
            warmup: usize::decode(r)?,
            max_rel_spread: f64::decode(r)?,
            gate_window: usize::decode(r)?,
            trip_rate: f64::decode(r)?,
            untrip_rate: f64::decode(r)?,
            min_gate_samples: usize::decode(r)?,
        })
    }
}

impl wire::Codec for CleanStats {
    fn encode(&self, w: &mut wire::Writer) {
        self.accepted.encode(w);
        self.malformed.encode(w);
        self.wide_spread.encode(w);
        self.outlier.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(CleanStats {
            accepted: u64::decode(r)?,
            malformed: u64::decode(r)?,
            wide_spread: u64::decode(r)?,
            outlier: u64::decode(r)?,
        })
    }
}

impl wire::Codec for TcpFilter {
    fn encode(&self, w: &mut wire::Writer) {
        self.cfg.encode(w);
        self.moments.encode(w);
        self.seen.encode(w);
        self.stats.encode(w);
        self.outcomes.encode(w);
        self.recent_rejects.encode(w);
        self.quarantined.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        let cfg = CleanConfig::decode(r)?;
        let moments = stats::online::RollingMoments::decode(r)?;
        let seen = usize::decode(r)?;
        let stats = CleanStats::decode(r)?;
        let outcomes = VecDeque::<bool>::decode(r)?;
        let recent_rejects = usize::decode(r)?;
        let quarantined = bool::decode(r)?;
        if recent_rejects != outcomes.iter().filter(|&&o| o).count() {
            return Err(wire::WireError::Invalid("tripwire counter mismatch"));
        }
        Ok(TcpFilter {
            cfg,
            moments,
            seen,
            stats,
            outcomes,
            recent_rejects,
            quarantined,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taq::symbol::Symbol;
    use taq::time::Timestamp;

    fn q(millis: u32, bid: u32, ask: u32) -> Quote {
        Quote {
            ts: Timestamp::new(0, millis),
            symbol: Symbol(0),
            bid_cents: bid,
            ask_cents: ask,
            bid_size: 1,
            ask_size: 1,
        }
    }

    /// A calm tape around $40.00 with ~1-cent wiggle.
    fn calm_tape(n: usize) -> Vec<Quote> {
        (0..n)
            .map(|k| {
                let wiggle = ((k * 7) % 3) as u32; // 0..2 cents
                q(k as u32 * 1000, 3999 + wiggle, 4001 + wiggle)
            })
            .collect()
    }

    #[test]
    fn accepts_calm_tape() {
        let mut f = TcpFilter::new(CleanConfig::default());
        for quote in calm_tape(500) {
            assert!(f.process(&quote).is_ok());
        }
        assert_eq!(f.stats().rejected(), 0);
        assert_eq!(f.stats().accepted, 500);
    }

    #[test]
    fn rejects_malformed_and_wide() {
        let mut f = TcpFilter::new(CleanConfig::default());
        assert_eq!(f.process(&q(0, 100, 100)), Err(RejectReason::Malformed));
        // 1 -> 99999 test-quote pattern: enormous relative spread.
        assert_eq!(f.process(&q(1, 1, 99_999)), Err(RejectReason::WideSpread));
        assert_eq!(f.stats().malformed, 1);
        assert_eq!(f.stats().wide_spread, 1);
    }

    #[test]
    fn rejects_fat_finger_after_warmup() {
        let mut f = TcpFilter::new(CleanConfig::default());
        for quote in calm_tape(100) {
            f.process(&quote).unwrap();
        }
        // Fat finger: $40 -> $4.00 (narrow spread, well-formed, wrong level).
        let bad = q(200_000, 399, 401);
        assert_eq!(f.process(&bad), Err(RejectReason::Outlier));
        // The gate state must be unpolluted: the next good quote passes.
        assert!(f.process(&q(201_000, 4000, 4002)).is_ok());
    }

    #[test]
    fn warmup_lets_early_quotes_through() {
        let cfg = CleanConfig {
            warmup: 10,
            ..Default::default()
        };
        let mut f = TcpFilter::new(cfg);
        // During warmup even a jumpy tape is accepted (structurally valid).
        for k in 0..10u32 {
            let base = 4000 + k * 10;
            assert!(f.process(&q(k * 1000, base, base + 2)).is_ok());
        }
    }

    #[test]
    fn burst_of_bad_ticks_does_not_move_the_gate() {
        let mut f = TcpFilter::new(CleanConfig::default());
        for quote in calm_tape(100) {
            f.process(&quote).unwrap();
        }
        // 50 consecutive fat fingers at the same wrong level.
        for k in 0..50u32 {
            assert_eq!(
                f.process(&q(300_000 + k * 10, 39_990, 40_010)),
                Err(RejectReason::Outlier),
                "bad tick {k} must stay rejected"
            );
        }
        assert!(f.process(&q(400_000, 4000, 4002)).is_ok());
    }

    #[test]
    fn tripwire_fires_under_a_reject_storm() {
        let mut f = TcpFilter::new(CleanConfig::default());
        for quote in calm_tape(100) {
            f.process(&quote).unwrap();
        }
        assert!(!f.quarantined());
        // Corrupted feed: every quote a fat finger. With gate_window 64
        // and trip_rate 0.5, 32 consecutive rejects trip the wire.
        for k in 0..32u32 {
            let _ = f.process(&q(200_000 + k * 10, 399, 401));
        }
        assert!(f.quarantined(), "50% rolling rejects must quarantine");
        assert!(f.reject_rate() >= 0.5);
    }

    #[test]
    fn tripwire_needs_minimum_samples() {
        // A fresh filter fed only garbage: 100% reject rate, but the
        // tripwire must wait for min_gate_samples observations.
        let mut f = TcpFilter::new(CleanConfig::default());
        for k in 0..31u32 {
            let _ = f.process(&q(k * 10, 100, 100));
            assert!(!f.quarantined(), "below min_gate_samples after {k}");
        }
        let _ = f.process(&q(1_000, 100, 100));
        assert!(f.quarantined(), "32nd all-reject sample trips");
    }

    #[test]
    fn tripwire_untrips_with_hysteresis() {
        let mut f = TcpFilter::new(CleanConfig::default());
        for quote in calm_tape(100) {
            f.process(&quote).unwrap();
        }
        for k in 0..32u32 {
            let _ = f.process(&q(200_000 + k * 10, 399, 401));
        }
        assert!(f.quarantined());
        // Feed recovers. The rolling rate decays below trip_rate (0.5)
        // quickly, but the flag must hold until it reaches untrip_rate
        // (0.15): hysteresis, not a single-threshold flap.
        let mut cleared_at = None;
        for k in 0..64u32 {
            f.process(&q(300_000 + k * 1000, 4000, 4002)).unwrap();
            let rate = f.reject_rate();
            if f.quarantined() {
                assert!(rate > 0.15, "still flagged only while above untrip");
            } else if cleared_at.is_none() {
                cleared_at = Some((k, rate));
            }
        }
        let (k, rate) = cleared_at.expect("quarantine must eventually clear");
        assert!(rate <= 0.15, "cleared only at/below untrip_rate");
        assert!(
            k > 22,
            "32 rejects in a 64-window need >22 clean quotes to decay"
        );
    }

    #[test]
    fn tripwire_does_not_chatter_between_thresholds() {
        // Hold the rolling rate in the dead band (between untrip 0.15 and
        // trip 0.5): an untripped filter must stay untripped.
        let mut f = TcpFilter::new(CleanConfig::default());
        for quote in calm_tape(100) {
            f.process(&quote).unwrap();
        }
        // Alternate 1 bad : 2 good => rate ~0.33, inside the dead band.
        for k in 0..90u32 {
            let t = 200_000 + k * 100;
            if k % 3 == 0 {
                let _ = f.process(&q(t, 399, 401));
            } else {
                f.process(&q(t, 4000, 4002)).unwrap();
            }
            assert!(!f.quarantined(), "dead-band rate must not trip");
        }
    }

    #[test]
    fn stats_accounting() {
        let mut f = TcpFilter::new(CleanConfig::default());
        for quote in calm_tape(30) {
            f.process(&quote).unwrap();
        }
        let _ = f.process(&q(31_000, 100, 100));
        assert_eq!(f.stats().total(), 31);
        assert_eq!(f.stats().accepted, 30);
        assert_eq!(f.stats().rejected(), 1);
    }
}
