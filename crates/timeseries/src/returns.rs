//! 1-period log returns and the per-stock return panel.
//!
//! The paper defines the correlation inputs as vectors of the last `M`
//! log-returns, `x_i = log(r_i(s))` with `r_i(s) = P_i(s) / P_i(s-1)`
//! the 1-period gross return — i.e. the log of the price *ratio*. (Taking
//! differences of log-prices yields a stationary series; logging makes the
//! distribution approximately normal — both assumptions the correlation
//! statistics need.)

use crate::bam::PriceGrid;

/// A day's log-return series for every stock, aligned on the Δs grid.
///
/// `series[i][k]` is the log return of stock `i` over interval `k+1`
/// relative to interval `k`; every series has `intervals - 1` entries.
/// This is exactly the input shape `stats::ParallelCorrEngine::cube`
/// expects.
#[derive(Debug, Clone)]
pub struct ReturnsPanel {
    series: Vec<Vec<f64>>,
    dt_seconds: u32,
}

impl ReturnsPanel {
    /// Compute log returns from a price grid.
    ///
    /// Degenerate prices (NaN for an entirely quote-less stock, or a zero)
    /// produce zero returns, keeping the panel rectangular; such stocks
    /// have zero variance and therefore zero correlation with everything,
    /// so they can never trigger a trade.
    ///
    /// A bad price *mid-series* is treated as a gap, not a reset: the last
    /// good price is carried across it, so the first valid return after the
    /// gap is the log ratio to the price before the gap. (Zeroing both
    /// adjacent returns would silently swallow the real move across the
    /// gap and bias every correlation window spanning it.)
    pub fn from_grid(grid: &PriceGrid) -> Self {
        let n = grid.n_stocks();
        let mut series = Vec::with_capacity(n);
        for stock in 0..n {
            let p = grid.series(stock);
            let mut r = Vec::with_capacity(p.len().saturating_sub(1));
            let mut last_good: Option<f64> =
                p.first().copied().filter(|&v| v > 0.0 && v.is_finite());
            for &price in p.iter().skip(1) {
                if price > 0.0 && price.is_finite() {
                    r.push(match last_good {
                        Some(prev) => (price / prev).ln(),
                        None => 0.0,
                    });
                    last_good = Some(price);
                } else {
                    r.push(0.0);
                }
            }
            series.push(r);
        }
        ReturnsPanel {
            series,
            dt_seconds: grid.dt_seconds(),
        }
    }

    /// Number of stocks.
    pub fn n_stocks(&self) -> usize {
        self.series.len()
    }

    /// Length of each return series.
    pub fn len(&self) -> usize {
        self.series.first().map(|s| s.len()).unwrap_or(0)
    }

    /// True if the panel holds no returns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interval width the panel was sampled at.
    pub fn dt_seconds(&self) -> u32 {
        self.dt_seconds
    }

    /// Return series for one stock.
    pub fn series(&self, stock: usize) -> &[f64] {
        &self.series[stock]
    }

    /// All series, in the shape `stats::ParallelCorrEngine::cube` takes.
    pub fn all(&self) -> &[Vec<f64>] {
        &self.series
    }

    /// Total (gross) return of a stock over intervals `[from, to]`,
    /// computed from the log returns: `exp(sum) - 1`. Used by the strategy
    /// to rank over/under-performers over the `W` window.
    pub fn window_return(&self, stock: usize, from: usize, to: usize) -> f64 {
        let s = &self.series[stock];
        let hi = to.min(s.len());
        let lo = from.min(hi);
        s[lo..hi].iter().sum::<f64>().exp() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bam::PriceGrid;

    #[test]
    fn log_return_definition() {
        let grid = PriceGrid::from_series(vec![vec![100.0, 110.0, 99.0]], 30);
        let panel = ReturnsPanel::from_grid(&grid);
        assert_eq!(panel.len(), 2);
        assert!((panel.series(0)[0] - (110.0f64 / 100.0).ln()).abs() < 1e-12);
        assert!((panel.series(0)[1] - (99.0f64 / 110.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_prices_yield_zero_returns() {
        let grid = PriceGrid::from_series(vec![vec![f64::NAN, f64::NAN, f64::NAN]], 30);
        let panel = ReturnsPanel::from_grid(&grid);
        assert_eq!(panel.series(0), &[0.0, 0.0]);
    }

    #[test]
    fn gap_carries_last_good_price() {
        // 100 -> NaN -> 110: the move across the gap is real. The interval
        // ending at the bad price contributes nothing; the first valid
        // return after the gap is the full log ratio to the pre-gap price.
        let grid = PriceGrid::from_series(vec![vec![100.0, f64::NAN, 110.0]], 30);
        let panel = ReturnsPanel::from_grid(&grid);
        assert_eq!(panel.series(0)[0], 0.0);
        assert!((panel.series(0)[1] - (110.0f64 / 100.0).ln()).abs() < 1e-12);
        // The day's total return survives the gap.
        assert!((panel.window_return(0, 0, 2) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn multi_interval_gap_carries_across() {
        // Two consecutive bad prices (one NaN, one zero) still resolve to
        // the true ratio once a valid print returns.
        let grid = PriceGrid::from_series(vec![vec![50.0, f64::NAN, 0.0, 55.0, 56.0]], 30);
        let panel = ReturnsPanel::from_grid(&grid);
        assert_eq!(panel.series(0)[0], 0.0);
        assert_eq!(panel.series(0)[1], 0.0);
        assert!((panel.series(0)[2] - (55.0f64 / 50.0).ln()).abs() < 1e-12);
        assert!((panel.series(0)[3] - (56.0f64 / 55.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn leading_bad_prices_yield_zero_until_first_print() {
        // No pre-gap anchor exists: returns stay zero until two valid
        // prices have been seen.
        let grid = PriceGrid::from_series(vec![vec![f64::NAN, 100.0, 103.0]], 30);
        let panel = ReturnsPanel::from_grid(&grid);
        assert_eq!(panel.series(0)[0], 0.0);
        assert!((panel.series(0)[1] - (103.0f64 / 100.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn flat_prices_yield_zero_returns() {
        let grid = PriceGrid::from_series(vec![vec![50.0; 10]], 30);
        let panel = ReturnsPanel::from_grid(&grid);
        assert!(panel.series(0).iter().all(|&r| r == 0.0));
    }

    #[test]
    fn window_return_compounds() {
        // Prices 100 -> 110 -> 121: two +10% periods.
        let grid = PriceGrid::from_series(vec![vec![100.0, 110.0, 121.0]], 30);
        let panel = ReturnsPanel::from_grid(&grid);
        assert!((panel.window_return(0, 0, 2) - 0.21).abs() < 1e-12);
        assert!((panel.window_return(0, 1, 2) - 0.10).abs() < 1e-12);
        assert_eq!(panel.window_return(0, 2, 2), 0.0);
    }

    #[test]
    fn window_return_clamps_bounds() {
        let grid = PriceGrid::from_series(vec![vec![100.0, 110.0]], 30);
        let panel = ReturnsPanel::from_grid(&grid);
        // Out-of-range indices are clamped rather than panicking.
        assert!((panel.window_return(0, 0, 99) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn panel_is_rectangular() {
        let grid = PriceGrid::from_series(vec![vec![10.0, 11.0, 12.0], vec![20.0, 19.0, 21.0]], 30);
        let panel = ReturnsPanel::from_grid(&grid);
        assert_eq!(panel.n_stocks(), 2);
        assert_eq!(panel.all().len(), 2);
        assert!(panel.all().iter().all(|s| s.len() == 2));
    }
}
