//! OHLC bar accumulation — the "OHLC Bar Accumulator (Δs)" component of
//! Figure 1.
//!
//! Streams midpoints in, emits one bar per Δs interval out. Quiet
//! intervals emit carry-forward bars (O=H=L=C=previous close, zero ticks)
//! so downstream consumers always see a dense grid.

/// One OHLC bar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bar {
    /// Interval index within the day.
    pub interval: usize,
    /// First price in the interval.
    pub open: f64,
    /// Highest price in the interval.
    pub high: f64,
    /// Lowest price in the interval.
    pub low: f64,
    /// Last price in the interval.
    pub close: f64,
    /// Number of ticks aggregated.
    pub ticks: u32,
}

impl Bar {
    fn carry(interval: usize, price: f64) -> Bar {
        Bar {
            interval,
            open: price,
            high: price,
            low: price,
            close: price,
            ticks: 0,
        }
    }
}

/// Streaming OHLC accumulator for one instrument.
#[derive(Debug, Clone)]
pub struct BarAccumulator {
    dt_seconds: u32,
    current: Option<Bar>,
    last_close: Option<f64>,
}

impl BarAccumulator {
    /// Accumulator with interval width Δs.
    ///
    /// # Panics
    /// Panics if `dt_seconds` is 0.
    pub fn new(dt_seconds: u32) -> Self {
        assert!(dt_seconds > 0);
        BarAccumulator {
            dt_seconds,
            current: None,
            last_close: None,
        }
    }

    /// Push a tick at `second` (since open) with the given price. Returns
    /// the bars completed by this tick: zero or more carry bars for skipped
    /// intervals followed by the closed bar, in order.
    ///
    /// Ticks must arrive in non-decreasing time order.
    pub fn push(&mut self, second: u32, price: f64) -> Vec<Bar> {
        let interval = (second / self.dt_seconds) as usize;
        let mut completed = Vec::new();
        match &mut self.current {
            None => {
                self.current = Some(Bar {
                    interval,
                    open: price,
                    high: price,
                    low: price,
                    close: price,
                    ticks: 1,
                });
            }
            Some(bar) if bar.interval == interval => {
                bar.high = bar.high.max(price);
                bar.low = bar.low.min(price);
                bar.close = price;
                bar.ticks += 1;
            }
            Some(bar) => {
                assert!(
                    interval > bar.interval,
                    "ticks must arrive in time order (interval {} after {})",
                    interval,
                    bar.interval
                );
                let closed = *bar;
                completed.push(closed);
                self.last_close = Some(closed.close);
                // Carry bars for fully quiet intervals in between.
                for quiet in (closed.interval + 1)..interval {
                    completed.push(Bar::carry(quiet, closed.close));
                }
                self.current = Some(Bar {
                    interval,
                    open: price,
                    high: price,
                    low: price,
                    close: price,
                    ticks: 1,
                });
            }
        }
        completed
    }

    /// Close out the in-progress bar (end of day).
    pub fn flush(&mut self) -> Option<Bar> {
        let bar = self.current.take();
        if let Some(b) = bar {
            self.last_close = Some(b.close);
        }
        bar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_ohlc_within_interval() {
        let mut acc = BarAccumulator::new(30);
        assert!(acc.push(0, 10.0).is_empty());
        assert!(acc.push(10, 12.0).is_empty());
        assert!(acc.push(20, 9.0).is_empty());
        assert!(acc.push(29, 11.0).is_empty());
        let bars = acc.push(30, 20.0);
        assert_eq!(bars.len(), 1);
        let b = bars[0];
        assert_eq!(
            (b.interval, b.open, b.high, b.low, b.close, b.ticks),
            (0, 10.0, 12.0, 9.0, 11.0, 4)
        );
    }

    #[test]
    fn quiet_intervals_emit_carry_bars() {
        let mut acc = BarAccumulator::new(30);
        acc.push(0, 10.0);
        // Next tick three intervals later.
        let bars = acc.push(95, 11.0);
        assert_eq!(bars.len(), 3);
        assert_eq!(bars[0].interval, 0);
        assert_eq!(bars[1], Bar::carry(1, 10.0));
        assert_eq!(bars[2], Bar::carry(2, 10.0));
        assert_eq!(bars[1].ticks, 0);
    }

    #[test]
    fn flush_closes_final_bar() {
        let mut acc = BarAccumulator::new(30);
        acc.push(5, 7.0);
        let b = acc.flush().unwrap();
        assert_eq!(b.close, 7.0);
        assert!(acc.flush().is_none());
    }

    #[test]
    #[should_panic]
    fn out_of_order_ticks_rejected() {
        let mut acc = BarAccumulator::new(30);
        acc.push(60, 1.0);
        acc.push(0, 1.0);
    }
}
