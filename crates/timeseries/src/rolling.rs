//! Rolling extrema and combined rolling statistics.
//!
//! The retracement rule needs the high, low and average of the pair spread
//! over the trailing `RT` intervals, updated every interval. The min/max
//! use the classic monotonic-deque algorithm: amortised O(1) per step
//! instead of O(RT) rescans.

use std::collections::VecDeque;

/// Rolling maximum over a fixed window (amortised O(1) per push).
#[derive(Debug, Clone)]
pub struct RollingMax {
    window: usize,
    /// (sequence index, value), values strictly decreasing front→back.
    deque: VecDeque<(u64, f64)>,
    next_idx: u64,
}

impl RollingMax {
    /// Rolling max over the last `window` observations.
    ///
    /// # Panics
    /// Panics if `window` is 0.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        RollingMax {
            window,
            deque: VecDeque::new(),
            next_idx: 0,
        }
    }

    /// Push an observation and return the current windowed maximum.
    pub fn push(&mut self, v: f64) -> f64 {
        let idx = self.next_idx;
        self.next_idx += 1;
        while matches!(self.deque.back(), Some(&(_, back)) if back <= v) {
            self.deque.pop_back();
        }
        self.deque.push_back((idx, v));
        let cutoff = idx + 1 - self.window.min(idx as usize + 1) as u64;
        while matches!(self.deque.front(), Some(&(i, _)) if i < cutoff) {
            self.deque.pop_front();
        }
        self.deque.front().expect("deque never empty after push").1
    }

    /// Current maximum without pushing (None before the first push).
    pub fn current(&self) -> Option<f64> {
        self.deque.front().map(|&(_, v)| v)
    }
}

/// Rolling minimum over a fixed window (mirror of [`RollingMax`]).
#[derive(Debug, Clone)]
pub struct RollingMin {
    inner: RollingMax,
}

impl RollingMin {
    /// Rolling min over the last `window` observations.
    pub fn new(window: usize) -> Self {
        RollingMin {
            inner: RollingMax::new(window),
        }
    }

    /// Push an observation and return the current windowed minimum.
    pub fn push(&mut self, v: f64) -> f64 {
        -self.inner.push(-v)
    }

    /// Current minimum without pushing.
    pub fn current(&self) -> Option<f64> {
        self.inner.current().map(|v| -v)
    }
}

/// Combined rolling low / high / mean over a fixed window — exactly the
/// `(Sl, Sh, S̄)` triple of the strategy's retracement computation.
#[derive(Debug, Clone)]
pub struct RollingRange {
    min: RollingMin,
    max: RollingMax,
    window: crate::window::SlidingWindow<f64>,
    sum: f64,
}

/// A snapshot of rolling range statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeStats {
    /// Window low (`Sl`).
    pub low: f64,
    /// Window high (`Sh`).
    pub high: f64,
    /// Window mean (`S̄`).
    pub mean: f64,
    /// Observations currently in the window.
    pub len: usize,
}

impl RollingRange {
    /// Rolling range over the last `window` observations.
    pub fn new(window: usize) -> Self {
        RollingRange {
            min: RollingMin::new(window),
            max: RollingMax::new(window),
            window: crate::window::SlidingWindow::new(window),
            sum: 0.0,
        }
    }

    /// Push an observation and return the updated stats.
    pub fn push(&mut self, v: f64) -> RangeStats {
        let low = self.min.push(v);
        let high = self.max.push(v);
        if let Some(evicted) = self.window.push(v) {
            self.sum -= evicted;
        }
        self.sum += v;
        RangeStats {
            low,
            high,
            mean: self.sum / self.window.len() as f64,
            len: self.window.len(),
        }
    }

    /// Current stats without pushing (None before the first push).
    pub fn current(&self) -> Option<RangeStats> {
        if self.window.is_empty() {
            return None;
        }
        Some(RangeStats {
            low: self.min.current()?,
            high: self.max.current()?,
            mean: self.sum / self.window.len() as f64,
            len: self.window.len(),
        })
    }
}

// Durable-checkpoint codecs. The monotonic deque and its sequence counter
// are encoded verbatim: the deque's contents depend on the whole
// observation history, not just the retained window, so reconstruction
// from values alone is impossible.
impl wire::Codec for RollingMax {
    fn encode(&self, w: &mut wire::Writer) {
        self.window.encode(w);
        self.deque.encode(w);
        self.next_idx.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        let window = usize::decode(r)?;
        let deque = std::collections::VecDeque::<(u64, f64)>::decode(r)?;
        let next_idx = u64::decode(r)?;
        if window == 0 || deque.len() > window || deque.iter().any(|&(i, _)| i >= next_idx) {
            return Err(wire::WireError::Invalid("rolling max geometry"));
        }
        Ok(RollingMax {
            window,
            deque,
            next_idx,
        })
    }
}

impl wire::Codec for RollingMin {
    fn encode(&self, w: &mut wire::Writer) {
        wire::Codec::encode(&self.inner, w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(RollingMin {
            inner: wire::Codec::decode(r)?,
        })
    }
}

impl wire::Codec for RollingRange {
    fn encode(&self, w: &mut wire::Writer) {
        self.min.encode(w);
        self.max.encode(w);
        self.window.encode(w);
        // The running sum is eviction-history dependent; verbatim.
        self.sum.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(RollingRange {
            min: RollingMin::decode(r)?,
            max: RollingMax::decode(r)?,
            window: crate::window::SlidingWindow::decode(r)?,
            sum: f64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_max_matches_naive() {
        let xs: Vec<f64> = (0..200)
            .map(|i| (((i * 37 + 11) % 101) as f64) - 50.0)
            .collect();
        let w = 7;
        let mut rm = RollingMax::new(w);
        for (k, &x) in xs.iter().enumerate() {
            let got = rm.push(x);
            let lo = k.saturating_sub(w - 1);
            let want = xs[lo..=k].iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(got, want, "step {k}");
        }
    }

    #[test]
    fn rolling_min_matches_naive() {
        let xs: Vec<f64> = (0..200)
            .map(|i| (((i * 53 + 5) % 97) as f64) * 0.3)
            .collect();
        let w = 13;
        let mut rm = RollingMin::new(w);
        for (k, &x) in xs.iter().enumerate() {
            let got = rm.push(x);
            let lo = k.saturating_sub(w - 1);
            let want = xs[lo..=k].iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(got, want, "step {k}");
        }
    }

    #[test]
    fn range_stats_track_all_three() {
        let mut rr = RollingRange::new(3);
        assert!(rr.current().is_none());
        let s = rr.push(5.0);
        assert_eq!((s.low, s.high, s.mean, s.len), (5.0, 5.0, 5.0, 1));
        rr.push(1.0);
        let s = rr.push(3.0);
        assert_eq!((s.low, s.high, s.len), (1.0, 5.0, 3));
        assert!((s.mean - 3.0).abs() < 1e-12);
        // Evicts 5.0.
        let s = rr.push(2.0);
        assert_eq!((s.low, s.high), (1.0, 3.0));
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(rr.current().unwrap(), s);
    }

    #[test]
    fn ties_are_kept_long_enough() {
        let mut rm = RollingMax::new(2);
        rm.push(4.0);
        rm.push(4.0);
        // Both 4.0s in window; evicting one must keep the other.
        assert_eq!(rm.push(1.0), 4.0);
        assert_eq!(rm.push(1.0), 1.0);
    }
}
