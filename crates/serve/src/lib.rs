//! Session-multiplexed serving layer for the MarketMiner sweep DAG.
//!
//! Concurrent clients connect over the shard transport's framing (Unix
//! sockets or TCP), authenticate a session, and subscribe to live feeds
//! off a running [`marketminer::live::LiveSweepSession`]: correlation
//! snapshots (full matrices or top-K-conflated, filtered by `(Ctype, M)`
//! stream), order baskets and trade reports per strategy, symbol health,
//! and the `explain` lineage query. Clients can also **reconfigure the
//! running graph** — attach and detach strategy hosts mid-day — through
//! the same protocol.
//!
//! The two load-bearing properties, both verified in `tests/serve.rs`:
//!
//! * **Backpressure isolation.** Every session owns a bounded egress
//!   ring ([`ring::EgressRing`]) with a deterministic drop-oldest,
//!   counted loss policy. The epoch loop never blocks on a client, so a
//!   stalled subscriber accrues *its own* drop count and nothing else —
//!   the DAG's output stays bit-identical to a serverless run.
//! * **Reconfiguration determinism.** Attach/detach ride the runtime's
//!   epoch-quiescent capture/restore cut (see [`marketminer::live`]):
//!   untouched hosts re-enter the rebuilt graph with bit-identical
//!   state, so their trades match a never-reconfigured run exactly.

pub mod client;
pub mod protocol;
pub mod ring;
pub mod router;
pub mod server;
pub mod session;

pub use client::Client;
pub use protocol::{ClientFrame, ServerFrame, SubscriptionSpec, TopPair, PROTOCOL_VERSION};
pub use ring::{EgressRing, Popped};
pub use router::{PublishStats, Router};
pub use server::{ServeReport, Server, ServerConfig, SessionStats};
pub use session::{Session, SessionRegistry};
