//! The serving loop: a [`LiveSweepSession`] driven in epochs with every
//! cut fanned out to subscribed sessions, plus the connection plumbing
//! around it.
//!
//! ## Thread model
//!
//! * **Epoch loop** (the caller's thread, [`Server::serve_day`]): feeds
//!   quotes, drains each quiescent cut, publishes it through the
//!   [`Router`], applies queued reconfiguration/lineage requests, and
//!   reaps heartbeat-stale sessions. This is the only thread touching
//!   the DAG — and nothing it calls can block on a client
//!   ([`EgressRing::push`] is eviction-based), so a stalled subscriber
//!   cannot park the DAG by construction.
//! * **Accept thread**: hands fresh connections a **reader thread**.
//! * **Reader threads** (one per connection): authenticate `Hello`,
//!   register the session, then translate client frames — subscription
//!   management is applied directly (the router is thread-safe);
//!   attach/detach/explain are queued to the epoch loop, which answers
//!   at the next cut.
//! * **Writer threads** (one per session): drain the session's egress
//!   ring onto the socket. A stalled socket blocks only this thread;
//!   loss is attributed by the ring (`dropped_before`) when the client
//!   catches up.
//!
//! [`EgressRing::push`]: crate::ring::EgressRing::push

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use marketminer::live::{LiveOutput, LiveSweepSession};
use marketminer::messages::{Message, TradeReport};
use marketminer::pipeline::SweepConfig;
use marketminer::runtime::RuntimeConfig;
use marketminer::shard::{Endpoint, FramedConn, Listener};
use pairtrade_core::spec::StrategySpec;
use taq::dataset::DayData;
use telemetry::explain::Lineage;
use telemetry::lineage::{Cause, EventId};
use telemetry::metrics::MetricsSnapshot;
use telemetry::recorder::FlightKind;
use telemetry::trace::TrackId;
use telemetry::{Caps, Telemetry, TelemetryLevel, TelemetryReport};

use crate::protocol::{ClientFrame, ServerFrame, PROTOCOL_VERSION};
use crate::ring::Popped;
use crate::router::Router;
use crate::session::{Session, SessionRegistry};

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen (`Endpoint::parse` accepts `tcp:host:port` or a
    /// Unix socket path; TCP port 0 resolves at bind).
    pub endpoint: Endpoint,
    /// Shared-secret auth token `Hello` must present.
    pub token: String,
    /// Per-session egress ring bound (queued feed frames).
    pub egress_cap: usize,
    /// Reap sessions silent for longer than this; 0 disables the reaper.
    pub heartbeat_ttl_us: u64,
    /// Quotes fed per epoch cut.
    pub epoch_quotes: usize,
    /// Hold the first epoch until this many subscriptions exist (load
    /// generators connect while the server spins up), bounded by
    /// [`ServerConfig::start_wait`].
    pub start_subscriptions: usize,
    /// Longest to wait for `start_subscriptions`.
    pub start_wait: Duration,
    /// Serving-layer telemetry level (independent of the DAG's).
    pub telemetry: TelemetryLevel,
}

impl ServerConfig {
    /// Defaults on the given endpoint: token `"open"`, 256-frame rings,
    /// 5 s heartbeat TTL, 2000-quote epochs, no start gate.
    pub fn new(endpoint: Endpoint) -> ServerConfig {
        ServerConfig {
            endpoint,
            token: "open".into(),
            egress_cap: 256,
            heartbeat_ttl_us: 5_000_000,
            epoch_quotes: 2_000,
            start_subscriptions: 0,
            start_wait: Duration::from_secs(10),
            telemetry: TelemetryLevel::Counters,
        }
    }
}

/// Per-session lifetime accounting, kept past the session's death.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// The session id.
    pub id: u64,
    /// Client name from `Hello`.
    pub client: String,
    /// Feed frames pushed to this session's ring.
    pub pushed: u64,
    /// Feed frames the ring evicted (all attributed to this session).
    pub dropped: u64,
}

/// What a served day produced.
#[derive(Debug)]
pub struct ServeReport {
    /// The DAG's output — bit-identical to a serverless
    /// `LiveSweepSession` run over the same quotes and reconfigurations.
    pub output: LiveOutput,
    /// Per-session egress accounting, ascending by id.
    pub sessions: Vec<SessionStats>,
    /// Frames published across all rings.
    pub published: u64,
    /// Ring evictions across all rings.
    pub evictions: u64,
    /// Sessions torn down by the heartbeat reaper.
    pub reaped: u64,
    /// Epoch cuts fed.
    pub epochs: u64,
    /// Serving-layer telemetry (`None` when `cfg.telemetry` is `Off`).
    pub telemetry: Option<TelemetryReport>,
}

/// Requests readers queue for the epoch loop (everything that must touch
/// the live DAG or the lineage accumulator).
enum Request {
    Attach { session_id: u64, spec: StrategySpec },
    Detach { session_id: u64, param_set: usize },
    Explain { session_id: u64, id: u64 },
    ListOutcomes { session_id: u64 },
    GetMetrics { session_id: u64 },
}

/// State shared by every thread.
struct Shared {
    registry: SessionRegistry,
    router: Router,
    tel: Arc<Telemetry>,
    token: String,
    egress_cap: usize,
    /// Final per-session stats, written when a session dies and at end
    /// of day for the survivors.
    ledger: Mutex<HashMap<u64, SessionStats>>,
    stop: AtomicBool,
}

impl Shared {
    /// Record (or refresh) a session's ledger entry.
    fn account(&self, session: &Session) {
        let (pushed, dropped) = session.ring.stats();
        self.ledger.lock().expect("ledger").insert(
            session.id,
            SessionStats {
                id: session.id,
                client: session.client.clone(),
                pushed,
                dropped,
            },
        );
    }

    /// Tear a session down from any thread: ledger, ring, router.
    fn teardown(&self, session: &Arc<Session>) {
        self.account(session);
        self.registry.close(session.id);
        self.router.drop_session(session.id);
    }
}

/// A bound serving endpoint, ready to run a day.
pub struct Server {
    cfg: ServerConfig,
    listener: Listener,
    endpoint: Endpoint,
}

impl Server {
    /// Bind the configured endpoint (resolving TCP port 0).
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        if let Endpoint::Unix(path) = &cfg.endpoint {
            let _ = std::fs::remove_file(path);
        }
        let listener = Listener::bind(&cfg.endpoint)?;
        let endpoint = listener.local_endpoint(&cfg.endpoint);
        Ok(Server {
            cfg,
            listener,
            endpoint,
        })
    }

    /// The resolved endpoint clients should connect to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Serve one trading day: run the sweep DAG over `day`'s quotes at
    /// `rt`, fanning every epoch cut out to subscribers, then deliver
    /// the end-of-day flush and close every session.
    pub fn serve_day(
        self,
        day: DayData,
        sweep: SweepConfig,
        rt: RuntimeConfig,
    ) -> io::Result<ServeReport> {
        let tel = Telemetry::build(
            self.cfg.telemetry,
            Caps::from_env().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?,
        );
        let shared = Arc::new(Shared {
            registry: SessionRegistry::new(),
            router: Router::new(),
            tel: Arc::clone(&tel),
            token: self.cfg.token.clone(),
            egress_cap: self.cfg.egress_cap,
            ledger: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
        });
        let (tx, rx) = mpsc::channel::<Request>();

        let accept = {
            let shared = Arc::clone(&shared);
            let listener = self.listener;
            let tx = tx.clone();
            std::thread::spawn(move || accept_loop(listener, shared, tx))
        };

        let mut live = LiveSweepSession::new(sweep, rt)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let mut lineage = Lineage::default();
        lineage.set_nodes(live.node_names());

        // Hold the first epoch for the start gate, if any.
        let deadline = std::time::Instant::now() + self.cfg.start_wait;
        while shared.router.len() < self.cfg.start_subscriptions
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }

        let probe = tel.probe("serve", TrackId::node(0));
        let mut published = 0u64;
        let mut evictions = 0u64;
        let mut reaped = 0u64;
        let mut drops_seen: HashMap<u64, u64> = HashMap::new();
        let quotes = day.quotes();
        for chunk in quotes.chunks(self.cfg.epoch_quotes.max(1)) {
            let cut = live.feed_epoch(chunk);
            lineage.extend(&cut.lineage);
            let epoch = cut.epoch;
            let stats = shared.router.publish(&cut, &live.stream_keys());
            published += stats.published;
            evictions += stats.evictions;
            probe.count("egress.pushed", stats.published);
            probe.count("egress.dropped", stats.evictions);
            for session in shared.registry.all() {
                probe.observe("egress.depth", session.ring.depth() as u64);
                let (_, dropped) = session.ring.stats();
                let seen = drops_seen.entry(session.id).or_insert(0);
                if dropped > *seen {
                    let new = dropped - *seen;
                    *seen = dropped;
                    tel.flight(
                        FlightKind::Drop,
                        format!("session{}", session.id),
                        Some(epoch),
                        format!("egress ring evicted {new} frames (total {dropped})"),
                    );
                }
                shared.account(&session);
            }
            handle_requests(&rx, &shared, &mut live, &mut lineage, reaped, epoch);
            if self.cfg.heartbeat_ttl_us > 0 {
                for session in shared
                    .registry
                    .reap_stale(tel.now_us(), self.cfg.heartbeat_ttl_us)
                {
                    shared.account(&session);
                    shared.router.drop_session(session.id);
                    reaped += 1;
                    tel.flight(
                        FlightKind::Sever,
                        format!("session{}", session.id),
                        Some(epoch),
                        format!("heartbeat stale; client {:?} reaped", session.client),
                    );
                }
            }
            if shared.router.wants_metrics() {
                let snap = metrics_snapshot(&shared, &live, reaped);
                let stats = shared.router.publish_metrics(epoch, &snap);
                published += stats.published;
                evictions += stats.evictions;
                probe.count("egress.pushed", stats.published);
                probe.count("egress.dropped", stats.evictions);
            }
        }
        // One last look at queued requests before the day closes.
        let last_epoch = live.epochs();
        handle_requests(&rx, &shared, &mut live, &mut lineage, reaped, last_epoch);

        let epochs = live.epochs();
        let specs: Vec<StrategySpec> = live.specs().to_vec();
        let output = live.finish();
        lineage.set_nodes(output.node_names.clone());
        lineage.extend(&output.lineage);

        // End-of-day flush: the aggregated per-param trade reports are
        // the only new information (baskets and health events already
        // streamed live at their epoch cuts), then every session gets
        // `End` — through the feed lane, so it orders after the last
        // deliveries instead of jumping the control queue.
        let final_cut = final_cut(&output, &specs, epochs);
        let stats = shared.router.publish(&final_cut, &[]);
        published += stats.published;
        evictions += stats.evictions;
        for session in shared.registry.all() {
            if session.ring.push(ServerFrame::End) {
                evictions += 1;
            }
            published += 1;
            shared.account(&session);
        }
        shared.registry.close_all();
        shared.stop.store(true, Ordering::Release);
        let _ = self.endpoint.connect(); // wake the accept loop
        let _ = accept.join();

        let mut sessions: Vec<SessionStats> = shared
            .ledger
            .lock()
            .expect("ledger")
            .values()
            .cloned()
            .collect();
        sessions.sort_by_key(|s| s.id);
        let telemetry = tel.level().enabled().then(|| tel.finish());
        Ok(ServeReport {
            output,
            sessions,
            published,
            evictions,
            reaped,
            epochs,
            telemetry,
        })
    }
}

/// Build the synthetic end-of-day cut: the aggregated per-param trade
/// reports. Baskets and health events are *not* repeated here — they
/// already went out live at their epoch cuts.
fn final_cut(
    output: &LiveOutput,
    specs: &[StrategySpec],
    epoch: u64,
) -> marketminer::live::LiveEpoch {
    let mut messages: Vec<Message> = Vec::new();
    for (param_set, trades) in output.trades_per_param.iter().enumerate() {
        if !trades.is_empty() {
            messages.push(Message::Trades(Arc::new(TradeReport {
                param_set,
                strategy: specs[param_set].kind(),
                trades: trades.clone(),
                cause: Cause::none(),
            })));
        }
    }
    marketminer::live::LiveEpoch {
        epoch,
        messages,
        snapshots: Vec::new(),
        lineage: Vec::new(),
    }
}

/// Apply every queued DAG/lineage request at the current epoch cut.
fn handle_requests(
    rx: &mpsc::Receiver<Request>,
    shared: &Shared,
    live: &mut LiveSweepSession,
    lineage: &mut Lineage,
    reaped: u64,
    epoch: u64,
) {
    while let Ok(req) = rx.try_recv() {
        match req {
            Request::Attach { session_id, spec } => {
                let reply = match live.attach(spec) {
                    Ok(param_set) => {
                        lineage.set_nodes(live.node_names());
                        ServerFrame::Attached {
                            param_set: param_set as u64,
                        }
                    }
                    Err(e) => ServerFrame::Error {
                        reason: e.to_string(),
                    },
                };
                reply_control(shared, session_id, reply);
            }
            Request::Detach {
                session_id,
                param_set,
            } => {
                let reply = match live.detach(param_set) {
                    Ok(()) => {
                        lineage.set_nodes(live.node_names());
                        ServerFrame::Detached {
                            param_set: param_set as u64,
                        }
                    }
                    Err(e) => ServerFrame::Error {
                        reason: e.to_string(),
                    },
                };
                reply_control(shared, session_id, reply);
            }
            Request::Explain { session_id, id } => {
                let target = if id == 0 {
                    lineage.default_target()
                } else {
                    Some(EventId(id))
                };
                let reply = match target.and_then(|t| lineage.explanation(t)) {
                    Some(explanation) => ServerFrame::Explained {
                        found: true,
                        text: explanation.render(),
                    },
                    None => ServerFrame::Explained {
                        found: false,
                        text: "event not in the lineage capture (is the DAG at \
                               TelemetryLevel::Full?)"
                            .into(),
                    },
                };
                reply_control(shared, session_id, reply);
            }
            Request::ListOutcomes { session_id } => {
                reply_control(
                    shared,
                    session_id,
                    ServerFrame::Outcomes {
                        text: lineage.render_list(),
                    },
                );
            }
            Request::GetMetrics { session_id } => {
                let snap = metrics_snapshot(shared, live, reaped);
                reply_control(
                    shared,
                    session_id,
                    ServerFrame::MetricsText {
                        epoch,
                        text: snap.render_prometheus(),
                    },
                );
            }
        }
    }
}

/// One combined registry view for the exposition and the live-metrics
/// feed: the serving layer's own counters, the DAG incarnation's
/// registry, per-session egress-ring accounting (pushed + attributed
/// drops, dead sessions included via the ledger), the lineage-ring drop
/// count, and the reaper total.
fn metrics_snapshot(shared: &Shared, live: &LiveSweepSession, reaped: u64) -> MetricsSnapshot {
    let mut snap = shared.tel.registry.snapshot();
    if let Some(dag) = live.telemetry() {
        snap.merge(&dag.registry.snapshot());
        snap.counters.insert(
            ("lineage".into(), "ring.dropped".into()),
            dag.lineage.dropped(),
        );
    }
    for s in shared.ledger.lock().expect("ledger").values() {
        let label = format!("session{}", s.id);
        snap.counters
            .insert((label.clone(), "ring.pushed".into()), s.pushed);
        snap.counters
            .insert((label, "ring.dropped".into()), s.dropped);
    }
    for session in shared.registry.all() {
        let (pushed, dropped) = session.ring.stats();
        let label = format!("session{}", session.id);
        snap.counters
            .insert((label.clone(), "ring.pushed".into()), pushed);
        snap.counters
            .insert((label, "ring.dropped".into()), dropped);
    }
    snap.counters
        .insert(("serve".into(), "sessions.reaped".into()), reaped);
    snap
}

/// Push a control reply to a session if it is still alive.
fn reply_control(shared: &Shared, session_id: u64, frame: ServerFrame) {
    if let Some(session) = shared.registry.get(session_id) {
        session.ring.push_control(frame);
    }
}

/// Accept connections until the stop flag flips; each gets a reader.
fn accept_loop(listener: Listener, shared: Arc<Shared>, tx: mpsc::Sender<Request>) {
    while let Ok(conn) = listener.accept() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        std::thread::spawn(move || reader_loop(conn, shared, tx));
    }
}

/// Authenticate one connection, register its session, translate frames.
fn reader_loop(mut conn: FramedConn, shared: Arc<Shared>, tx: mpsc::Sender<Request>) {
    // Handshake: first frame must be a valid Hello. Denials go straight
    // out on this handle — the writer thread does not exist yet.
    let hello = match conn.recv::<ClientFrame>() {
        Ok(f) => f,
        Err(_) => return,
    };
    let (client, denial) = match hello {
        ClientFrame::Hello {
            version,
            token,
            client,
        } => {
            if version != PROTOCOL_VERSION {
                (
                    client,
                    Some(format!("protocol version {version} unsupported")),
                )
            } else if token != shared.token {
                (client, Some("bad token".into()))
            } else {
                (client, None)
            }
        }
        other => (
            String::new(),
            Some(format!("expected Hello, got {other:?}")),
        ),
    };
    if let Some(reason) = denial {
        let _ = conn.send(&ServerFrame::Denied { reason });
        let _ = client;
        return;
    }
    let session = shared
        .registry
        .open(client, shared.egress_cap, shared.tel.now_us());
    let probe = shared.tel.probe(
        format!("session{}", session.id),
        TrackId::node(session.id as usize),
    );
    probe.count("opened", 1);
    shared.account(&session);
    session.ring.push_control(ServerFrame::Welcome {
        session: session.id,
    });
    let writer = {
        let session = Arc::clone(&session);
        let shared = Arc::clone(&shared);
        match conn.try_clone() {
            Ok(out_conn) => std::thread::spawn(move || writer_loop(out_conn, session, shared)),
            Err(_) => {
                shared.teardown(&session);
                return;
            }
        }
    };

    // Disconnect or garbage ends the loop: the session dies either way.
    while let Ok(frame) = conn.recv::<ClientFrame>() {
        session.touch(shared.tel.now_us());
        match frame {
            ClientFrame::Hello { .. } => {
                session.ring.push_control(ServerFrame::Error {
                    reason: "already authenticated".into(),
                });
            }
            ClientFrame::Subscribe { spec } => {
                let sub_id = shared.router.subscribe(&session, spec);
                probe.count("subscribed", 1);
                session
                    .ring
                    .push_control(ServerFrame::Subscribed { sub_id });
            }
            ClientFrame::Unsubscribe { sub_id } => {
                let frame = if shared.router.unsubscribe(session.id, sub_id) {
                    ServerFrame::Unsubscribed { sub_id }
                } else {
                    ServerFrame::Error {
                        reason: format!("unknown subscription {sub_id}"),
                    }
                };
                session.ring.push_control(frame);
            }
            ClientFrame::Attach { spec } => {
                let _ = tx.send(Request::Attach {
                    session_id: session.id,
                    spec,
                });
            }
            ClientFrame::Detach { param_set } => {
                let _ = tx.send(Request::Detach {
                    session_id: session.id,
                    param_set,
                });
            }
            ClientFrame::Explain { id } => {
                let _ = tx.send(Request::Explain {
                    session_id: session.id,
                    id,
                });
            }
            ClientFrame::ListOutcomes => {
                let _ = tx.send(Request::ListOutcomes {
                    session_id: session.id,
                });
            }
            ClientFrame::GetMetrics => {
                let _ = tx.send(Request::GetMetrics {
                    session_id: session.id,
                });
            }
            ClientFrame::Heartbeat => {}
            ClientFrame::Bye => break,
        }
    }
    shared.teardown(&session);
    let _ = writer.join();
}

/// Drain one session's ring onto its socket. On exit — ring closed (end
/// of day or reap) or a dead socket — shut the connection down so the
/// paired reader thread unblocks and the client sees EOF.
fn writer_loop(mut conn: FramedConn, session: Arc<Session>, shared: Arc<Shared>) {
    loop {
        match session.ring.pop(Duration::from_millis(100)) {
            Popped::Item {
                mut item,
                dropped_before,
            } => {
                stamp(&mut item, dropped_before);
                if conn.send(&item).is_err() {
                    shared.teardown(&session);
                    break;
                }
            }
            Popped::Closed => break,
            Popped::TimedOut => {}
        }
    }
    let _ = conn.shutdown();
}

/// Write the ring-attributed drop count into a delivery frame.
fn stamp(frame: &mut ServerFrame, dropped: u64) {
    match frame {
        ServerFrame::Event { dropped_before, .. }
        | ServerFrame::TopK { dropped_before, .. }
        | ServerFrame::Metrics { dropped_before, .. } => {
            *dropped_before = dropped;
        }
        _ => {}
    }
}
