//! Subscription router: fans one epoch cut out to every matching
//! subscriber's egress ring.
//!
//! Fan-out is copy-on-write: a correlation snapshot or basket is the
//! *same* `Arc` the strategy hosts consumed ([`Message`] payloads are
//! `Arc`-shared), cloned by reference count into each ring — a thousand
//! subscribers cost a thousand pointer bumps, not a thousand matrix
//! copies. Publishing never blocks ([`EgressRing::push`]
//! is eviction-based), so a stalled subscriber can never park the DAG;
//! it only grows its own drop count.
//!
//! [`EgressRing::push`]: crate::ring::EgressRing::push

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use marketminer::live::LiveEpoch;
use marketminer::messages::{CorrSnapshot, Message};
use stats::correlation::CorrType;
use telemetry::metrics::MetricsSnapshot;

use crate::protocol::{ServerFrame, SubscriptionSpec, TopPair};
use crate::session::Session;

/// One live subscription.
#[derive(Debug)]
struct Subscription {
    sub_id: u64,
    session: Arc<Session>,
    spec: SubscriptionSpec,
    /// Deliveries published to this subscription so far (the `seq`
    /// stamped on each frame; evicted deliveries keep their seq, so a
    /// subscriber sees loss as both `dropped_before` and seq gaps).
    seq: u64,
    /// For [`SubscriptionSpec::Telemetry`]: the registry snapshot behind
    /// the previous delivery, so each delivery is the delta since — a
    /// fresh subscription's first delivery is the full registry (delta
    /// against the empty snapshot).
    tel_prev: MetricsSnapshot,
}

/// What one `publish` pushed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PublishStats {
    /// Frames pushed across all rings.
    pub published: u64,
    /// Ring evictions caused by those pushes.
    pub evictions: u64,
}

/// The subscription table and fan-out engine.
#[derive(Debug, Default)]
pub struct Router {
    next_sub: AtomicU64,
    subs: Mutex<Vec<Subscription>>,
}

impl Router {
    /// Empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Open a subscription for `session`; returns the `sub_id` echoed on
    /// every delivery.
    pub fn subscribe(&self, session: &Arc<Session>, spec: SubscriptionSpec) -> u64 {
        let sub_id = self.next_sub.fetch_add(1, Ordering::Relaxed);
        self.subs.lock().expect("sub table").push(Subscription {
            sub_id,
            session: Arc::clone(session),
            spec,
            seq: 0,
            tel_prev: MetricsSnapshot::default(),
        });
        sub_id
    }

    /// Close one subscription, if it belongs to `session_id`.
    pub fn unsubscribe(&self, session_id: u64, sub_id: u64) -> bool {
        let mut subs = self.subs.lock().expect("sub table");
        let before = subs.len();
        subs.retain(|s| !(s.sub_id == sub_id && s.session.id == session_id));
        subs.len() != before
    }

    /// Drop every subscription of a closed session; returns how many.
    pub fn drop_session(&self, session_id: u64) -> usize {
        let mut subs = self.subs.lock().expect("sub table");
        let before = subs.len();
        subs.retain(|s| s.session.id != session_id);
        before - subs.len()
    }

    /// Live subscription count.
    pub fn len(&self) -> usize {
        self.subs.lock().expect("sub table").len()
    }

    /// True when nothing is subscribed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fan one epoch cut out to every matching ring. `stream_keys[j]` is
    /// the `(Ctype, M)` key snapshots with `stream == j` carry in the
    /// current graph incarnation (re-derived after each reconfiguration).
    pub fn publish(&self, cut: &LiveEpoch, stream_keys: &[(CorrType, usize)]) -> PublishStats {
        let mut stats = PublishStats::default();
        let mut subs = self.subs.lock().expect("sub table");
        for sub in subs.iter_mut() {
            match sub.spec.clone() {
                SubscriptionSpec::Corr {
                    ctype,
                    window,
                    top_k,
                } => {
                    for snap in &cut.snapshots {
                        let Some(key) = stream_keys.get(snap.stream) else {
                            continue;
                        };
                        if key != &(ctype, window) {
                            continue;
                        }
                        let frame = match top_k {
                            Some(k) => ServerFrame::TopK {
                                sub_id: sub.sub_id,
                                seq: sub.seq,
                                dropped_before: 0,
                                interval: snap.interval as u64,
                                pairs: top_pairs(snap, k),
                            },
                            None => ServerFrame::Event {
                                sub_id: sub.sub_id,
                                seq: sub.seq,
                                dropped_before: 0,
                                payload: Message::Corr(Arc::clone(snap)),
                            },
                        };
                        push(&mut stats, sub, frame);
                    }
                }
                SubscriptionSpec::Trades { param_set } => {
                    for msg in &cut.messages {
                        let wanted = match msg {
                            Message::Basket(b) => match param_set {
                                Some(k) => b.orders.iter().any(|o| o.param_set == k),
                                None => true,
                            },
                            Message::Trades(t) => param_set.is_none_or(|k| t.param_set == k),
                            _ => false,
                        };
                        if wanted {
                            let frame = ServerFrame::Event {
                                sub_id: sub.sub_id,
                                seq: sub.seq,
                                dropped_before: 0,
                                payload: msg.clone(),
                            };
                            push(&mut stats, sub, frame);
                        }
                    }
                }
                SubscriptionSpec::Health => {
                    for msg in &cut.messages {
                        if matches!(msg, Message::Health(_)) {
                            let frame = ServerFrame::Event {
                                sub_id: sub.sub_id,
                                seq: sub.seq,
                                dropped_before: 0,
                                payload: msg.clone(),
                            };
                            push(&mut stats, sub, frame);
                        }
                    }
                }
                // Metrics ride their own publish path (`publish_metrics`)
                // so the registry is snapshotted once per cut, not per
                // subscriber.
                SubscriptionSpec::Telemetry { .. } => {}
            }
        }
        stats
    }

    /// True when at least one live-metrics subscription exists — lets the
    /// epoch loop skip building a registry snapshot nobody wants.
    pub fn wants_metrics(&self) -> bool {
        self.subs
            .lock()
            .expect("sub table")
            .iter()
            .any(|s| matches!(s.spec, SubscriptionSpec::Telemetry { .. }))
    }

    /// Fan one epoch cut's registry snapshot out to every due
    /// [`SubscriptionSpec::Telemetry`] subscription, delta-encoded per
    /// subscriber. An empty delta is still delivered (the cadence is part
    /// of the contract: one frame per due cut, simulated-time-stamped),
    /// and an evicted delta surfaces as `dropped_before` like any other
    /// feed frame — a stalled metrics subscriber only grows its own drop
    /// count, never parks the DAG.
    pub fn publish_metrics(&self, epoch: u64, snap: &MetricsSnapshot) -> PublishStats {
        let mut stats = PublishStats::default();
        let mut subs = self.subs.lock().expect("sub table");
        for sub in subs.iter_mut() {
            let SubscriptionSpec::Telemetry { every } = sub.spec else {
                continue;
            };
            if !epoch.is_multiple_of(every.max(1)) {
                continue;
            }
            let delta = snap.delta_since(&sub.tel_prev);
            sub.tel_prev = snap.clone();
            let frame = ServerFrame::Metrics {
                sub_id: sub.sub_id,
                seq: sub.seq,
                dropped_before: 0,
                epoch,
                delta,
            };
            push(&mut stats, sub, frame);
        }
        stats
    }
}

/// Stamp, push, count.
fn push(stats: &mut PublishStats, sub: &mut Subscription, frame: ServerFrame) {
    sub.seq += 1;
    stats.published += 1;
    if sub.session.ring.push(frame) {
        stats.evictions += 1;
    }
}

/// The `k` strongest pairs of a snapshot by |ρ|, strongest first; ties
/// break on `(i, j)` so the conflation is deterministic.
pub fn top_pairs(snap: &CorrSnapshot, k: usize) -> Vec<TopPair> {
    let n = snap.matrix.n();
    let mut pairs: Vec<TopPair> = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for i in 1..n {
        for j in 0..i {
            pairs.push(TopPair {
                i: i as u32,
                j: j as u32,
                rho: snap.matrix.get(i, j),
            });
        }
    }
    pairs.sort_by(|a, b| {
        b.rho
            .abs()
            .partial_cmp(&a.rho.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.i, a.j).cmp(&(b.i, b.j)))
    });
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Popped;
    use crate::session::SessionRegistry;
    use std::time::Duration;
    use telemetry::lineage::Cause;

    fn snapshot(stream: usize, interval: usize) -> Arc<CorrSnapshot> {
        let mut m = stats::matrix::SymMatrix::identity(3);
        m.set(1, 0, 0.5);
        m.set(2, 0, -0.9);
        m.set(2, 1, 0.7);
        Arc::new(CorrSnapshot {
            interval,
            stream,
            matrix: m,
            cause: Cause::none(),
        })
    }

    fn cut_with(snapshots: Vec<Arc<CorrSnapshot>>, messages: Vec<Message>) -> LiveEpoch {
        LiveEpoch {
            epoch: 0,
            messages,
            snapshots,
            lineage: Vec::new(),
        }
    }

    fn drain(session: &Session) -> Vec<ServerFrame> {
        let mut out = Vec::new();
        while let Popped::Item { item, .. } = session.ring.pop(Duration::ZERO) {
            out.push(item);
        }
        out
    }

    #[test]
    fn corr_subscriptions_filter_by_stream_key() {
        let reg = SessionRegistry::new();
        let router = Router::new();
        let pearson = reg.open("p".into(), 16, 0);
        let quadrant = reg.open("q".into(), 16, 0);
        let keys = [(CorrType::Pearson, 20), (CorrType::Quadrant, 20)];
        router.subscribe(
            &pearson,
            SubscriptionSpec::Corr {
                ctype: CorrType::Pearson,
                window: 20,
                top_k: None,
            },
        );
        router.subscribe(
            &quadrant,
            SubscriptionSpec::Corr {
                ctype: CorrType::Quadrant,
                window: 20,
                top_k: Some(2),
            },
        );
        let cut = cut_with(vec![snapshot(0, 7), snapshot(1, 7)], Vec::new());
        let stats = router.publish(&cut, &keys);
        assert_eq!(stats.published, 2);
        assert_eq!(stats.evictions, 0);

        let got = drain(&pearson);
        assert_eq!(got.len(), 1);
        match &got[0] {
            ServerFrame::Event {
                seq,
                payload: Message::Corr(s),
                ..
            } => {
                assert_eq!(*seq, 0);
                assert_eq!(s.stream, 0, "pearson sub got the pearson stream");
            }
            other => panic!("unexpected {other:?}"),
        }
        let got = drain(&quadrant);
        match &got[0] {
            ServerFrame::TopK {
                interval, pairs, ..
            } => {
                assert_eq!(*interval, 7);
                // |−0.9| > |0.7|; k=2 keeps exactly the two strongest.
                assert_eq!(pairs.len(), 2);
                assert_eq!((pairs[0].i, pairs[0].j), (2, 0));
                assert_eq!((pairs[1].i, pairs[1].j), (2, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fanout_shares_the_snapshot_arc() {
        let reg = SessionRegistry::new();
        let router = Router::new();
        let sessions: Vec<_> = (0..10).map(|i| reg.open(format!("c{i}"), 16, 0)).collect();
        for s in &sessions {
            router.subscribe(
                s,
                SubscriptionSpec::Corr {
                    ctype: CorrType::Pearson,
                    window: 20,
                    top_k: None,
                },
            );
        }
        let snap = snapshot(0, 3);
        let cut = cut_with(vec![Arc::clone(&snap)], Vec::new());
        router.publish(&cut, &[(CorrType::Pearson, 20)]);
        drop(cut);
        // 10 rings + our handle: reference-counted fan-out, no deep copy.
        assert_eq!(Arc::strong_count(&snap), 11);
    }

    #[test]
    fn stalled_ring_accrues_only_its_own_drops() {
        let reg = SessionRegistry::new();
        let router = Router::new();
        let healthy = reg.open("healthy".into(), 2, 0);
        let stalled = reg.open("stalled".into(), 2, 0);
        for s in [&healthy, &stalled] {
            router.subscribe(
                s,
                SubscriptionSpec::Corr {
                    ctype: CorrType::Pearson,
                    window: 20,
                    top_k: None,
                },
            );
        }
        let keys = [(CorrType::Pearson, 20)];
        for round in 0..6 {
            let cut = cut_with(vec![snapshot(0, round)], Vec::new());
            router.publish(&cut, &keys);
            // Healthy consumer keeps up; stalled one never pops.
            assert!(matches!(
                healthy.ring.pop(Duration::ZERO),
                Popped::Item {
                    dropped_before: 0,
                    ..
                }
            ));
        }
        let (_, healthy_drops) = healthy.ring.stats();
        let (pushed, stalled_drops) = stalled.ring.stats();
        assert_eq!(healthy_drops, 0);
        assert_eq!(pushed, 6);
        assert_eq!(stalled_drops, 4, "cap 2, 6 pushed");
        // The first frame the stalled client would read accounts its loss.
        match stalled.ring.pop(Duration::ZERO) {
            Popped::Item {
                item: ServerFrame::Event { seq, .. },
                dropped_before,
            } => {
                assert_eq!(dropped_before, 4);
                assert_eq!(seq, 4, "seq gap agrees with the drop count");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trades_subscriptions_filter_by_param_set() {
        use marketminer::messages::{Basket, OrderRequest, OrderSide};
        let order = |param_set: usize| OrderRequest {
            interval: 4,
            param_set,
            strategy: pairtrade_core::spec::StrategyKind::Paper,
            stock: 1,
            side: OrderSide::Buy,
            shares: 10,
            price: 30.0,
            pair: (1, 0),
            needs_confirmation: false,
            cause: Cause::none(),
        };
        let basket = |ks: &[usize]| {
            Message::Basket(Arc::new(Basket {
                interval: 4,
                orders: ks.iter().map(|&k| order(k)).collect(),
                cause: Cause::none(),
            }))
        };
        let reg = SessionRegistry::new();
        let router = Router::new();
        let all = reg.open("all".into(), 16, 0);
        let only1 = reg.open("only1".into(), 16, 0);
        router.subscribe(&all, SubscriptionSpec::Trades { param_set: None });
        router.subscribe(&only1, SubscriptionSpec::Trades { param_set: Some(1) });
        let cut = cut_with(
            Vec::new(),
            vec![basket(&[0]), basket(&[0, 1]), basket(&[2])],
        );
        router.publish(&cut, &[]);
        assert_eq!(drain(&all).len(), 3);
        let got = drain(&only1);
        assert_eq!(got.len(), 1, "only the basket containing param set 1");
    }

    #[test]
    fn metrics_subscriptions_get_per_subscriber_deltas_on_cadence() {
        let reg = SessionRegistry::new();
        let router = Router::new();
        let early = reg.open("early".into(), 16, 0);
        router.subscribe(&early, SubscriptionSpec::Telemetry { every: 2 });
        assert!(router.wants_metrics());

        let mut snap = MetricsSnapshot::default();
        snap.counters
            .insert(("serve".into(), "egress.pushed".into()), 5);
        router.publish_metrics(0, &snap); // due
        router.publish_metrics(1, &snap); // off-cadence: nothing

        // A late subscriber's first delivery is the full registry.
        let late = reg.open("late".into(), 16, 0);
        router.subscribe(&late, SubscriptionSpec::Telemetry { every: 1 });
        snap.counters
            .insert(("serve".into(), "egress.pushed".into()), 9);
        router.publish_metrics(2, &snap); // due for both

        let got = drain(&early);
        assert_eq!(got.len(), 2);
        let mut rebuilt = MetricsSnapshot::default();
        for (frame, (want_epoch, want_delta)) in got.iter().zip([(0u64, 5u64), (2, 4)]) {
            match frame {
                ServerFrame::Metrics { epoch, delta, .. } => {
                    assert_eq!(*epoch, want_epoch);
                    assert_eq!(delta.counter("serve", "egress.pushed"), want_delta);
                    rebuilt.merge(delta);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(
            rebuilt, snap,
            "folding the deltas in order rebuilds the registry"
        );
        let got = drain(&late);
        assert_eq!(got.len(), 1);
        match &got[0] {
            ServerFrame::Metrics { delta, .. } => {
                assert_eq!(
                    delta.counter("serve", "egress.pushed"),
                    9,
                    "first delivery carries the full registry"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stalled_metrics_subscriber_accrues_attributed_drops() {
        let reg = SessionRegistry::new();
        let router = Router::new();
        let stalled = reg.open("stalled".into(), 2, 0);
        router.subscribe(&stalled, SubscriptionSpec::Telemetry { every: 1 });
        let mut snap = MetricsSnapshot::default();
        for epoch in 0..6 {
            snap.counters
                .insert(("serve".into(), "egress.pushed".into()), epoch + 1);
            router.publish_metrics(epoch, &snap);
        }
        let (pushed, dropped) = stalled.ring.stats();
        assert_eq!(pushed, 6);
        assert_eq!(dropped, 4, "cap 2, 6 pushed — loss stays on this ring");
        match stalled.ring.pop(Duration::ZERO) {
            Popped::Item {
                item: ServerFrame::Metrics { seq, .. },
                dropped_before,
            } => {
                assert_eq!(dropped_before, 4);
                assert_eq!(seq, 4, "seq gap agrees with the drop count");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsubscribe_and_drop_session_stop_deliveries() {
        let reg = SessionRegistry::new();
        let router = Router::new();
        let s = reg.open("s".into(), 16, 0);
        let sub = router.subscribe(
            &s,
            SubscriptionSpec::Corr {
                ctype: CorrType::Pearson,
                window: 20,
                top_k: None,
            },
        );
        router.subscribe(&s, SubscriptionSpec::Health);
        assert!(router.unsubscribe(s.id, sub));
        assert!(!router.unsubscribe(s.id, sub), "already gone");
        assert_eq!(router.len(), 1);
        assert_eq!(router.drop_session(s.id), 1);
        assert!(router.is_empty());
    }
}
