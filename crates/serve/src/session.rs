//! Session registry: one entry per authenticated client, each owning a
//! bounded [`EgressRing`] of outbound [`ServerFrame`]s, plus the
//! heartbeat reaper that tears down sessions whose client went silent.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::protocol::ServerFrame;
use crate::ring::EgressRing;

/// One authenticated client session.
#[derive(Debug)]
pub struct Session {
    /// Registry-assigned id (the `session{id}` telemetry label).
    pub id: u64,
    /// Client-supplied name from `Hello`.
    pub client: String,
    /// Outbound frames; the per-session writer thread drains this.
    pub ring: EgressRing<ServerFrame>,
    /// Server-clock µs of the last frame received from this client.
    last_seen_us: AtomicU64,
}

impl Session {
    /// Refresh the heartbeat.
    pub fn touch(&self, now_us: u64) {
        self.last_seen_us.store(now_us, Ordering::Relaxed);
    }

    /// µs since the last frame from this client.
    pub fn age_us(&self, now_us: u64) -> u64 {
        now_us.saturating_sub(self.last_seen_us.load(Ordering::Relaxed))
    }
}

/// The live session table.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    next: AtomicU64,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
}

impl SessionRegistry {
    /// Empty registry.
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    /// Open a session with an egress ring bounded at `ring_cap`.
    pub fn open(&self, client: String, ring_cap: usize, now_us: u64) -> Arc<Session> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Session {
            id,
            client,
            ring: EgressRing::new(ring_cap),
            last_seen_us: AtomicU64::new(now_us),
        });
        self.sessions
            .lock()
            .expect("session table")
            .insert(id, Arc::clone(&session));
        session
    }

    /// Look a session up by id.
    pub fn get(&self, id: u64) -> Option<Arc<Session>> {
        self.sessions
            .lock()
            .expect("session table")
            .get(&id)
            .cloned()
    }

    /// Close a session: its ring stops accepting frames (the writer
    /// drains what is queued, then sees `Closed`) and it leaves the
    /// table. Returns the closed session, if it existed.
    pub fn close(&self, id: u64) -> Option<Arc<Session>> {
        let session = self.sessions.lock().expect("session table").remove(&id);
        if let Some(s) = &session {
            s.ring.close();
        }
        session
    }

    /// Close every session whose heartbeat is older than `ttl_us`,
    /// returning the reaped sessions.
    pub fn reap_stale(&self, now_us: u64, ttl_us: u64) -> Vec<Arc<Session>> {
        let mut table = self.sessions.lock().expect("session table");
        let stale: Vec<u64> = table
            .values()
            .filter(|s| s.age_us(now_us) > ttl_us)
            .map(|s| s.id)
            .collect();
        let mut reaped = Vec::with_capacity(stale.len());
        for id in stale {
            if let Some(s) = table.remove(&id) {
                s.ring.close();
                reaped.push(s);
            }
        }
        reaped
    }

    /// Snapshot of every live session.
    pub fn all(&self) -> Vec<Arc<Session>> {
        self.sessions
            .lock()
            .expect("session table")
            .values()
            .cloned()
            .collect()
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.lock().expect("session table").len()
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close every session (end of day).
    pub fn close_all(&self) {
        let mut table = self.sessions.lock().expect("session table");
        for s in table.values() {
            s.ring.close();
        }
        table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_touch_and_reap() {
        let reg = SessionRegistry::new();
        let a = reg.open("a".into(), 8, 1_000);
        let b = reg.open("b".into(), 8, 1_000);
        assert_ne!(a.id, b.id);
        assert_eq!(reg.len(), 2);
        // `a` heartbeats at t=5ms, `b` stays silent.
        a.touch(5_000);
        let reaped = reg.reap_stale(6_000, 2_000);
        assert_eq!(reaped.len(), 1);
        assert_eq!(reaped[0].id, b.id);
        assert!(b.ring.is_closed(), "reaping closes the ring");
        assert!(!a.ring.is_closed());
        assert_eq!(reg.len(), 1);
        assert!(reg.get(b.id).is_none());
    }

    #[test]
    fn close_all_empties_the_table() {
        let reg = SessionRegistry::new();
        let a = reg.open("a".into(), 8, 0);
        reg.open("b".into(), 8, 0);
        reg.close_all();
        assert!(reg.is_empty());
        assert!(a.ring.is_closed());
    }
}
