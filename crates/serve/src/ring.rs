//! Bounded per-session egress rings with drop-oldest, counted loss.
//!
//! The publisher side (the epoch loop) **never blocks**: pushing into a
//! full ring evicts the oldest feed item and counts the eviction, so a
//! stalled subscriber converts into *its own* loss accounting instead of
//! backpressure on the DAG. The consumer side (the per-session writer
//! thread) blocks on a condvar with a timeout and learns, with each item,
//! how many evictions happened immediately before it
//! (`dropped_before`) — the drop policy is deterministic (always the
//! oldest feed item) and always counted, never silent.
//!
//! Control replies (subscribe acks, explain answers, errors) ride a
//! separate unbounded lane in the same ring that is never dropped and is
//! always delivered before queued feed items: a slow consumer may lose
//! ticks, never answers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What `pop` yields.
#[derive(Debug, PartialEq)]
pub enum Popped<T> {
    /// An item, with the number of feed evictions immediately before it.
    Item {
        /// The popped item.
        item: T,
        /// Feed evictions since the previously popped item.
        dropped_before: u64,
    },
    /// The ring was closed and fully drained.
    Closed,
    /// Nothing arrived within the timeout; poll again.
    TimedOut,
}

#[derive(Debug)]
struct Inner<T> {
    /// Unbounded control lane, never dropped, drained first.
    control: VecDeque<T>,
    /// Bounded feed lane, drop-oldest.
    feed: VecDeque<T>,
    /// Evictions not yet attributed to a popped item.
    pending_drops: u64,
    dropped_total: u64,
    pushed_total: u64,
    closed: bool,
}

/// A bounded drop-oldest egress ring with an unbounded control lane.
#[derive(Debug)]
pub struct EgressRing<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    cv: Condvar,
}

impl<T> EgressRing<T> {
    /// Ring holding at most `cap` queued feed items (`cap >= 1`).
    pub fn new(cap: usize) -> EgressRing<T> {
        EgressRing {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                control: VecDeque::new(),
                feed: VecDeque::new(),
                pending_drops: 0,
                dropped_total: 0,
                pushed_total: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Queue a feed item. Never blocks; evicts (and counts) the oldest
    /// queued feed item when full. Returns `true` if an eviction
    /// happened. Pushes to a closed ring are discarded.
    pub fn push(&self, item: T) -> bool {
        let mut inner = self.inner.lock().expect("egress ring");
        if inner.closed {
            return false;
        }
        inner.pushed_total += 1;
        let evicted = if inner.feed.len() == self.cap {
            inner.feed.pop_front();
            inner.pending_drops += 1;
            inner.dropped_total += 1;
            true
        } else {
            false
        };
        inner.feed.push_back(item);
        self.cv.notify_one();
        evicted
    }

    /// Queue a control item: unbounded, never dropped, delivered before
    /// queued feed items.
    pub fn push_control(&self, item: T) {
        let mut inner = self.inner.lock().expect("egress ring");
        if inner.closed {
            return;
        }
        inner.control.push_back(item);
        self.cv.notify_one();
    }

    /// Take the next item (control lane first), waiting up to `timeout`.
    pub fn pop(&self, timeout: Duration) -> Popped<T> {
        let mut inner = self.inner.lock().expect("egress ring");
        loop {
            if let Some(item) = inner.control.pop_front() {
                return Popped::Item {
                    item,
                    dropped_before: 0,
                };
            }
            if let Some(item) = inner.feed.pop_front() {
                let dropped_before = std::mem::take(&mut inner.pending_drops);
                return Popped::Item {
                    item,
                    dropped_before,
                };
            }
            if inner.closed {
                return Popped::Closed;
            }
            let (guard, wait) = self
                .cv
                .wait_timeout(inner, timeout)
                .expect("egress ring wait");
            inner = guard;
            if wait.timed_out() {
                // One more non-blocking look (an item may have raced in),
                // then report the timeout.
                if inner.control.is_empty() && inner.feed.is_empty() {
                    return if inner.closed {
                        Popped::Closed
                    } else {
                        Popped::TimedOut
                    };
                }
            }
        }
    }

    /// Close the ring: queued items still drain, new pushes are
    /// discarded, and `pop` reports [`Popped::Closed`] once empty.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("egress ring");
        inner.closed = true;
        self.cv.notify_all();
    }

    /// True once [`close`](EgressRing::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("egress ring").closed
    }

    /// Currently queued feed items (for depth histograms).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("egress ring").feed.len()
    }

    /// Lifetime `(pushed, dropped)` feed counts.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("egress ring");
        (inner.pushed_total, inner.dropped_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(5);

    fn drain(ring: &EgressRing<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Popped::Item {
            item,
            dropped_before,
        } = ring.pop(Duration::ZERO)
        {
            out.push((item, dropped_before));
        }
        out
    }

    #[test]
    fn drop_oldest_is_counted_and_attributed() {
        let ring = EgressRing::new(3);
        for v in 0..5 {
            ring.push(v);
        }
        // 0 and 1 evicted; 2 carries both drops.
        assert_eq!(drain(&ring), vec![(2, 2), (3, 0), (4, 0)]);
        assert_eq!(ring.stats(), (5, 2));
        assert_eq!(ring.depth(), 0);
    }

    #[test]
    fn control_lane_is_never_dropped_and_goes_first() {
        let ring = EgressRing::new(1);
        ring.push(10);
        ring.push(11); // evicts 10
        ring.push_control(99);
        ring.push_control(98);
        let mut got = Vec::new();
        while let Popped::Item { item, .. } = ring.pop(Duration::ZERO) {
            got.push(item);
        }
        assert_eq!(got, vec![99, 98, 11]);
        assert_eq!(ring.stats(), (2, 1));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let ring = EgressRing::new(4);
        ring.push(1);
        ring.close();
        ring.push(2); // discarded
        ring.push_control(3); // discarded
        assert!(matches!(
            ring.pop(TICK),
            Popped::Item {
                item: 1,
                dropped_before: 0
            }
        ));
        assert_eq!(ring.pop(TICK), Popped::Closed);
        assert!(ring.is_closed());
    }

    #[test]
    fn pop_times_out_on_an_open_empty_ring() {
        let ring: EgressRing<u64> = EgressRing::new(4);
        assert_eq!(ring.pop(Duration::from_millis(1)), Popped::TimedOut);
    }

    #[test]
    fn push_wakes_a_blocked_consumer() {
        let ring = std::sync::Arc::new(EgressRing::new(4));
        let r2 = std::sync::Arc::clone(&ring);
        let waiter = std::thread::spawn(move || r2.pop(Duration::from_secs(5)));
        std::thread::sleep(TICK);
        ring.push(7);
        match waiter.join().unwrap() {
            Popped::Item { item, .. } => assert_eq!(item, 7),
            other => panic!("expected item, got {other:?}"),
        }
    }
}
