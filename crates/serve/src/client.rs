//! A small blocking client for the serve protocol, used by the load
//! generator, the integration tests and any CLI tooling.
//!
//! Feed frames and control replies share one socket, so request helpers
//! (`subscribe`, `explain`, ...) buffer any feed deliveries that arrive
//! while waiting for their acknowledgement; [`Client::next_frame`]
//! yields those buffered frames first.

use std::collections::VecDeque;
use std::io;
use std::time::Duration;

use marketminer::shard::{connect_with_backoff, Endpoint, FramedConn};
use pairtrade_core::spec::StrategySpec;

use crate::protocol::{ClientFrame, ServerFrame, SubscriptionSpec, PROTOCOL_VERSION};

/// One authenticated client connection.
pub struct Client {
    conn: FramedConn,
    pending: VecDeque<ServerFrame>,
    /// Server-assigned session id from `Welcome`.
    pub session: u64,
}

impl Client {
    /// Connect (with backoff while the server binds), authenticate, and
    /// return the opened session.
    pub fn connect(endpoint: &Endpoint, token: &str, name: &str) -> io::Result<Client> {
        let mut conn = connect_with_backoff(
            endpoint,
            Duration::from_millis(5),
            Duration::from_millis(100),
            Duration::from_secs(5),
        )?;
        conn.send(&ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            token: token.into(),
            client: name.into(),
        })?;
        match conn.recv::<ServerFrame>()? {
            ServerFrame::Welcome { session } => Ok(Client {
                conn,
                pending: VecDeque::new(),
                session,
            }),
            ServerFrame::Denied { reason } => {
                Err(io::Error::new(io::ErrorKind::PermissionDenied, reason))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Welcome, got {other:?}"),
            )),
        }
    }

    /// Send a raw client frame.
    pub fn send(&mut self, frame: &ClientFrame) -> io::Result<()> {
        self.conn.send(frame)
    }

    /// Next server frame: buffered deliveries first, then the socket.
    pub fn next_frame(&mut self) -> io::Result<ServerFrame> {
        if let Some(f) = self.pending.pop_front() {
            return Ok(f);
        }
        self.conn.recv()
    }

    /// Receive until `want` accepts a frame, buffering everything else.
    fn wait_for<T>(
        &mut self,
        mut want: impl FnMut(ServerFrame) -> Result<T, ServerFrame>,
    ) -> io::Result<T> {
        loop {
            let frame = self.conn.recv::<ServerFrame>()?;
            match want(frame) {
                Ok(t) => return Ok(t),
                Err(other) => self.pending.push_back(other),
            }
        }
    }

    /// Open a subscription and wait for its id.
    pub fn subscribe(&mut self, spec: SubscriptionSpec) -> io::Result<u64> {
        self.send(&ClientFrame::Subscribe { spec })?;
        self.wait_for(|f| match f {
            ServerFrame::Subscribed { sub_id } => Ok(sub_id),
            other => Err(other),
        })
    }

    /// Attach a strategy host; resolves at the server's next epoch cut.
    pub fn attach(&mut self, spec: StrategySpec) -> io::Result<u64> {
        self.send(&ClientFrame::Attach { spec })?;
        self.wait_for(|f| match f {
            ServerFrame::Attached { param_set } => Ok(Ok(param_set)),
            ServerFrame::Error { reason } => Ok(Err(reason)),
            other => Err(other),
        })?
        .map_err(|reason| io::Error::new(io::ErrorKind::InvalidInput, reason))
    }

    /// Detach a strategy host; resolves at the server's next epoch cut.
    pub fn detach(&mut self, param_set: usize) -> io::Result<()> {
        self.send(&ClientFrame::Detach { param_set })?;
        self.wait_for(|f| match f {
            ServerFrame::Detached { .. } => Ok(Ok(())),
            ServerFrame::Error { reason } => Ok(Err(reason)),
            other => Err(other),
        })?
        .map_err(|reason| io::Error::new(io::ErrorKind::InvalidInput, reason))
    }

    /// Ask for the provenance of an event (`0` = latest outcome).
    /// Returns `(found, rendered_text_or_reason)`.
    pub fn explain(&mut self, id: u64) -> io::Result<(bool, String)> {
        self.send(&ClientFrame::Explain { id })?;
        self.wait_for(|f| match f {
            ServerFrame::Explained { found, text } => Ok((found, text)),
            other => Err(other),
        })
    }

    /// Fetch the Prometheus text exposition of the server's combined
    /// metrics registry; resolves at the server's next epoch cut.
    /// Returns `(epoch, exposition_text)`.
    pub fn get_metrics(&mut self) -> io::Result<(u64, String)> {
        self.send(&ClientFrame::GetMetrics)?;
        self.wait_for(|f| match f {
            ServerFrame::MetricsText { epoch, text } => Ok((epoch, text)),
            other => Err(other),
        })
    }

    /// Ask for the outcome listing (trade reports and baskets so far).
    pub fn list_outcomes(&mut self) -> io::Result<String> {
        self.send(&ClientFrame::ListOutcomes)?;
        self.wait_for(|f| match f {
            ServerFrame::Outcomes { text } => Ok(text),
            other => Err(other),
        })
    }
}
