//! The client↔server frame vocabulary.
//!
//! Both directions reuse the shard transport's framing (`len | crc32 |
//! payload`, [`marketminer::shard::FramedConn`] is generic over the
//! payload codec) with these two enums as payloads. Payload types that
//! already cross the shard boundary — [`Message`], [`StrategySpec`] —
//! reuse their existing [`wire::Codec`] impls, so a correlation snapshot
//! is bit-identical on the serve wire and the shard wire.
//!
//! Versioning: [`Hello`](ClientFrame::Hello) leads with
//! [`PROTOCOL_VERSION`]; a mismatch is refused at the door
//! ([`ServerFrame::Denied`]) rather than misparsed mid-stream.

use marketminer::messages::Message;
use marketminer::shard::wire_msg::{decode_metrics_snapshot, encode_metrics_snapshot};
use pairtrade_core::spec::StrategySpec;
use stats::correlation::CorrType;
use telemetry::metrics::MetricsSnapshot;
use wire::{Codec, Reader, WireError, Writer};

/// Version byte agreed in `Hello`; bump on any frame-layout change.
pub const PROTOCOL_VERSION: u32 = 1;

/// What a subscription delivers.
#[derive(Debug, Clone, PartialEq)]
pub enum SubscriptionSpec {
    /// Correlation snapshots from one shared `(Ctype, M)` stream.
    /// `top_k = Some(k)` conflates each snapshot to its `k`
    /// highest-|ρ| pairs ([`ServerFrame::TopK`]); `None` delivers the
    /// full matrix ([`ServerFrame::Event`] carrying `Message::Corr`).
    Corr {
        /// Correlation estimator of the wanted stream.
        ctype: CorrType,
        /// Correlation window `M` of the wanted stream.
        window: usize,
        /// Conflate to the k strongest pairs per snapshot.
        top_k: Option<usize>,
    },
    /// Order baskets (signals/executions). `param_set = Some(k)`
    /// restricts to baskets containing at least one order attributed to
    /// global param set `k`; `None` delivers every basket.
    Trades {
        /// Global param-set filter.
        param_set: Option<usize>,
    },
    /// Symbol health transitions (outage / halt / quarantine / recovery).
    Health,
    /// Live metrics: a delta-encoded registry snapshot every `every`
    /// epoch cuts ([`ServerFrame::Metrics`]), stamped with the simulated
    /// time (the epoch index) rather than the wall clock. Folding the
    /// deltas in order rebuilds the full registry; an evicted delta is
    /// visible as `dropped_before` and recoverable via
    /// [`ClientFrame::GetMetrics`].
    Telemetry {
        /// Deliver every this-many epoch cuts (0 is treated as 1).
        every: u64,
    },
}

impl Codec for SubscriptionSpec {
    fn encode(&self, w: &mut Writer) {
        match self {
            SubscriptionSpec::Corr {
                ctype,
                window,
                top_k,
            } => {
                0u8.encode(w);
                ctype.encode(w);
                window.encode(w);
                top_k.encode(w);
            }
            SubscriptionSpec::Trades { param_set } => {
                1u8.encode(w);
                param_set.encode(w);
            }
            SubscriptionSpec::Health => 2u8.encode(w),
            SubscriptionSpec::Telemetry { every } => {
                3u8.encode(w);
                every.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => SubscriptionSpec::Corr {
                ctype: CorrType::decode(r)?,
                window: usize::decode(r)?,
                top_k: Option::<usize>::decode(r)?,
            },
            1 => SubscriptionSpec::Trades {
                param_set: Option::<usize>::decode(r)?,
            },
            2 => SubscriptionSpec::Health,
            3 => SubscriptionSpec::Telemetry {
                every: u64::decode(r)?,
            },
            _ => return Err(WireError::Invalid("subscription spec tag")),
        })
    }
}

/// Frames a client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Open a session. Must be the first frame on a connection.
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        version: u32,
        /// Shared-secret auth token.
        token: String,
        /// Free-form client name for telemetry labels.
        client: String,
    },
    /// Open a feed subscription; answered by [`ServerFrame::Subscribed`].
    Subscribe {
        /// What to deliver.
        spec: SubscriptionSpec,
    },
    /// Close a subscription by its server-assigned id.
    Unsubscribe {
        /// Id from [`ServerFrame::Subscribed`].
        sub_id: u64,
    },
    /// Attach a new strategy host to the live graph at the next epoch
    /// cut; answered by [`ServerFrame::Attached`].
    Attach {
        /// The strategy to host.
        spec: StrategySpec,
    },
    /// Detach the host for a global param set at the next epoch cut.
    Detach {
        /// Global param-set index to detach.
        param_set: usize,
    },
    /// Explain the causal provenance of an event. `id = 0` (the unset
    /// sentinel) asks for the default target — the latest trade report,
    /// else the latest basket.
    Explain {
        /// Packed event id (`telemetry::lineage::EventId`), or 0.
        id: u64,
    },
    /// List explainable outcomes (trade reports and baskets) seen so far.
    ListOutcomes,
    /// Fetch the current metrics registry as Prometheus text exposition
    /// ([`ServerFrame::MetricsText`]) — the GET-style scrape a monitoring
    /// stack issues, answered at the next epoch cut.
    GetMetrics,
    /// Liveness signal; any frame refreshes the session's heartbeat, this
    /// one does nothing else.
    Heartbeat,
    /// Orderly goodbye: the session is torn down immediately instead of
    /// waiting for the reaper.
    Bye,
}

impl Codec for ClientFrame {
    fn encode(&self, w: &mut Writer) {
        match self {
            ClientFrame::Hello {
                version,
                token,
                client,
            } => {
                0u8.encode(w);
                version.encode(w);
                token.encode(w);
                client.encode(w);
            }
            ClientFrame::Subscribe { spec } => {
                1u8.encode(w);
                spec.encode(w);
            }
            ClientFrame::Unsubscribe { sub_id } => {
                2u8.encode(w);
                sub_id.encode(w);
            }
            ClientFrame::Attach { spec } => {
                3u8.encode(w);
                spec.encode(w);
            }
            ClientFrame::Detach { param_set } => {
                4u8.encode(w);
                param_set.encode(w);
            }
            ClientFrame::Explain { id } => {
                5u8.encode(w);
                id.encode(w);
            }
            ClientFrame::ListOutcomes => 6u8.encode(w),
            ClientFrame::Heartbeat => 7u8.encode(w),
            ClientFrame::Bye => 8u8.encode(w),
            ClientFrame::GetMetrics => 9u8.encode(w),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => ClientFrame::Hello {
                version: u32::decode(r)?,
                token: String::decode(r)?,
                client: String::decode(r)?,
            },
            1 => ClientFrame::Subscribe {
                spec: SubscriptionSpec::decode(r)?,
            },
            2 => ClientFrame::Unsubscribe {
                sub_id: u64::decode(r)?,
            },
            3 => ClientFrame::Attach {
                spec: StrategySpec::decode(r)?,
            },
            4 => ClientFrame::Detach {
                param_set: usize::decode(r)?,
            },
            5 => ClientFrame::Explain {
                id: u64::decode(r)?,
            },
            6 => ClientFrame::ListOutcomes,
            7 => ClientFrame::Heartbeat,
            8 => ClientFrame::Bye,
            9 => ClientFrame::GetMetrics,
            _ => return Err(WireError::Invalid("client frame tag")),
        })
    }
}

/// One conflated correlation pair: `(i, j, ρ)` with `i > j`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopPair {
    /// Higher stock index of the pair.
    pub i: u32,
    /// Lower stock index of the pair.
    pub j: u32,
    /// The correlation estimate.
    pub rho: f64,
}

impl Codec for TopPair {
    fn encode(&self, w: &mut Writer) {
        self.i.encode(w);
        self.j.encode(w);
        self.rho.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TopPair {
            i: u32::decode(r)?,
            j: u32::decode(r)?,
            rho: f64::decode(r)?,
        })
    }
}

/// Frames the server sends. (No `PartialEq`: [`Message`] payloads are
/// compared by their contents in tests via re-encoding, not `==`.)
#[derive(Debug, Clone)]
pub enum ServerFrame {
    /// Session opened.
    Welcome {
        /// The session id (telemetry label `session{id}`).
        session: u64,
    },
    /// Hello refused (bad token or version); the connection closes.
    Denied {
        /// Why.
        reason: String,
    },
    /// Subscription opened.
    Subscribed {
        /// Id to use in `Unsubscribe`, echoed on every delivery.
        sub_id: u64,
    },
    /// Subscription closed.
    Unsubscribed {
        /// The closed id.
        sub_id: u64,
    },
    /// One full-fidelity feed delivery. `seq` counts deliveries on this
    /// subscription from 0; `dropped_before` is how many deliveries the
    /// egress ring evicted between the previous received frame and this
    /// one, so a subscriber can always account for its own loss.
    Event {
        /// Subscription this belongs to.
        sub_id: u64,
        /// Per-subscription delivery sequence number.
        seq: u64,
        /// Ring evictions immediately before this delivery.
        dropped_before: u64,
        /// The payload (`Corr` / `Basket` / `Trades` / `Health`).
        payload: Message,
    },
    /// One conflated correlation delivery (`top_k` subscriptions).
    TopK {
        /// Subscription this belongs to.
        sub_id: u64,
        /// Per-subscription delivery sequence number.
        seq: u64,
        /// Ring evictions immediately before this delivery.
        dropped_before: u64,
        /// The snapshot's trading interval.
        interval: u64,
        /// The k strongest pairs by |ρ|, strongest first.
        pairs: Vec<TopPair>,
    },
    /// Attach accepted; the host is live from the current epoch cut.
    Attached {
        /// Global param-set index assigned to the new host.
        param_set: u64,
    },
    /// Detach accepted.
    Detached {
        /// The detached global param-set index.
        param_set: u64,
    },
    /// Answer to [`ClientFrame::Explain`]: the rendered provenance
    /// (tree + waterfall + stage chain), or `found = false` with the
    /// reason in `text`.
    Explained {
        /// Whether the event was in the lineage capture.
        found: bool,
        /// Rendered explanation or failure reason.
        text: String,
    },
    /// Answer to [`ClientFrame::ListOutcomes`].
    Outcomes {
        /// Rendered outcome table.
        text: String,
    },
    /// A request failed (unknown sub id, invalid attach, ...). The
    /// session stays open.
    Error {
        /// Why.
        reason: String,
    },
    /// One live-metrics delivery ([`SubscriptionSpec::Telemetry`]): the
    /// registry delta since this subscription's previous delivery
    /// (counters as increments, gauges as current peaks, histograms
    /// delta-bucketed with cumulative min/max — fold deltas in order to
    /// rebuild the registry). The first delivery is the full snapshot.
    Metrics {
        /// Subscription this belongs to.
        sub_id: u64,
        /// Per-subscription delivery sequence number.
        seq: u64,
        /// Ring evictions immediately before this delivery.
        dropped_before: u64,
        /// Simulated-time stamp: the epoch cut the snapshot was taken at.
        epoch: u64,
        /// The registry delta.
        delta: MetricsSnapshot,
    },
    /// Answer to [`ClientFrame::GetMetrics`]: the full current registry
    /// in Prometheus text exposition format.
    MetricsText {
        /// Simulated-time stamp: the epoch cut the scrape was answered at.
        epoch: u64,
        /// `text/plain; version=0.0.4` exposition body.
        text: String,
    },
    /// The served day is over; final deliveries precede this frame and
    /// the connection closes after it.
    End,
}

impl Codec for ServerFrame {
    fn encode(&self, w: &mut Writer) {
        match self {
            ServerFrame::Welcome { session } => {
                0u8.encode(w);
                session.encode(w);
            }
            ServerFrame::Denied { reason } => {
                1u8.encode(w);
                reason.encode(w);
            }
            ServerFrame::Subscribed { sub_id } => {
                2u8.encode(w);
                sub_id.encode(w);
            }
            ServerFrame::Unsubscribed { sub_id } => {
                3u8.encode(w);
                sub_id.encode(w);
            }
            ServerFrame::Event {
                sub_id,
                seq,
                dropped_before,
                payload,
            } => {
                4u8.encode(w);
                sub_id.encode(w);
                seq.encode(w);
                dropped_before.encode(w);
                payload.encode(w);
            }
            ServerFrame::TopK {
                sub_id,
                seq,
                dropped_before,
                interval,
                pairs,
            } => {
                5u8.encode(w);
                sub_id.encode(w);
                seq.encode(w);
                dropped_before.encode(w);
                interval.encode(w);
                pairs.encode(w);
            }
            ServerFrame::Attached { param_set } => {
                6u8.encode(w);
                param_set.encode(w);
            }
            ServerFrame::Detached { param_set } => {
                7u8.encode(w);
                param_set.encode(w);
            }
            ServerFrame::Explained { found, text } => {
                8u8.encode(w);
                found.encode(w);
                text.encode(w);
            }
            ServerFrame::Outcomes { text } => {
                9u8.encode(w);
                text.encode(w);
            }
            ServerFrame::Error { reason } => {
                10u8.encode(w);
                reason.encode(w);
            }
            ServerFrame::End => 11u8.encode(w),
            ServerFrame::Metrics {
                sub_id,
                seq,
                dropped_before,
                epoch,
                delta,
            } => {
                12u8.encode(w);
                sub_id.encode(w);
                seq.encode(w);
                dropped_before.encode(w);
                epoch.encode(w);
                encode_metrics_snapshot(delta, w);
            }
            ServerFrame::MetricsText { epoch, text } => {
                13u8.encode(w);
                epoch.encode(w);
                text.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => ServerFrame::Welcome {
                session: u64::decode(r)?,
            },
            1 => ServerFrame::Denied {
                reason: String::decode(r)?,
            },
            2 => ServerFrame::Subscribed {
                sub_id: u64::decode(r)?,
            },
            3 => ServerFrame::Unsubscribed {
                sub_id: u64::decode(r)?,
            },
            4 => ServerFrame::Event {
                sub_id: u64::decode(r)?,
                seq: u64::decode(r)?,
                dropped_before: u64::decode(r)?,
                payload: Message::decode(r)?,
            },
            5 => ServerFrame::TopK {
                sub_id: u64::decode(r)?,
                seq: u64::decode(r)?,
                dropped_before: u64::decode(r)?,
                interval: u64::decode(r)?,
                pairs: Vec::<TopPair>::decode(r)?,
            },
            6 => ServerFrame::Attached {
                param_set: u64::decode(r)?,
            },
            7 => ServerFrame::Detached {
                param_set: u64::decode(r)?,
            },
            8 => ServerFrame::Explained {
                found: bool::decode(r)?,
                text: String::decode(r)?,
            },
            9 => ServerFrame::Outcomes {
                text: String::decode(r)?,
            },
            10 => ServerFrame::Error {
                reason: String::decode(r)?,
            },
            11 => ServerFrame::End,
            12 => ServerFrame::Metrics {
                sub_id: u64::decode(r)?,
                seq: u64::decode(r)?,
                dropped_before: u64::decode(r)?,
                epoch: u64::decode(r)?,
                delta: decode_metrics_snapshot(r)?,
            },
            13 => ServerFrame::MetricsText {
                epoch: u64::decode(r)?,
                text: String::decode(r)?,
            },
            _ => return Err(WireError::Invalid("server frame tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pairtrade_core::params::StrategyParams;

    #[test]
    fn client_frames_round_trip() {
        let frames = vec![
            ClientFrame::Hello {
                version: PROTOCOL_VERSION,
                token: "sesame".into(),
                client: "loadgen-3".into(),
            },
            ClientFrame::Subscribe {
                spec: SubscriptionSpec::Corr {
                    ctype: CorrType::Pearson,
                    window: 120,
                    top_k: Some(5),
                },
            },
            ClientFrame::Subscribe {
                spec: SubscriptionSpec::Trades { param_set: Some(7) },
            },
            ClientFrame::Subscribe {
                spec: SubscriptionSpec::Health,
            },
            ClientFrame::Unsubscribe { sub_id: 12 },
            ClientFrame::Attach {
                spec: StrategySpec::Paper(StrategyParams::paper_default()),
            },
            ClientFrame::Detach { param_set: 41 },
            ClientFrame::Explain { id: 0 },
            ClientFrame::ListOutcomes,
            ClientFrame::Subscribe {
                spec: SubscriptionSpec::Telemetry { every: 4 },
            },
            ClientFrame::GetMetrics,
            ClientFrame::Heartbeat,
            ClientFrame::Bye,
        ];
        for f in &frames {
            let back: ClientFrame = wire::from_bytes(&wire::to_bytes(f)).unwrap();
            assert_eq!(&back, f);
        }
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = vec![
            ServerFrame::Welcome { session: 3 },
            ServerFrame::Denied {
                reason: "bad token".into(),
            },
            ServerFrame::Subscribed { sub_id: 9 },
            ServerFrame::Unsubscribed { sub_id: 9 },
            ServerFrame::TopK {
                sub_id: 9,
                seq: 4,
                dropped_before: 2,
                interval: 77,
                pairs: vec![
                    TopPair {
                        i: 3,
                        j: 1,
                        rho: 0.93,
                    },
                    TopPair {
                        i: 2,
                        j: 0,
                        rho: -0.88,
                    },
                ],
            },
            ServerFrame::Attached { param_set: 42 },
            ServerFrame::Detached { param_set: 42 },
            ServerFrame::Explained {
                found: true,
                text: "== provenance ==".into(),
            },
            ServerFrame::Outcomes {
                text: "id kind".into(),
            },
            ServerFrame::Error {
                reason: "unknown sub".into(),
            },
            ServerFrame::End,
            {
                let mut delta = MetricsSnapshot::default();
                delta
                    .counters
                    .insert(("serve".into(), "egress.pushed".into()), 17);
                let mut h = telemetry::metrics::Histogram::default();
                h.observe(250);
                delta
                    .histograms
                    .insert(("serve".into(), "epoch.us".into()), h);
                ServerFrame::Metrics {
                    sub_id: 2,
                    seq: 5,
                    dropped_before: 1,
                    epoch: 9,
                    delta,
                }
            },
            ServerFrame::MetricsText {
                epoch: 9,
                text: "# TYPE mm_egress_pushed_total counter\n".into(),
            },
        ];
        for f in &frames {
            let bytes = wire::to_bytes(f);
            let back: ServerFrame = wire::from_bytes(&bytes).unwrap();
            assert_eq!(wire::to_bytes(&back), bytes, "re-encode is bit-identical");
        }
    }

    #[test]
    fn corrupt_tags_are_refused() {
        let mut bytes = wire::to_bytes(&ClientFrame::Heartbeat);
        bytes[0] = 200;
        assert!(wire::from_bytes::<ClientFrame>(&bytes).is_err());
        let mut bytes = wire::to_bytes(&ServerFrame::End);
        bytes[0] = 200;
        assert!(wire::from_bytes::<ServerFrame>(&bytes).is_err());
    }
}
