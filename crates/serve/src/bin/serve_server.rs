//! Stand-alone serve daemon: generate a synthetic trading day, run the
//! sweep DAG over it and serve subscribers until the day completes.
//!
//! Usage:
//!   serve_server [--listen tcp:127.0.0.1:7450 | --listen /tmp/serve.sock]
//!                [--token open] [--stocks 8] [--seed 42] [--specs 2]
//!                [--dt 30] [--epoch-quotes 2000] [--workers 0]
//!                [--egress-cap 256] [--ttl-ms 5000]
//!                [--wait-subs 0] [--wait-ms 10000]
//!                [--telemetry off|counters|full]
//!
//! `--telemetry full` records causal lineage, enabling `explain` queries
//! over the socket. `--workers 0` means all cores.

use std::process::ExitCode;
use std::time::Duration;

use marketminer::pipeline::SweepConfig;
use marketminer::runtime::RuntimeConfig;
use marketminer::shard::Endpoint;
use pairtrade_core::params::StrategyParams;
use serve::{Server, ServerConfig};
use taq::generator::{MarketConfig, MarketGenerator};
use telemetry::TelemetryLevel;

struct Args {
    listen: String,
    token: String,
    stocks: usize,
    seed: u64,
    specs: usize,
    dt: u32,
    epoch_quotes: usize,
    workers: usize,
    egress_cap: usize,
    ttl_ms: u64,
    wait_subs: usize,
    wait_ms: u64,
    telemetry: TelemetryLevel,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "tcp:127.0.0.1:7450".into(),
        token: "open".into(),
        stocks: 8,
        seed: 42,
        specs: 2,
        dt: 30,
        epoch_quotes: 2_000,
        workers: 0,
        egress_cap: 256,
        ttl_ms: 5_000,
        wait_subs: 0,
        wait_ms: 10_000,
        telemetry: TelemetryLevel::Counters,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value()?,
            "--token" => args.token = value()?,
            "--stocks" => args.stocks = value()?.parse().map_err(|e| format!("--stocks: {e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--specs" => args.specs = value()?.parse().map_err(|e| format!("--specs: {e}"))?,
            "--dt" => args.dt = value()?.parse().map_err(|e| format!("--dt: {e}"))?,
            "--epoch-quotes" => {
                args.epoch_quotes = value()?
                    .parse()
                    .map_err(|e| format!("--epoch-quotes: {e}"))?
            }
            "--workers" => {
                args.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--egress-cap" => {
                args.egress_cap = value()?.parse().map_err(|e| format!("--egress-cap: {e}"))?
            }
            "--ttl-ms" => args.ttl_ms = value()?.parse().map_err(|e| format!("--ttl-ms: {e}"))?,
            "--wait-subs" => {
                args.wait_subs = value()?.parse().map_err(|e| format!("--wait-subs: {e}"))?
            }
            "--wait-ms" => {
                args.wait_ms = value()?.parse().map_err(|e| format!("--wait-ms: {e}"))?
            }
            "--telemetry" => args.telemetry = TelemetryLevel::parse(&value()?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// `n` paper-strategy variants sharing one bar/correlation front end,
/// fanned over divergence thresholds.
fn sweep_specs(n: usize, dt: u32) -> Vec<StrategyParams> {
    (0..n.max(1))
        .map(|i| StrategyParams {
            dt_seconds: dt,
            corr_window: 20,
            avg_window: 10,
            div_window: 5,
            divergence: 0.0005 * (i as f64 + 1.0),
            ..StrategyParams::paper_default()
        })
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_server: {e}");
            return ExitCode::from(2);
        }
    };
    let day = MarketGenerator::new(MarketConfig::small(args.stocks, 1, args.seed))
        .next_day()
        .expect("one generated day");
    let sweep = SweepConfig::new(args.stocks, sweep_specs(args.specs, args.dt));
    let workers = if args.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        args.workers
    };
    let rt = RuntimeConfig {
        workers,
        capacity: 256,
        telemetry: args.telemetry,
    };
    let endpoint = Endpoint::parse(&args.listen);
    let cfg = ServerConfig {
        token: args.token,
        egress_cap: args.egress_cap,
        heartbeat_ttl_us: args.ttl_ms * 1_000,
        epoch_quotes: args.epoch_quotes,
        start_subscriptions: args.wait_subs,
        start_wait: Duration::from_millis(args.wait_ms),
        telemetry: args.telemetry,
        ..ServerConfig::new(endpoint)
    };
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("serving on {}", server.endpoint());
    match server.serve_day(day, sweep, rt) {
        Ok(report) => {
            let trades: usize = report.output.trades_per_param.iter().map(Vec::len).sum();
            println!(
                "day served: {} epochs, {} frames published, {} evictions, {} sessions, \
                 {} reaped, {} trades",
                report.epochs,
                report.published,
                report.evictions,
                report.sessions.len(),
                report.reaped,
                trades
            );
            for s in &report.sessions {
                println!(
                    "  session{} {:<16} pushed {:>7} dropped {:>6}",
                    s.id, s.client, s.pushed, s.dropped
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve_server: {e}");
            ExitCode::FAILURE
        }
    }
}
