//! Load generator for the serve layer.
//!
//! Two modes:
//!
//! * **Client mode** (default): connect `--clients` sessions to a running
//!   `serve_server`, subscribe each to one correlation stream, and read
//!   until the server's `End` frame. `--stalled n` leaves the first `n`
//!   sessions deliberately unread — they demonstrate (and measure) the
//!   drop-oldest egress policy without slowing anyone else down.
//!
//! * **`--scrape`**: connect to a running `serve_server`, fetch one
//!   Prometheus-style text exposition (`GetMetrics`), validate that every
//!   non-comment line parses as `series{labels} value`, and print it —
//!   the CI scrape check, and a handy one-shot "what is the fleet doing"
//!   probe. Connects are retried for a few seconds so the scraper can be
//!   launched alongside the server.
//!
//! * **`--smoke`**: fully self-contained backpressure-isolation check for
//!   CI. Starts an in-process server on a Unix socket, runs the serverless
//!   sweep baseline over the same generated day, then serves it to
//!   `--clients` subscribers with one permanently stalled. Asserts:
//!   every healthy subscriber saw the identical frame sequence with zero
//!   drops, the stalled session (and only it) accrued drops, and the
//!   day's trades are bit-identical to the serverless baseline — i.e. a
//!   parked client never parks the DAG. Exits non-zero on any violation.
//!
//! The smoke uses a Unix socket on purpose: UDS buffers are small and
//! fixed, so a non-reading peer backs its egress ring up deterministically;
//! TCP autotuning could absorb the whole day into kernel buffers and make
//! the stall invisible. TCP transport itself is covered in tests/serve.rs.

use std::process::ExitCode;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use marketminer::pipeline::{run_sweep_pipeline, SweepConfig};
use marketminer::runtime::RuntimeConfig;
use marketminer::shard::Endpoint;
use pairtrade_core::params::StrategyParams;
use serve::{Client, ClientFrame, Server, ServerConfig, ServerFrame, SubscriptionSpec};
use stats::correlation::CorrType;
use taq::generator::{MarketConfig, MarketGenerator};
use telemetry::TelemetryLevel;

struct Args {
    smoke: bool,
    scrape: bool,
    connect: String,
    token: String,
    clients: usize,
    stalled: usize,
    ctype: CorrType,
    window: usize,
    top_k: Option<usize>,
    // Smoke-only workload shape.
    stocks: usize,
    seed: u64,
    dt: u32,
    epoch_quotes: usize,
    egress_cap: usize,
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        scrape: false,
        connect: "tcp:127.0.0.1:7450".into(),
        token: "open".into(),
        clients: 8,
        stalled: 0,
        ctype: CorrType::Pearson,
        window: 20,
        top_k: None,
        stocks: 10,
        seed: 42,
        dt: 10,
        epoch_quotes: 400,
        egress_cap: 256,
        workers: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--scrape" => args.scrape = true,
            "--connect" => args.connect = value()?,
            "--token" => args.token = value()?,
            "--clients" => {
                args.clients = value()?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--stalled" => {
                args.stalled = value()?.parse().map_err(|e| format!("--stalled: {e}"))?
            }
            "--ctype" => {
                args.ctype = match value()?.as_str() {
                    "pearson" => CorrType::Pearson,
                    "spearman" => CorrType::Spearman,
                    "kendall" => CorrType::Kendall,
                    other => return Err(format!("--ctype: unknown estimator {other}")),
                }
            }
            "--window" => args.window = value()?.parse().map_err(|e| format!("--window: {e}"))?,
            "--top-k" => args.top_k = Some(value()?.parse().map_err(|e| format!("--top-k: {e}"))?),
            "--stocks" => args.stocks = value()?.parse().map_err(|e| format!("--stocks: {e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--dt" => args.dt = value()?.parse().map_err(|e| format!("--dt: {e}"))?,
            "--epoch-quotes" => {
                args.epoch_quotes = value()?
                    .parse()
                    .map_err(|e| format!("--epoch-quotes: {e}"))?
            }
            "--egress-cap" => {
                args.egress_cap = value()?.parse().map_err(|e| format!("--egress-cap: {e}"))?
            }
            "--workers" => {
                args.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.stalled > args.clients {
        return Err("--stalled cannot exceed --clients".into());
    }
    Ok(args)
}

/// What one healthy subscriber observed: its frame count over the
/// correlation subscription, the drops the server attributed to it, and a
/// digest of the exact delivery sequence (seq numbers + payload bytes, so
/// two clients agree iff they received identical sequences).
struct ClientStats {
    name: String,
    frames: u64,
    dropped: u64,
    digest: u32,
    explained: Option<bool>,
}

/// Drive an already-authenticated session to completion: open the
/// correlation subscription, read until `End` (or the socket closes),
/// digesting every delivery. `explain_after = Some(n)` issues an
/// `explain` lineage query after `n` feed frames to exercise the control
/// lane mid-stream; heartbeats keep long read-only sessions alive.
fn run_subscriber_on(
    mut client: Client,
    name: &str,
    spec: SubscriptionSpec,
    explain_after: Option<u64>,
) -> std::io::Result<ClientStats> {
    let corr_sub = client.subscribe(spec)?;
    let mut stats = ClientStats {
        name: name.into(),
        frames: 0,
        dropped: 0,
        digest: 0,
        explained: None,
    };
    let mut tape: Vec<u8> = Vec::new();
    loop {
        match client.next_frame() {
            Ok(ServerFrame::Event {
                sub_id,
                seq,
                dropped_before,
                payload,
            }) if sub_id == corr_sub => {
                stats.frames += 1;
                stats.dropped += dropped_before;
                tape.extend_from_slice(&seq.to_le_bytes());
                tape.extend_from_slice(&wire::to_bytes(&payload));
            }
            Ok(ServerFrame::TopK {
                sub_id,
                seq,
                dropped_before,
                interval,
                pairs,
            }) if sub_id == corr_sub => {
                stats.frames += 1;
                stats.dropped += dropped_before;
                tape.extend_from_slice(&seq.to_le_bytes());
                tape.extend_from_slice(&interval.to_le_bytes());
                for p in &pairs {
                    tape.extend_from_slice(&p.i.to_le_bytes());
                    tape.extend_from_slice(&p.j.to_le_bytes());
                    tape.extend_from_slice(&p.rho.to_bits().to_le_bytes());
                }
            }
            Ok(ServerFrame::End) => break,
            Ok(_) => {}
            // Server gone (day over and socket torn down) — treat like End.
            Err(_) => break,
        }
        if stats.frames > 0 && stats.frames.is_multiple_of(64) {
            let _ = client.send(&ClientFrame::Heartbeat);
        }
        if explain_after == Some(stats.frames) && stats.explained.is_none() {
            let (found, _text) = client.explain(0)?;
            stats.explained = Some(found);
        }
    }
    stats.digest = wire::crc32(&tape);
    Ok(stats)
}

/// Connect + authenticate, then [`run_subscriber_on`].
fn run_subscriber(
    endpoint: &Endpoint,
    token: &str,
    name: &str,
    spec: SubscriptionSpec,
    explain_after: Option<u64>,
) -> std::io::Result<ClientStats> {
    let client = Client::connect(endpoint, token, name)?;
    run_subscriber_on(client, name, spec, explain_after)
}

/// Connect, subscribe, then never read: the pathological subscriber. The
/// thread exits once the controller drops the `release` sender (after the
/// day ends), closing the socket so the server's blocked writer unsticks.
fn run_stalled(
    endpoint: &Endpoint,
    token: &str,
    name: &str,
    spec: SubscriptionSpec,
    release: mpsc::Receiver<()>,
) -> std::io::Result<u64> {
    let mut client = Client::connect(endpoint, token, name)?;
    client.subscribe(spec)?;
    let session = client.session;
    // Block until released; never touch the socket again.
    let _ = release.recv();
    Ok(session)
}

fn client_mode(args: &Args) -> ExitCode {
    let endpoint = Endpoint::parse(&args.connect);
    let spec = SubscriptionSpec::Corr {
        ctype: args.ctype,
        window: args.window,
        top_k: args.top_k,
    };
    let (holds, stall_handles): (Vec<_>, Vec<_>) = (0..args.stalled)
        .map(|i| {
            let (tx, rx) = mpsc::channel();
            let (endpoint, token, spec) = (endpoint.clone(), args.token.clone(), spec.clone());
            let h = thread::spawn(move || {
                run_stalled(&endpoint, &token, &format!("stall{i}"), spec, rx)
            });
            (tx, h)
        })
        .unzip();
    let healthy: Vec<_> = (args.stalled..args.clients)
        .map(|i| {
            let (endpoint, token, spec) = (endpoint.clone(), args.token.clone(), spec.clone());
            thread::spawn(move || {
                run_subscriber(&endpoint, &token, &format!("client{i}"), spec, None)
            })
        })
        .collect();
    let mut failures = 0usize;
    for h in healthy {
        match h.join().expect("subscriber thread") {
            Ok(s) => println!(
                "{:<10} frames {:>6} dropped {:>5} digest {:08x}",
                s.name, s.frames, s.dropped, s.digest
            ),
            Err(e) => {
                eprintln!("subscriber failed: {e}");
                failures += 1;
            }
        }
    }
    drop(holds); // release stalled sessions now that the day is over
    for h in stall_handles {
        let _ = h.join();
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One non-comment exposition line must look like `series{labels} value`
/// with a plain metric name and a parseable number — the contract every
/// Prometheus-compatible scraper relies on.
fn exposition_line_ok(line: &str) -> bool {
    let Some(brace) = line.find('{') else {
        return false;
    };
    let name = &line[..brace];
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return false;
    }
    let Some(rest) = line[brace..].strip_prefix('{') else {
        return false;
    };
    let Some((_labels, value)) = rest.split_once("} ") else {
        return false;
    };
    value.trim().parse::<f64>().is_ok()
}

fn scrape(args: &Args) -> ExitCode {
    let endpoint = Endpoint::parse(&args.connect);
    // The scraper is typically launched in the same breath as the server;
    // retry the connect while it binds.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut client = loop {
        match Client::connect(&endpoint, &args.token, "scraper") {
            Ok(c) => break c,
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    eprintln!("scrape: connect failed: {e}");
                    return ExitCode::FAILURE;
                }
                thread::sleep(Duration::from_millis(200));
            }
        }
    };
    let (epoch, text) = match client.get_metrics() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scrape: GetMetrics failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{text}");
    let mut series = 0usize;
    let mut types = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if comment.trim_start().starts_with("TYPE") {
                types += 1;
            }
            continue;
        }
        if !exposition_line_ok(line) {
            eprintln!("scrape: FAIL malformed exposition line: {line}");
            return ExitCode::FAILURE;
        }
        series += 1;
    }
    if series == 0 || types == 0 {
        eprintln!("scrape: FAIL empty exposition ({series} series, {types} # TYPE headers)");
        return ExitCode::FAILURE;
    }
    eprintln!("scrape: ok — epoch {epoch}, {series} series, {types} metric types");
    ExitCode::SUCCESS
}

fn smoke(args: &Args) -> ExitCode {
    // Workload: small universe, short bars, one day. High snapshot volume
    // (one matrix per interval) is the point — the stalled session must
    // overflow both its egress ring and the socket buffers.
    let mut market = MarketConfig::small(args.stocks, 1, args.seed);
    market.micro.quote_rate_hz = 0.1; // pin volume regardless of profile defaults
    let day = MarketGenerator::new(market)
        .next_day()
        .expect("one generated day");
    let specs: Vec<StrategyParams> = (0..2)
        .map(|i| StrategyParams {
            dt_seconds: args.dt,
            corr_window: args.window,
            avg_window: 10,
            div_window: 5,
            divergence: 0.0005 * (i as f64 + 1.0),
            ..StrategyParams::paper_default()
        })
        .collect();
    let sweep = SweepConfig::new(args.stocks, specs);

    // Serverless baseline over the identical day: the gold output the
    // served run must reproduce bit-for-bit.
    let baseline = run_sweep_pipeline(day.clone(), &sweep).expect("baseline sweep");

    let sock = std::env::temp_dir().join(format!("serve-smoke-{}.sock", std::process::id()));
    let cfg = ServerConfig {
        token: "smoke".into(),
        egress_cap: args.egress_cap,
        heartbeat_ttl_us: 0, // smoke sessions may be read-only; never reap
        epoch_quotes: args.epoch_quotes,
        // Gate the day on every subscription being in place so all
        // subscribers observe the full sequence: one corr sub per client
        // plus the explainer's extra trades sub.
        start_subscriptions: args.clients + 1,
        start_wait: Duration::from_secs(60),
        ..ServerConfig::new(Endpoint::Unix(sock.clone()))
    };
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smoke: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let endpoint = server.endpoint().clone();
    let rt = RuntimeConfig {
        workers: args.workers,
        capacity: 256,
        telemetry: TelemetryLevel::Full, // lineage on: explain must answer
    };
    let sweep_served = sweep.clone();
    let server_thread = thread::spawn(move || server.serve_day(day, sweep_served, rt));

    let spec = SubscriptionSpec::Corr {
        ctype: args.ctype,
        window: args.window,
        top_k: None,
    };

    // One permanently stalled subscriber, held open until the day ends.
    let (hold_tx, hold_rx) = mpsc::channel();
    let stalled_thread = {
        let (endpoint, spec) = (endpoint.clone(), spec.clone());
        thread::spawn(move || run_stalled(&endpoint, "smoke", "stalled", spec, hold_rx))
    };

    // Healthy subscribers; client 1 doubles as the explainer: same corr
    // subscription as everyone else, plus a trades subscription and a
    // mid-stream lineage query on the same session.
    let healthy: Vec<_> = (1..args.clients)
        .map(|i| {
            let (endpoint, spec) = (endpoint.clone(), spec.clone());
            thread::spawn(move || {
                if i == 1 {
                    let mut client = Client::connect(&endpoint, "smoke", "explainer")?;
                    client.subscribe(SubscriptionSpec::Trades { param_set: None })?;
                    return run_subscriber_on(client, "explainer", spec, Some(40));
                }
                run_subscriber(&endpoint, "smoke", &format!("client{i}"), spec, None)
            })
        })
        .collect();

    let mut stats: Vec<ClientStats> = Vec::new();
    let mut failures = 0usize;
    for h in healthy {
        match h.join().expect("subscriber thread") {
            Ok(s) => stats.push(s),
            Err(e) => {
                eprintln!("smoke: subscriber failed: {e}");
                failures += 1;
            }
        }
    }
    let report = match server_thread.join().expect("server thread") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("smoke: serve_day failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    drop(hold_tx);
    let stalled_session = match stalled_thread.join().expect("stalled thread") {
        Ok(id) => id,
        Err(e) => {
            eprintln!("smoke: stalled client failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // --- Assertions: backpressure isolation + determinism. ---
    let mut ok = failures == 0;
    let mut check = |cond: bool, what: &str| {
        if cond {
            println!("smoke: ok   {what}");
        } else {
            eprintln!("smoke: FAIL {what}");
            ok = false;
        }
    };

    check(
        report.output.trades_per_param == baseline.trades_per_param,
        "trades bit-identical to serverless baseline",
    );
    check(
        report.output.baskets == baseline.baskets,
        "baskets bit-identical to serverless baseline",
    );
    let digests: Vec<u32> = stats.iter().map(|s| s.digest).collect();
    check(
        !digests.is_empty() && digests.windows(2).all(|w| w[0] == w[1]),
        "all healthy subscribers saw identical sequences",
    );
    check(
        stats.iter().all(|s| s.dropped == 0),
        "healthy subscribers observed zero drops",
    );
    let stalled_report = report.sessions.iter().find(|s| s.id == stalled_session);
    check(
        stalled_report.is_some_and(|s| s.dropped > 0),
        "stalled session accrued drops",
    );
    check(
        report
            .sessions
            .iter()
            .filter(|s| s.id != stalled_session)
            .all(|s| s.dropped == 0),
        "no other session accrued drops",
    );
    check(
        report.evictions == stalled_report.map_or(0, |s| s.dropped),
        "every eviction attributed to the stalled session",
    );
    check(
        stats.iter().any(|s| s.explained.is_some()),
        "explain query answered mid-stream",
    );
    if !ok {
        for s in &report.sessions {
            eprintln!(
                "smoke:   session{} {:<10} pushed {:>7} dropped {:>6}",
                s.id, s.client, s.pushed, s.dropped
            );
        }
    }

    let frames = stats.first().map_or(0, |s| s.frames);
    println!(
        "smoke: {} epochs, {} published, {} evictions (stalled session{}), \
         {} healthy x {} frames, digest {:08x}",
        report.epochs,
        report.published,
        report.evictions,
        stalled_session,
        stats.len(),
        frames,
        stats.first().map_or(0, |s| s.digest)
    );
    let _ = std::fs::remove_file(&sock);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    if args.smoke {
        smoke(&args)
    } else if args.scrape {
        scrape(&args)
    } else {
        client_mode(&args)
    }
}
