//! Serving-layer integration tests: fan-out determinism, backpressure
//! isolation, dynamic reconfiguration, and the socket protocol end to
//! end.
//!
//! The fan-out tests drive the [`Router`] in-process (no sockets): a
//! thousand subscriber rings are cheap when every delivery is an `Arc`
//! refcount bump, and taking the socket out of the loop makes the
//! determinism assertions exact. The socket itself (TCP framing, auth,
//! control-lane requests) is covered by the end-to-end tests below.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use marketminer::live::LiveSweepSession;
use marketminer::messages::Message;
use marketminer::pipeline::{run_sweep_pipeline, SweepConfig};
use marketminer::runtime::RuntimeConfig;
use marketminer::shard::Endpoint;
use pairtrade_core::params::StrategyParams;
use pairtrade_core::spec::StrategySpec;
use serve::{
    Client, Popped, Router, Server, ServerConfig, ServerFrame, SessionRegistry, SubscriptionSpec,
};
use stats::correlation::CorrType;
use taq::dataset::DayData;
use taq::generator::{MarketConfig, MarketGenerator};
use telemetry::TelemetryLevel;

/// Cheap paper params: 30 s bars so one generated day yields hundreds of
/// correlation intervals in milliseconds of compute.
fn fast_params() -> StrategyParams {
    StrategyParams {
        dt_seconds: 30,
        corr_window: 20,
        avg_window: 10,
        div_window: 5,
        divergence: 0.0005,
        ..StrategyParams::paper_default()
    }
}

fn small_day(seed: u64) -> DayData {
    let mut cfg = MarketConfig::small(4, 1, seed);
    cfg.micro.quote_rate_hz = 0.05;
    MarketGenerator::new(cfg).next_day().unwrap()
}

fn rt(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        capacity: 256,
        telemetry: TelemetryLevel::Off,
    }
}

/// Worker counts every determinism assertion must hold at.
fn worker_grid() -> Vec<usize> {
    let max = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    vec![1, 2, max]
}

/// One subscriber's observed delivery sequence: `(seq, snapshot
/// identity)` per frame. Identity is the `Arc` pointer — two subscribers
/// agree iff they were handed the very same snapshots in the same order.
fn drain_corr(ring: &serve::EgressRing<ServerFrame>) -> (Vec<(u64, usize)>, u64) {
    let mut seen = Vec::new();
    let mut dropped = 0;
    loop {
        match ring.pop(Duration::from_millis(0)) {
            Popped::Item {
                item:
                    ServerFrame::Event {
                        seq,
                        payload: Message::Corr(snap),
                        ..
                    },
                dropped_before,
            } => {
                dropped += dropped_before;
                seen.push((seq, Arc::as_ptr(&snap) as usize));
            }
            Popped::Item { .. } => {}
            Popped::TimedOut | Popped::Closed => break,
        }
    }
    (seen, dropped)
}

/// ≥1000 simulated subscribers, one permanently stalled: every healthy
/// subscriber sees the identical sequence with zero drops, the stalled
/// ring alone accrues (deterministic, counted) drops, and the DAG's
/// trades and baskets stay bit-identical to a serverless run — at
/// workers 1, 2 and max.
#[test]
fn thousand_subscribers_one_stalled_serverless_identical() {
    let day = small_day(7);
    let sweep = SweepConfig::new(4, vec![fast_params()]);
    let baseline = run_sweep_pipeline(day.clone(), &sweep).unwrap();
    let spec = SubscriptionSpec::Corr {
        ctype: CorrType::Pearson,
        window: 20,
        top_k: None,
    };

    for workers in worker_grid() {
        let registry = SessionRegistry::new();
        let router = Router::new();
        const HEALTHY: usize = 1000;
        let healthy: Vec<_> = (0..HEALTHY)
            .map(|i| {
                let s = registry.open(format!("sub{i}"), 2048, 0);
                router.subscribe(&s, spec.clone());
                s
            })
            .collect();
        // The pathological subscriber: a 4-slot ring nobody drains.
        let stalled = registry.open("stalled".into(), 4, 0);
        router.subscribe(&stalled, spec.clone());

        let mut live = LiveSweepSession::new(sweep.clone(), rt(workers)).unwrap();
        let mut evictions = 0u64;
        for chunk in day.quotes().chunks(500) {
            let cut = live.feed_epoch(chunk);
            evictions += router.publish(&cut, &live.stream_keys()).evictions;
        }
        let output = live.finish();

        assert_eq!(
            output.trades_per_param, baseline.trades_per_param,
            "trades diverged from serverless at workers={workers}"
        );
        assert_eq!(
            output.baskets, baseline.baskets,
            "baskets diverged from serverless at workers={workers}"
        );

        let (gold, gold_dropped) = drain_corr(&healthy[0].ring);
        assert!(gold.len() > 100, "expected a real feed, got {}", gold.len());
        assert_eq!(gold_dropped, 0);
        for s in &healthy[1..] {
            let (seen, dropped) = drain_corr(&s.ring);
            assert_eq!(seen, gold, "sequence diverged at workers={workers}");
            assert_eq!(dropped, 0);
        }
        let (pushed, dropped) = stalled.ring.stats();
        assert_eq!(pushed as usize, gold.len(), "stalled ring missed pushes");
        assert_eq!(
            dropped,
            pushed - 4,
            "stalled ring must drop all but its capacity"
        );
        assert_eq!(
            evictions, dropped,
            "every eviction must belong to the stalled ring"
        );
    }
}

/// Attaching a strategy host mid-day and detaching it again leaves the
/// untouched hosts bit-identical to a static graph — over the socket,
/// at workers 1, 2 and max.
#[test]
fn attach_then_detach_mid_day_leaves_hosts_bit_identical() {
    let day = small_day(11);
    let sweep = SweepConfig::new(4, vec![fast_params()]);
    let baseline = run_sweep_pipeline(day.clone(), &sweep).unwrap();
    let extra = StrategyParams {
        divergence: 0.001,
        ..fast_params()
    };

    for workers in worker_grid() {
        let sock = std::env::temp_dir().join(format!(
            "serve-test-reconf-{}-{workers}.sock",
            std::process::id()
        ));
        let cfg = ServerConfig {
            heartbeat_ttl_us: 0,
            epoch_quotes: 400,
            start_subscriptions: 1,
            start_wait: Duration::from_secs(30),
            ..ServerConfig::new(Endpoint::Unix(sock.clone()))
        };
        let server = Server::bind(cfg).unwrap();
        let endpoint = server.endpoint().clone();
        let (day_s, sweep_s) = (day.clone(), sweep.clone());
        let rt_s = rt(workers);
        let handle = thread::spawn(move || server.serve_day(day_s, sweep_s, rt_s));

        let mut client = Client::connect(&endpoint, "open", "reconf").unwrap();
        let sub = client
            .subscribe(SubscriptionSpec::Corr {
                ctype: CorrType::Pearson,
                window: 20,
                top_k: None,
            })
            .unwrap();
        // Ride the feed; attach after a few frames, detach a while later.
        let mut frames = 0u64;
        let mut attached: Option<u64> = None;
        let mut detached = false;
        loop {
            match client.next_frame() {
                Ok(ServerFrame::Event { sub_id, .. }) if sub_id == sub => {
                    frames += 1;
                    if frames == 3 && attached.is_none() {
                        let param_set = client.attach(StrategySpec::Paper(extra)).unwrap();
                        assert_eq!(param_set, 1, "extra host takes the next param slot");
                        attached = Some(param_set);
                    }
                    if frames == 60 && !detached {
                        client.detach(attached.unwrap() as usize).unwrap();
                        detached = true;
                    }
                }
                Ok(ServerFrame::End) | Err(_) => break,
                Ok(_) => {}
            }
        }
        assert!(detached, "day ended before the detach fired");

        let report = handle.join().unwrap().unwrap();
        assert_eq!(
            report.output.trades_per_param[0], baseline.trades_per_param[0],
            "untouched host diverged after attach/detach at workers={workers}"
        );
        let _ = std::fs::remove_file(&sock);
    }
}

/// The full protocol over TCP: auth, subscribe acks, conflated top-k
/// frames, unsubscribe, outcome listing, explain, `End`.
#[test]
fn tcp_end_to_end_protocol() {
    let day = small_day(13);
    let sweep = SweepConfig::new(4, vec![fast_params()]);
    let cfg = ServerConfig {
        heartbeat_ttl_us: 0,
        epoch_quotes: 400,
        start_subscriptions: 3,
        start_wait: Duration::from_secs(30),
        ..ServerConfig::new(Endpoint::parse("tcp:127.0.0.1:0"))
    };
    let server = Server::bind(cfg).unwrap();
    let endpoint = server.endpoint().clone();
    let rt_full = RuntimeConfig {
        telemetry: TelemetryLevel::Full, // lineage on: explain must answer
        ..rt(2)
    };
    let handle = thread::spawn(move || server.serve_day(day, sweep, rt_full));

    // Client A: conflated top-3 pairs; checks invariants per frame.
    let ep = endpoint.clone();
    let a = thread::spawn(move || {
        let mut c = Client::connect(&ep, "open", "topk").unwrap();
        let sub = c
            .subscribe(SubscriptionSpec::Corr {
                ctype: CorrType::Pearson,
                window: 20,
                top_k: Some(3),
            })
            .unwrap();
        let mut frames = 0u64;
        loop {
            match c.next_frame() {
                Ok(ServerFrame::TopK { sub_id, pairs, .. }) if sub_id == sub => {
                    frames += 1;
                    assert!(pairs.len() <= 3);
                    assert!(
                        pairs.windows(2).all(|w| w[0].rho.abs() >= w[1].rho.abs()),
                        "top-k pairs must be sorted by |rho|"
                    );
                    for p in &pairs {
                        assert!(p.i > p.j, "pairs are canonical (i > j)");
                    }
                }
                Ok(ServerFrame::End) | Err(_) => break,
                Ok(_) => {}
            }
        }
        frames
    });

    // Client B: trades feed + a mid-stream unsubscribe of a second sub.
    let ep = endpoint.clone();
    let b = thread::spawn(move || {
        let mut c = Client::connect(&ep, "open", "trades").unwrap();
        let trades_sub = c
            .subscribe(SubscriptionSpec::Trades { param_set: Some(0) })
            .unwrap();
        let extra = c.subscribe(SubscriptionSpec::Health).unwrap();
        c.send(&serve::ClientFrame::Unsubscribe { sub_id: extra })
            .unwrap();
        let mut trades_frames = 0u64;
        let mut unsubbed = false;
        loop {
            match c.next_frame() {
                Ok(ServerFrame::Unsubscribed { sub_id }) => {
                    assert_eq!(sub_id, extra);
                    unsubbed = true;
                }
                Ok(ServerFrame::Event {
                    sub_id, payload, ..
                }) if sub_id == trades_sub => {
                    trades_frames += 1;
                    assert!(
                        matches!(payload, Message::Basket(_) | Message::Trades(_)),
                        "trades sub must only carry baskets and reports"
                    );
                }
                Ok(ServerFrame::End) | Err(_) => break,
                Ok(_) => {}
            }
        }
        (trades_frames, unsubbed)
    });

    // Client C: control-plane queries while the feed runs elsewhere.
    // Sent immediately — they queue to the epoch loop and are answered
    // at the first cut, so they cannot race the end of the day.
    let mut c = Client::connect(&endpoint, "open", "control").unwrap();
    c.subscribe(SubscriptionSpec::Health).unwrap();
    let outcomes = c.list_outcomes().unwrap();
    assert!(
        outcomes.contains("kind"),
        "outcome listing should render its header: {outcomes:?}"
    );
    let (found, text) = c.explain(0).unwrap();
    if found {
        assert!(
            text.contains("provenance"),
            "explain renders a tree: {text}"
        );
    }

    let topk_frames = a.join().unwrap();
    let (trades_frames, unsubbed) = b.join().unwrap();
    assert!(
        topk_frames > 100,
        "top-k feed delivered {topk_frames} frames"
    );
    assert!(trades_frames > 0, "trades feed delivered nothing");
    assert!(unsubbed, "unsubscribe was never acknowledged");

    let report = handle.join().unwrap().unwrap();
    assert!(report.epochs > 0);
    assert_eq!(report.reaped, 0);
}

/// The observability plane over the socket: a live metrics subscription
/// delivers delta-encoded registry snapshots on its cadence (folding the
/// deltas rebuilds the registry), and `GetMetrics` answers with a
/// well-formed Prometheus text exposition — both without parking the
/// DAG.
#[test]
fn live_metrics_subscription_and_prometheus_scrape() {
    let day = small_day(19);
    let sweep = SweepConfig::new(4, vec![fast_params()]);
    let cfg = ServerConfig {
        heartbeat_ttl_us: 0,
        epoch_quotes: 400,
        start_subscriptions: 1,
        start_wait: Duration::from_secs(30),
        telemetry: TelemetryLevel::Counters,
        ..ServerConfig::new(Endpoint::parse("tcp:127.0.0.1:0"))
    };
    let server = Server::bind(cfg).unwrap();
    let endpoint = server.endpoint().clone();
    let rt_counters = RuntimeConfig {
        telemetry: TelemetryLevel::Counters, // the DAG registry feeds the plane
        ..rt(2)
    };
    let handle = thread::spawn(move || server.serve_day(day, sweep, rt_counters));

    let mut c = Client::connect(&endpoint, "open", "metrics").unwrap();
    let sub = c
        .subscribe(SubscriptionSpec::Telemetry { every: 2 })
        .unwrap();
    // Queue the scrape immediately: it resolves at the first epoch cut.
    c.send(&serve::ClientFrame::GetMetrics).unwrap();

    let mut folded = telemetry::metrics::MetricsSnapshot::default();
    let mut deliveries = 0u64;
    let mut last_epoch = None;
    let mut scrape: Option<(u64, String)> = None;
    loop {
        match c.next_frame() {
            Ok(ServerFrame::Metrics {
                sub_id,
                epoch,
                delta,
                dropped_before,
                ..
            }) if sub_id == sub => {
                assert_eq!(dropped_before, 0, "healthy subscriber must not drop");
                assert_eq!(epoch % 2, 0, "cadence is every second epoch");
                assert!(
                    last_epoch.is_none_or(|prev| epoch > prev),
                    "epochs must be strictly increasing"
                );
                last_epoch = Some(epoch);
                folded.merge(&delta);
                deliveries += 1;
            }
            Ok(ServerFrame::MetricsText { epoch: _, text }) => {
                scrape = Some((0, text));
            }
            Ok(ServerFrame::End) | Err(_) => break,
            Ok(_) => {}
        }
    }
    assert!(deliveries > 2, "got {deliveries} metrics deliveries");

    // Folding the deltas rebuilds a live registry: the serving layer's
    // own counters, per-session ring accounting, and the DAG's counters
    // all land under their labels.
    let count = |label: &str, name: &str| {
        folded
            .counters
            .get(&(label.to_string(), name.to_string()))
            .copied()
    };
    assert!(
        count("serve", "egress.pushed").unwrap_or(0) > 0,
        "{folded:?}"
    );
    // Nobody was reaped, so the counter stays 0 — zero-valued counters
    // are elided from deltas, never delivered as nonzero.
    assert_eq!(count("serve", "sessions.reaped").unwrap_or(0), 0);
    assert!(
        folded
            .counters
            .iter()
            .any(|((label, name), &v)| label.starts_with("session")
                && name == "ring.pushed"
                && v > 0),
        "per-session ring accounting missing"
    );
    assert!(
        folded
            .counters
            .keys()
            .any(|(label, name)| label.starts_with("ohlc-bars") && name == "bars.emitted"),
        "DAG registry missing from the folded feed"
    );

    // The scrape is well-formed Prometheus text: typed families, the
    // serve counter present, every non-comment line `name{...} value`.
    let (_, text) = scrape.expect("GetMetrics never answered");
    assert!(
        text.contains("# TYPE mm_egress_pushed_total counter"),
        "{text}"
    );
    assert!(text.contains("mm_egress_pushed_total{node=\"serve\"}"));
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        assert!(
            series.contains("{node=\"") && series.ends_with('}'),
            "malformed series {series}"
        );
        assert!(value.parse::<f64>().is_ok(), "malformed value {value}");
    }

    let report = handle.join().unwrap().unwrap();
    assert!(report.epochs > 0);
}

/// Bad token and bad protocol version are refused at the door.
#[test]
fn hello_rejects_bad_token_and_version() {
    let day = small_day(17);
    let sweep = SweepConfig::new(4, vec![fast_params()]);
    let cfg = ServerConfig {
        token: "secret".into(),
        heartbeat_ttl_us: 0,
        epoch_quotes: 100_000,
        // Hold the day until the legitimate client is in, so the racing
        // denials happen against a live server.
        start_subscriptions: 1,
        start_wait: Duration::from_secs(30),
        ..ServerConfig::new(Endpoint::parse("tcp:127.0.0.1:0"))
    };
    let server = Server::bind(cfg).unwrap();
    let endpoint = server.endpoint().clone();
    let handle = thread::spawn(move || server.serve_day(day, sweep, rt(1)));

    let err = match Client::connect(&endpoint, "wrong", "intruder") {
        Err(e) => e,
        Ok(_) => panic!("bad token must be denied"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);

    // A stale protocol version is refused even with the right token.
    let mut conn = endpoint.connect().unwrap();
    conn.send(&serve::ClientFrame::Hello {
        version: 99,
        token: "secret".into(),
        client: "time-traveller".into(),
    })
    .unwrap();
    match conn.recv::<ServerFrame>().unwrap() {
        ServerFrame::Denied { reason } => assert!(reason.contains("version")),
        other => panic!("expected Denied, got {other:?}"),
    }

    let mut ok = Client::connect(&endpoint, "secret", "legit").unwrap();
    ok.subscribe(SubscriptionSpec::Health).unwrap(); // releases the gate

    let report = handle.join().unwrap().unwrap();
    // Only the authenticated session ever existed.
    assert_eq!(report.sessions.len(), 1);
}
