//! Property-based tests for the strategy components.

use proptest::prelude::*;

use pairtrade_core::params::StrategyParams;
use pairtrade_core::position::{share_ratio, PairPosition};
use pairtrade_core::retracement::RetracementRule;
use pairtrade_core::signal::DivergenceDetector;
use timeseries::rolling::RangeStats;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn share_ratio_is_cash_neutral_slightly_long(
        long_price in 0.5f64..500.0,
        short_price in 0.5f64..500.0,
    ) {
        let (nl, ns) = share_ratio(long_price, short_price);
        prop_assert!(nl >= 1 && ns >= 1);
        let long_value = nl as f64 * long_price;
        let short_value = ns as f64 * short_price;
        // "as close to cash-neutral as possible, but just slightly on the
        // long side"
        prop_assert!(long_value >= short_value - 1e-9,
            "short-heavy: {long_value} vs {short_value}");
        // And not gratuitously long: the imbalance is less than one share
        // of the larger-priced leg.
        prop_assert!(long_value - short_value <= long_price.max(short_price) + 1e-9);
    }

    #[test]
    fn position_return_is_pnl_over_gross(
        lp in 1.0f64..300.0,
        sp in 1.0f64..300.0,
        move_l in -0.1f64..0.1,
        move_s in -0.1f64..0.1,
    ) {
        let pos = PairPosition::open(0, 0, lp, 1, sp);
        let (xl, xs) = (lp * (1.0 + move_l), sp * (1.0 + move_s));
        let r = pos.trade_return(xl, xs);
        prop_assert!((r * pos.gross_entry_value() - pos.pnl(xl, xs)).abs() < 1e-9);
        // Zero move -> zero PnL.
        prop_assert!(pos.pnl(lp, sp).abs() < 1e-12);
    }

    #[test]
    fn retracement_level_lies_in_the_spread_range(
        low in -100.0f64..100.0,
        width in 0.0f64..50.0,
        entry_frac in 0.0f64..1.0,
        ell in 0.05f64..0.95,
    ) {
        let high = low + width;
        let mean = low + width * 0.5;
        let stats = RangeStats { low, high, mean, len: 60 };
        let entry = low + width * entry_frac;
        let rule = RetracementRule::at_entry(stats, entry, ell);
        prop_assert!(rule.level >= low - 1e-9 && rule.level <= high + 1e-9,
            "level {} outside [{low}, {high}]", rule.level);
        // Direction: entries below the mean exit upward, above exit down.
        prop_assert_eq!(rule.exit_above, entry <= mean);
        // The boundary values always trigger.
        prop_assert!(rule.reached(high) || rule.reached(low));
    }

    #[test]
    fn detector_fires_iff_relative_drop_exceeds_d(
        level in 0.2f64..0.95,
        drop_frac in 0.0f64..0.2,
        d in 0.001f64..0.05,
    ) {
        let params = StrategyParams {
            min_avg_corr: 0.1,
            avg_window: 20,
            div_window: 3,
            divergence: d,
            ..StrategyParams::paper_default()
        };
        let mut det = DivergenceDetector::new(&params);
        for _ in 0..40 {
            det.push(level);
        }
        let dropped = level * (1.0 - drop_frac);
        let state = det.push(dropped);
        // The drop dilutes the average slightly; compute the actual
        // relative drop against the updated average.
        let rel = (state.avg_corr - dropped) / state.avg_corr;
        prop_assert_eq!(
            state.diverged,
            rel > d,
            "rel {} vs d {}: diverged = {}",
            rel,
            d,
            state.diverged
        );
    }

    #[test]
    fn all_grid_vectors_validate(idx in 0usize..42) {
        let grid = pairtrade_core::params::paper_parameter_grid();
        prop_assert!(grid[idx].validate().is_ok());
        prop_assert!(grid[idx].first_active_interval() < grid[idx].intervals_per_day());
    }
}
