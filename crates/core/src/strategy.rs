//! The per-pair strategy state machine — steps 1–6 assembled.
//!
//! A [`PairStrategy`] instance owns one pair under one parameter vector
//! for one trading day. Per interval it ingests the pair's prices and
//! correlation, updates the divergence detector and the rolling spread
//! range, and transitions between *flat* and *open*:
//!
//! ```text
//!            divergence & C̄ > A & enough time before close
//!   FLAT ────────────────────────────────────────────────────▶ OPEN
//!    ▲                                                           │
//!    │   retracement | stop-loss | corr-reversion | HP | EOD     │
//!    └───────────────────────────────────────────────────────────┘
//! ```
//!
//! Invariants enforced here (and property-tested):
//! * no position is ever opened within `ST` intervals of the close;
//! * no position is held longer than `HP` intervals;
//! * every position is closed by end of day;
//! * every trade's entry book is cash-neutral-but-slightly-long.

use timeseries::spread::SpreadTracker;

use crate::exec::ExecutionConfig;
use crate::params::StrategyParams;
use crate::position::PairPosition;
use crate::retracement::RetracementRule;
use crate::signal::DivergenceDetector;
use crate::trade::{ExitReason, Trade};

/// Per-interval market inputs for one pair.
///
/// `price_i` / `w_return_i` belong to the pair's first (higher-index)
/// stock, `price_j` / `w_return_j` to the second; the spread is
/// `price_i − price_j`.
#[derive(Debug, Clone, Copy)]
pub struct IntervalInput {
    /// Absolute interval index within the day.
    pub s: usize,
    /// Price of stock `i` at `s`.
    pub price_i: f64,
    /// Price of stock `j` at `s`.
    pub price_j: f64,
    /// Pair correlation `C(s)` (trailing `M` returns).
    pub corr: f64,
    /// `W`-interval trailing return of stock `i`.
    pub w_return_i: f64,
    /// `W`-interval trailing return of stock `j`.
    pub w_return_j: f64,
}

/// Per-interval data requirements a strategy declares to its host.
///
/// The host computes derived inputs (trailing returns) once per pair per
/// interval; the declaration tells it *which* derivation this strategy
/// family actually consumes, so a host never silently feeds a strategy
/// inputs computed under another family's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputNeeds {
    /// Window (in intervals) for the trailing returns supplied as
    /// `w_return_i` / `w_return_j`. `0` means the strategy ignores them
    /// and the host may skip the computation entirely.
    pub w_return_window: usize,
}

/// An interval-driven pair-trading strategy — the pluggable unit a
/// strategy host runs one instance of per pair.
///
/// The contract every implementor (and every combinator) must keep:
///
/// * **Interval-driven** — [`Strategy::on_interval`] is called with
///   strictly increasing `s`; at most one position action (open *or*
///   close) may happen per interval.
/// * **Trades are append-only** — [`Strategy::trades`] only ever grows,
///   and a closed trade is never mutated. Hosts detect closes by length.
/// * **Open position is observable** — while [`Strategy::is_open`],
///   [`Strategy::open_position`] returns the live position so the host
///   can emit entry/exit order legs without duplicating sizing logic.
/// * **Checkpointable** — [`Strategy::encode_state`] /
///   [`Strategy::decode_state`] round-trip the *entire* mutable state
///   bit-exactly (floats travel as raw IEEE bits), so a restored
///   strategy continues the day byte-identically. Static configuration
///   travels in the [`crate::spec::StrategySpec`], not the state bytes.
/// * **Every day ends flat** — [`Strategy::finish`] closes any dangling
///   position at the last seen prices and returns the day's trades.
pub trait Strategy: Send {
    /// The pair being traded, canonical `(max, min)` order.
    fn pair(&self) -> (usize, usize);

    /// True while a position is open.
    fn is_open(&self) -> bool;

    /// The live position while open.
    fn open_position(&self) -> Option<&PairPosition>;

    /// Trades completed so far today (append-only).
    fn trades(&self) -> &[Trade];

    /// Derived inputs this strategy consumes.
    fn needs(&self) -> InputNeeds;

    /// Process one interval. Inputs must arrive in increasing `s` order.
    fn on_interval(&mut self, input: IntervalInput);

    /// Force-close any open position at the last seen prices with the
    /// given reason. No-op while flat.
    fn force_close(&mut self, reason: ExitReason);

    /// Force-close any open position at interval `s` using the given
    /// prices (the combinator hook: a risk overlay exits its inner
    /// strategy at the prices of the interval that tripped the rule).
    /// No-op while flat.
    fn force_close_at(&mut self, s: usize, price_i: f64, price_j: f64, reason: ExitReason);

    /// End the day: close any open position at the last seen prices
    /// (`EndOfDay`) and drain the day's trades. The strategy is spent
    /// afterwards — hosts call this exactly once.
    fn finish(&mut self) -> Vec<Trade>;

    /// Clone into a fresh box (hosts snapshot themselves by `Clone`).
    fn clone_box(&self) -> Box<dyn Strategy>;

    /// Serialize the full mutable state for a durable checkpoint.
    fn encode_state(&self, w: &mut wire::Writer);

    /// Restore state captured by [`Strategy::encode_state`]. The receiver
    /// must have been built from the same spec for the same pair.
    fn decode_state(&mut self, r: &mut wire::Reader<'_>) -> Result<(), wire::WireError>;
}

impl Clone for Box<dyn Strategy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[derive(Debug, Clone)]
struct OpenState {
    position: PairPosition,
    rule: RetracementRule,
}

/// The state machine for one pair under one parameter vector.
#[derive(Debug, Clone)]
pub struct PairStrategy {
    pair: (usize, usize),
    params: StrategyParams,
    exec: ExecutionConfig,
    detector: DivergenceDetector,
    spread: SpreadTracker,
    open: Option<OpenState>,
    trades: Vec<Trade>,
    last_prices: Option<(usize, f64, f64)>,
    intervals: usize,
}

impl PairStrategy {
    /// New strategy for a pair. `pair` is stored canonically as
    /// `(max, min)`.
    pub fn new(pair: (usize, usize), params: StrategyParams, exec: ExecutionConfig) -> Self {
        let pair = if pair.0 > pair.1 {
            pair
        } else {
            (pair.1, pair.0)
        };
        PairStrategy {
            pair,
            params,
            exec,
            detector: DivergenceDetector::new(&params),
            spread: SpreadTracker::new(params.spread_window),
            open: None,
            trades: Vec::new(),
            last_prices: None,
            intervals: params.intervals_per_day(),
        }
    }

    /// The pair being traded (canonical order).
    pub fn pair(&self) -> (usize, usize) {
        self.pair
    }

    /// True while a position is open.
    pub fn is_open(&self) -> bool {
        self.open.is_some()
    }

    /// Trades completed so far today.
    pub fn trades(&self) -> &[Trade] {
        &self.trades
    }

    fn leg_exit_prices(&self, open: &OpenState, price_i: f64, price_j: f64) -> (f64, f64) {
        let long_exit = if open.position.long.stock == self.pair.0 {
            price_i
        } else {
            price_j
        };
        let short_exit = if open.position.short.stock == self.pair.0 {
            price_i
        } else {
            price_j
        };
        (long_exit, short_exit)
    }

    fn close(&mut self, s: usize, price_i: f64, price_j: f64, reason: ExitReason) {
        let open = self.open.take().expect("close requires an open position");
        let (long_exit, short_exit) = self.leg_exit_prices(&open, price_i, price_j);
        let gross = open.position.gross_entry_value();
        let cost = self
            .exec
            .round_trip_cost(open.position.total_shares(), gross);
        let pnl = open.position.pnl(long_exit, short_exit) - cost;
        self.trades.push(Trade {
            pair: self.pair,
            entry_interval: open.position.entry_interval,
            exit_interval: s,
            reason,
            pnl,
            gross,
            ret: pnl / gross,
            position: open.position,
        });
    }

    /// Process one interval. Inputs must arrive in increasing `s` order.
    pub fn on_interval(&mut self, input: IntervalInput) {
        let IntervalInput {
            s,
            price_i,
            price_j,
            corr,
            w_return_i,
            w_return_j,
        } = input;
        debug_assert!(s < self.intervals, "interval beyond the trading day");
        self.last_prices = Some((s, price_i, price_j));

        let spread = price_i - price_j;
        let spread_stats = self.spread.push(spread);
        let signal = self.detector.push(corr);

        // --- exit logic -------------------------------------------------
        if let Some(open) = &self.open {
            let (long_exit, short_exit) = self.leg_exit_prices(open, price_i, price_j);
            let unrealized = open.position.trade_return(long_exit, short_exit);
            let holding = s - open.position.entry_interval;

            let reason = if self.exec.stop_loss.is_some_and(|stop| unrealized <= -stop) {
                Some(ExitReason::StopLoss)
            } else if open.rule.reached(spread) {
                Some(ExitReason::Retracement)
            } else if self.exec.corr_reversion_exit && self.detector.corr_reverted() {
                Some(ExitReason::CorrReversion)
            } else if holding >= self.params.max_holding {
                Some(ExitReason::MaxHolding)
            } else if s + 1 >= self.intervals {
                Some(ExitReason::EndOfDay)
            } else {
                None
            };
            if let Some(reason) = reason {
                self.close(s, price_i, price_j, reason);
            }
            return; // one action per interval: never close-and-reopen at s
        }

        // --- entry logic ------------------------------------------------
        if !signal.diverged {
            return;
        }
        if s < self.params.first_active_interval() {
            return; // correlation / averaging windows not yet warm
        }
        // ST: "minimum time before market close required to open a new
        // position".
        let remaining = self.intervals - 1 - s;
        if remaining < self.params.min_time_before_close {
            return;
        }
        if !(price_i > 0.0 && price_j > 0.0 && price_i.is_finite() && price_j.is_finite()) {
            return;
        }
        // Over-performer = higher W-period return; long the under-performer.
        let (long_stock, long_price, short_stock, short_price) = if w_return_i > w_return_j {
            (self.pair.1, price_j, self.pair.0, price_i)
        } else if w_return_j > w_return_i {
            (self.pair.0, price_i, self.pair.1, price_j)
        } else {
            return; // no performance differential, no trade
        };
        let position = PairPosition::open(s, long_stock, long_price, short_stock, short_price);
        let rule = RetracementRule::at_entry(spread_stats, spread, self.params.retracement);
        self.open = Some(OpenState { position, rule });
    }

    /// Force-close any open position at the last seen prices with the
    /// given reason (defensive flattening when a leg's symbol is marked
    /// degraded). No-op while flat or before the first interval.
    pub fn force_close(&mut self, reason: ExitReason) {
        if self.open.is_none() {
            return;
        }
        let (s, pi, pj) = self
            .last_prices
            .expect("an open position implies at least one interval");
        self.close(s, pi, pj, reason);
    }

    /// End the day: any open position is reversed at the last seen prices
    /// ("we should reverse all positions at the end of the trading day").
    /// Returns all trades.
    pub fn finish_day(mut self) -> Vec<Trade> {
        Strategy::finish(&mut self)
    }
}

impl Strategy for PairStrategy {
    fn pair(&self) -> (usize, usize) {
        self.pair
    }

    fn is_open(&self) -> bool {
        self.open.is_some()
    }

    fn open_position(&self) -> Option<&PairPosition> {
        self.open.as_ref().map(|o| &o.position)
    }

    fn trades(&self) -> &[Trade] {
        &self.trades
    }

    fn needs(&self) -> InputNeeds {
        // The paper's entry rule compares W-interval trailing returns.
        InputNeeds {
            w_return_window: self.params.avg_window,
        }
    }

    fn on_interval(&mut self, input: IntervalInput) {
        PairStrategy::on_interval(self, input);
    }

    fn force_close(&mut self, reason: ExitReason) {
        PairStrategy::force_close(self, reason);
    }

    fn force_close_at(&mut self, s: usize, price_i: f64, price_j: f64, reason: ExitReason) {
        if self.open.is_some() {
            self.close(s, price_i, price_j, reason);
        }
    }

    fn finish(&mut self) -> Vec<Trade> {
        if self.open.is_some() {
            let (s, pi, pj) = self
                .last_prices
                .expect("an open position implies at least one interval");
            self.close(s, pi, pj, ExitReason::EndOfDay);
        }
        std::mem::take(&mut self.trades)
    }

    fn clone_box(&self) -> Box<dyn Strategy> {
        Box::new(self.clone())
    }

    fn encode_state(&self, w: &mut wire::Writer) {
        wire::Codec::encode(self, w);
    }

    fn decode_state(&mut self, r: &mut wire::Reader<'_>) -> Result<(), wire::WireError> {
        *self = <PairStrategy as wire::Codec>::decode(r)?;
        Ok(())
    }
}

impl wire::Codec for OpenState {
    fn encode(&self, w: &mut wire::Writer) {
        self.position.encode(w);
        self.rule.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(OpenState {
            position: PairPosition::decode(r)?,
            rule: RetracementRule::decode(r)?,
        })
    }
}

// The full mid-day state machine: every field travels verbatim so a
// restored strategy continues bit-exactly (the spread tracker's running
// sum and the detector's windows are eviction-history dependent).
impl wire::Codec for PairStrategy {
    fn encode(&self, w: &mut wire::Writer) {
        self.pair.encode(w);
        self.params.encode(w);
        self.exec.encode(w);
        self.detector.encode(w);
        self.spread.encode(w);
        self.open.encode(w);
        self.trades.encode(w);
        self.last_prices.encode(w);
        self.intervals.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(PairStrategy {
            pair: <(usize, usize)>::decode(r)?,
            params: StrategyParams::decode(r)?,
            exec: ExecutionConfig::decode(r)?,
            detector: DivergenceDetector::decode(r)?,
            spread: SpreadTracker::decode(r)?,
            open: Option::<OpenState>::decode(r)?,
            trades: Vec::<Trade>::decode(r)?,
            last_prices: Option::<(usize, f64, f64)>::decode(r)?,
            intervals: usize::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::correlation::CorrType;

    /// Small, fast parameter vector for driving the machine by hand.
    fn test_params() -> StrategyParams {
        StrategyParams {
            dt_seconds: 30,
            ctype: CorrType::Pearson,
            min_avg_corr: 0.1,
            corr_window: 4,
            avg_window: 4,
            div_window: 3,
            divergence: 0.01,
            retracement: 1.0 / 3.0,
            spread_window: 4,
            max_holding: 5,
            min_time_before_close: 3,
        }
    }

    fn input(s: usize, pi: f64, pj: f64, corr: f64, wi: f64, wj: f64) -> IntervalInput {
        IntervalInput {
            s,
            price_i: pi,
            price_j: pj,
            corr,
            w_return_i: wi,
            w_return_j: wj,
        }
    }

    /// Warm the detector with stable correlation from the first active
    /// interval onward.
    fn warmed(params: StrategyParams) -> (PairStrategy, usize) {
        let mut st = PairStrategy::new((1, 0), params, ExecutionConfig::paper());
        let start = params.first_active_interval();
        for s in 0..start + 5 {
            st.on_interval(input(s, 130.0, 30.0, 0.8, 0.0, 0.0));
        }
        (st, start + 5)
    }

    #[test]
    fn canonical_pair_ordering() {
        let st = PairStrategy::new((2, 7), test_params(), ExecutionConfig::paper());
        assert_eq!(st.pair(), (7, 2));
    }

    #[test]
    fn no_trade_without_divergence() {
        let (st, _) = warmed(test_params());
        assert!(!st.is_open());
        assert!(st.finish_day().is_empty());
    }

    #[test]
    fn divergence_opens_long_underperformer() {
        let (mut st, s) = warmed(test_params());
        // Correlation drops 5% (> 1% threshold); stock i over-performed.
        st.on_interval(input(s, 131.0, 29.5, 0.76, 0.01, -0.01));
        assert!(st.is_open());
        let trades = st.finish_day();
        assert_eq!(trades.len(), 1);
        let pos = trades[0].position;
        // i (stock 1, price 131) over-performed -> short it, long j.
        assert_eq!(pos.short.stock, 1);
        assert_eq!(pos.long.stock, 0);
        // Ratio: long cheap at 29.5 vs short 131: ceil(131/29.5) = 5.
        assert_eq!(pos.long.shares, 5);
        assert_eq!(pos.short.shares, 1);
        assert!(pos.net_entry_exposure() >= 0.0);
    }

    #[test]
    fn max_holding_forces_exit() {
        let (mut st, s) = warmed(test_params());
        st.on_interval(input(s, 131.0, 29.5, 0.76, 0.01, -0.01));
        assert!(st.is_open());
        // Keep the spread glued so retracement never fires (rule was set
        // from a rising-spread entry; hold spread exactly at entry).
        let mut k = s + 1;
        while st.is_open() {
            st.on_interval(input(k, 131.0, 29.5, 0.76, 0.0, 0.0));
            k += 1;
            assert!(k < s + 20, "HP must have fired by now");
        }
        let trades = st.trades().to_vec();
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].reason, ExitReason::MaxHolding);
        assert!(trades[0].holding_intervals() <= test_params().max_holding);
    }

    #[test]
    fn retracement_exit_books_profit() {
        let params = test_params();
        let mut st = PairStrategy::new((1, 0), params, ExecutionConfig::paper());
        let start = params.first_active_interval();
        // Spread oscillates 98..102 during warmup so the range is wide.
        for s in 0..start {
            let wiggle = (s % 5) as f64; // 0..4
            st.on_interval(input(s, 128.0 + wiggle, 30.0, 0.8, 0.0, 0.0));
        }
        // Divergence at the top of the range: i over-performed, spread 102.
        st.on_interval(input(start, 132.0, 30.0, 0.7, 0.02, 0.0));
        assert!(st.is_open());
        // Spread falls back toward the mean -> retracement (exit_below).
        let mut s = start + 1;
        st.on_interval(input(s, 131.0, 30.0, 0.8, 0.0, 0.0));
        if st.is_open() {
            s += 1;
            st.on_interval(input(s, 128.0, 30.0, 0.8, 0.0, 0.0));
        }
        assert!(!st.is_open(), "retracement should have fired");
        let trades = st.finish_day();
        assert_eq!(trades[0].reason, ExitReason::Retracement);
        // Short i at 132, exit 131 or lower: profit.
        assert!(trades[0].pnl > 0.0);
        assert!(trades[0].is_win());
    }

    #[test]
    fn no_entries_near_the_close() {
        let params = test_params();
        let intervals = params.intervals_per_day();
        let mut st = PairStrategy::new((1, 0), params, ExecutionConfig::paper());
        // Warm right up to the ST fence, then force a divergence inside it.
        for s in 0..intervals {
            let corr = if s >= intervals - 2 { 0.5 } else { 0.8 };
            st.on_interval(input(s, 130.0, 30.0, corr, 0.01, -0.01));
            if intervals - 1 - s < params.min_time_before_close {
                assert!(!st.is_open(), "entered within ST of close at s={s}");
            }
        }
        assert!(st.finish_day().is_empty());
    }

    #[test]
    fn end_of_day_flattens() {
        let params = test_params();
        let intervals = params.intervals_per_day();
        let mut st = PairStrategy::new((1, 0), params, ExecutionConfig::paper());
        let start = params.first_active_interval();
        for s in 0..start {
            st.on_interval(input(s, 130.0, 30.0, 0.8, 0.0, 0.0));
        }
        // Enter, then feed flat prices with HP effectively infinite by
        // re-opening whenever closed; final close must be EndOfDay or
        // MaxHolding, and nothing may survive finish_day.
        st.on_interval(input(start, 130.0, 29.0, 0.7, 0.01, -0.01));
        for s in start + 1..intervals {
            st.on_interval(input(s, 130.0, 29.0, 0.7, 0.0, 0.0));
        }
        let trades = st.finish_day();
        assert!(!trades.is_empty());
        // No trade may exit after the last interval.
        assert!(trades.iter().all(|t| t.exit_interval < intervals));
    }

    #[test]
    fn finish_day_closes_dangling_position() {
        let (mut st, s) = warmed(test_params());
        st.on_interval(input(s, 131.0, 29.5, 0.70, 0.01, -0.01));
        assert!(st.is_open());
        let trades = st.finish_day();
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].reason, ExitReason::EndOfDay);
    }

    #[test]
    fn stop_loss_extension_fires_first() {
        let params = test_params();
        let exec = ExecutionConfig {
            stop_loss: Some(0.005),
            ..ExecutionConfig::paper()
        };
        let mut st = PairStrategy::new((1, 0), params, exec);
        let start = params.first_active_interval();
        for s in 0..start {
            st.on_interval(input(s, 130.0, 30.0, 0.8, 0.0, 0.0));
        }
        st.on_interval(input(start, 130.0, 30.0, 0.7, -0.01, 0.01));
        assert!(st.is_open(), "entered");
        // The divergence widens violently against us: long i at 130
        // collapses.
        st.on_interval(input(start + 1, 120.0, 30.0, 0.7, 0.0, 0.0));
        let trades = st.finish_day();
        assert_eq!(trades[0].reason, ExitReason::StopLoss);
        assert!(trades[0].ret < -0.005);
    }

    #[test]
    fn transaction_costs_reduce_returns() {
        let run = |exec: ExecutionConfig| -> f64 {
            let params = test_params();
            let start = params.first_active_interval() + 5;
            let mut st = PairStrategy::new((1, 0), params, exec);
            for k in 0..start {
                st.on_interval(input(k, 130.0, 30.0, 0.8, 0.0, 0.0));
            }
            st.on_interval(input(start, 131.0, 29.5, 0.76, 0.01, -0.01));
            st.on_interval(input(start + 1, 130.0, 30.0, 0.8, 0.0, 0.0));
            let trades = st.finish_day();
            assert!(!trades.is_empty());
            trades[0].ret
        };
        let free = run(ExecutionConfig::paper());
        let costly = run(ExecutionConfig::with_costs());
        assert!(costly < free, "costs must eat into the return");
    }

    #[test]
    fn force_close_flattens_with_given_reason() {
        let (mut st, s) = warmed(test_params());
        st.on_interval(input(s, 131.0, 29.5, 0.70, 0.01, -0.01));
        assert!(st.is_open());
        st.force_close(ExitReason::Degraded);
        assert!(!st.is_open());
        assert_eq!(st.trades().len(), 1);
        assert_eq!(st.trades()[0].reason, ExitReason::Degraded);
        assert_eq!(st.trades()[0].exit_interval, s);
        // Idempotent while flat.
        st.force_close(ExitReason::Degraded);
        assert_eq!(st.trades().len(), 1);
    }

    #[test]
    fn one_action_per_interval() {
        // A close at interval s must not be followed by an open at s.
        let (mut st, s) = warmed(test_params());
        st.on_interval(input(s, 131.0, 29.5, 0.70, 0.01, -0.01));
        assert!(st.is_open());
        // This interval both hits HP (if fed long enough) and diverges;
        // drive to the forced exit and check the machine is flat at that s.
        let mut k = s + 1;
        while st.is_open() {
            st.on_interval(input(k, 131.0, 29.5, 0.60, 0.01, -0.01));
            k += 1;
        }
        let exit_s = st.trades().last().unwrap().exit_interval;
        assert_eq!(exit_s, k - 1);
        assert!(!st.is_open(), "no same-interval re-entry");
    }
}
