//! Kalman-filtered dynamic hedge-ratio strategy (the Jansen method).
//!
//! The paper's strategy treats the spread `Pᵢ − Pⱼ` as stationary around
//! a rolling range; the Kalman family instead estimates a *time-varying*
//! linear relation `Pᵢ(s) = α(s) + β(s)·Pⱼ(s) + ε(s)` with a
//! two-dimensional random-walk state `[α, β]`, and trades the z-score of
//! the filter's one-step-ahead innovation:
//!
//! ```text
//!   e(s) = Pᵢ(s) − (α̂ + β̂·Pⱼ(s))          innovation
//!   S(s) = H P Hᵀ + R,  H = [1, Pⱼ(s)]     innovation variance
//!   z(s) = e(s) / √S(s)
//! ```
//!
//! Entry when `|z| > z_entry` (short the rich leg, long the cheap one);
//! exit when the z-score crosses back through `±z_exit` toward zero —
//! i.e. the mispricing has retraced. The transition noise is the standard
//! one-knob parameterization `Q = δ/(1−δ)·I`.
//!
//! Everything is scalar arithmetic in a fixed order, so the filter is
//! bit-deterministic and its full state (α, β, the 2×2 covariance, the
//! open position) checkpoints exactly through the wire codec.

use serde::{Deserialize, Serialize};
use stats::correlation::CorrType;

use crate::exec::ExecutionConfig;
use crate::params::InvalidParams;
use crate::position::PairPosition;
use crate::strategy::{InputNeeds, IntervalInput, Strategy};
use crate::trade::{ExitReason, Trade};

/// Parameter vector of the Kalman dynamic hedge-ratio family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KalmanParams {
    /// Δs — interval width in seconds (must match the sweep's bar grid).
    pub dt_seconds: u32,
    /// Correlation treatment of the snapshot stream that clocks this
    /// strategy (the filter itself does not consume the matrix, but every
    /// strategy in a shared-stream graph rides one `(Ctype, M)` stream).
    pub ctype: CorrType,
    /// M — window of the clocking correlation stream.
    pub corr_window: usize,
    /// δ — transition-noise knob; `Q = δ/(1−δ)·I`. Must lie in (0, 1).
    pub delta: f64,
    /// R — observation noise variance. Must be positive.
    pub r: f64,
    /// Entry threshold on `|z|`.
    pub z_entry: f64,
    /// Exit threshold: close when the z-score retraces inside `±z_exit`
    /// (or crosses zero). Must satisfy `0 ≤ z_exit < z_entry`.
    pub z_exit: f64,
    /// Observations the filter must ingest before it may trade.
    pub warmup: usize,
    /// HP — maximum holding period (intervals).
    pub max_holding: usize,
    /// ST — minimum intervals before close to open a new position.
    pub min_time_before_close: usize,
}

impl KalmanParams {
    /// A reasonable default vector on the paper's 30-second grid:
    /// `δ = 1e-4`, `R = 1e-3`, entry at `|z| > 2`, exit on retracement
    /// through zero — the textbook Jansen configuration.
    pub fn jansen_default() -> Self {
        KalmanParams {
            dt_seconds: 30,
            ctype: CorrType::Pearson,
            corr_window: 100,
            delta: 1e-4,
            r: 1e-3,
            z_entry: 2.0,
            z_exit: 0.0,
            warmup: 100,
            max_holding: 40,
            min_time_before_close: 20,
        }
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        let err = |m: &str| Err(InvalidParams(m.to_string()));
        if self.dt_seconds == 0 || !taq::time::SECONDS_PER_SESSION.is_multiple_of(self.dt_seconds) {
            return err("Δs must be positive and divide the 23400-second session");
        }
        if self.corr_window < 2 {
            return err("M must be at least 2");
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return err("Kalman δ must lie strictly between 0 and 1");
        }
        if !(self.r > 0.0 && self.r.is_finite()) {
            return err("Kalman R must be positive and finite");
        }
        if !(self.z_entry > 0.0 && self.z_entry.is_finite()) {
            return err("z_entry must be positive and finite");
        }
        if !(self.z_exit >= 0.0 && self.z_exit < self.z_entry) {
            return err("z_exit must satisfy 0 <= z_exit < z_entry");
        }
        if self.warmup == 0 {
            return err("warmup must be positive");
        }
        if self.max_holding == 0 {
            return err("HP must be positive");
        }
        let intervals = (taq::time::SECONDS_PER_SESSION / self.dt_seconds) as usize;
        if self.warmup + self.min_time_before_close >= intervals {
            return err("warmup + ST must leave room to trade within the day");
        }
        Ok(())
    }

    /// Intervals per trading day at this Δs.
    pub fn intervals_per_day(&self) -> usize {
        (taq::time::SECONDS_PER_SESSION / self.dt_seconds) as usize
    }

    /// Compact label for reports, e.g. `Kalman/Pearson/M100/δ1e-4/z2.0-0.0/HP40`.
    pub fn label(&self) -> String {
        format!(
            "Kalman/{}/M{}/d{:e}/z{}-{}/HP{}",
            self.ctype, self.corr_window, self.delta, self.z_entry, self.z_exit, self.max_holding
        )
    }
}

impl wire::Codec for KalmanParams {
    fn encode(&self, w: &mut wire::Writer) {
        self.dt_seconds.encode(w);
        self.ctype.encode(w);
        self.corr_window.encode(w);
        self.delta.encode(w);
        self.r.encode(w);
        self.z_entry.encode(w);
        self.z_exit.encode(w);
        self.warmup.encode(w);
        self.max_holding.encode(w);
        self.min_time_before_close.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        let p = KalmanParams {
            dt_seconds: u32::decode(r)?,
            ctype: CorrType::decode(r)?,
            corr_window: usize::decode(r)?,
            delta: f64::decode(r)?,
            r: f64::decode(r)?,
            z_entry: f64::decode(r)?,
            z_exit: f64::decode(r)?,
            warmup: usize::decode(r)?,
            max_holding: usize::decode(r)?,
            min_time_before_close: usize::decode(r)?,
        };
        p.validate()
            .map_err(|_| wire::WireError::Invalid("kalman parameters"))?;
        Ok(p)
    }
}

#[derive(Debug, Clone)]
struct OpenKalman {
    position: PairPosition,
    /// True when the entry shorted leg `i` (z was positive: `i` rich).
    short_i: bool,
}

impl wire::Codec for OpenKalman {
    fn encode(&self, w: &mut wire::Writer) {
        self.position.encode(w);
        self.short_i.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(OpenKalman {
            position: PairPosition::decode(r)?,
            short_i: bool::decode(r)?,
        })
    }
}

/// The Kalman dynamic hedge-ratio state machine for one pair.
#[derive(Debug, Clone)]
pub struct KalmanStrategy {
    pair: (usize, usize),
    params: KalmanParams,
    exec: ExecutionConfig,
    intervals: usize,
    /// State estimate `[α, β]`.
    alpha: f64,
    beta: f64,
    /// State covariance, symmetric 2×2 stored as `[p00, p01, p11]`.
    p: [f64; 3],
    /// Valid observations ingested so far.
    seen: usize,
    open: Option<OpenKalman>,
    trades: Vec<Trade>,
    last_prices: Option<(usize, f64, f64)>,
}

impl KalmanStrategy {
    /// New strategy for a pair. `pair` is stored canonically as
    /// `(max, min)`.
    pub fn new(pair: (usize, usize), params: KalmanParams, exec: ExecutionConfig) -> Self {
        let pair = if pair.0 > pair.1 {
            pair
        } else {
            (pair.1, pair.0)
        };
        KalmanStrategy {
            pair,
            params,
            exec,
            intervals: params.intervals_per_day(),
            alpha: 0.0,
            beta: 0.0,
            // A loose deterministic prior: the filter localizes within a
            // few observations, and `warmup` fences trading until then.
            p: [1.0, 0.0, 1.0],
            seen: 0,
            open: None,
            trades: Vec::new(),
            last_prices: None,
        }
    }

    /// One filter step: predict, innovate, update. `x` is the hedge leg
    /// (`Pⱼ`), `y` the target leg (`Pᵢ`). Returns the innovation z-score.
    fn filter_update(&mut self, x: f64, y: f64) -> f64 {
        let q = self.params.delta / (1.0 - self.params.delta);
        let [mut p00, p01, mut p11] = self.p;
        p00 += q;
        p11 += q;
        let e = y - (self.alpha + self.beta * x);
        let s_var = p00 + 2.0 * x * p01 + x * x * p11 + self.params.r;
        let k0 = (p00 + x * p01) / s_var;
        let k1 = (p01 + x * p11) / s_var;
        self.alpha += k0 * e;
        self.beta += k1 * e;
        self.p = [
            (1.0 - k0) * p00 - k0 * x * p01,
            (1.0 - k0) * p01 - k0 * x * p11,
            -k1 * p01 + (1.0 - k1 * x) * p11,
        ];
        e / s_var.sqrt()
    }

    fn leg_exit_prices(&self, position: &PairPosition, price_i: f64, price_j: f64) -> (f64, f64) {
        let long_exit = if position.long.stock == self.pair.0 {
            price_i
        } else {
            price_j
        };
        let short_exit = if position.short.stock == self.pair.0 {
            price_i
        } else {
            price_j
        };
        (long_exit, short_exit)
    }

    fn close(&mut self, s: usize, price_i: f64, price_j: f64, reason: ExitReason) {
        let open = self.open.take().expect("close requires an open position");
        let (long_exit, short_exit) = self.leg_exit_prices(&open.position, price_i, price_j);
        let gross = open.position.gross_entry_value();
        let cost = self
            .exec
            .round_trip_cost(open.position.total_shares(), gross);
        let pnl = open.position.pnl(long_exit, short_exit) - cost;
        self.trades.push(Trade {
            pair: self.pair,
            entry_interval: open.position.entry_interval,
            exit_interval: s,
            reason,
            pnl,
            gross,
            ret: pnl / gross,
            position: open.position,
        });
    }
}

impl Strategy for KalmanStrategy {
    fn pair(&self) -> (usize, usize) {
        self.pair
    }

    fn is_open(&self) -> bool {
        self.open.is_some()
    }

    fn open_position(&self) -> Option<&PairPosition> {
        self.open.as_ref().map(|o| &o.position)
    }

    fn trades(&self) -> &[Trade] {
        &self.trades
    }

    fn needs(&self) -> InputNeeds {
        // Entries key off the innovation z-score, not trailing returns.
        InputNeeds { w_return_window: 0 }
    }

    fn on_interval(&mut self, input: IntervalInput) {
        let IntervalInput {
            s,
            price_i,
            price_j,
            ..
        } = input;
        debug_assert!(s < self.intervals, "interval beyond the trading day");
        self.last_prices = Some((s, price_i, price_j));

        let valid = price_i > 0.0 && price_j > 0.0 && price_i.is_finite() && price_j.is_finite();
        let z = if valid {
            self.seen += 1;
            Some(self.filter_update(price_j, price_i))
        } else {
            None
        };

        // --- exit logic -------------------------------------------------
        if let Some(open) = &self.open {
            let holding = s - open.position.entry_interval;
            let retraced = z.is_some_and(|z| {
                if open.short_i {
                    z <= self.params.z_exit
                } else {
                    z >= -self.params.z_exit
                }
            });
            let reason = if retraced {
                Some(ExitReason::Retracement)
            } else if holding >= self.params.max_holding {
                Some(ExitReason::MaxHolding)
            } else if s + 1 >= self.intervals {
                Some(ExitReason::EndOfDay)
            } else {
                None
            };
            if let Some(reason) = reason {
                self.close(s, price_i, price_j, reason);
            }
            return; // one action per interval
        }

        // --- entry logic ------------------------------------------------
        let Some(z) = z else { return };
        if self.seen <= self.params.warmup {
            return; // filter not localized yet
        }
        let remaining = self.intervals - 1 - s;
        if remaining < self.params.min_time_before_close {
            return;
        }
        if z.abs() <= self.params.z_entry {
            return;
        }
        // z > 0: leg i rich relative to the hedge — short i, long j.
        let (long_stock, long_price, short_stock, short_price) = if z > 0.0 {
            (self.pair.1, price_j, self.pair.0, price_i)
        } else {
            (self.pair.0, price_i, self.pair.1, price_j)
        };
        let position = PairPosition::open(s, long_stock, long_price, short_stock, short_price);
        self.open = Some(OpenKalman {
            position,
            short_i: z > 0.0,
        });
    }

    fn force_close(&mut self, reason: ExitReason) {
        if self.open.is_none() {
            return;
        }
        let (s, pi, pj) = self
            .last_prices
            .expect("an open position implies at least one interval");
        self.close(s, pi, pj, reason);
    }

    fn force_close_at(&mut self, s: usize, price_i: f64, price_j: f64, reason: ExitReason) {
        if self.open.is_some() {
            self.close(s, price_i, price_j, reason);
        }
    }

    fn finish(&mut self) -> Vec<Trade> {
        if self.open.is_some() {
            let (s, pi, pj) = self
                .last_prices
                .expect("an open position implies at least one interval");
            self.close(s, pi, pj, ExitReason::EndOfDay);
        }
        std::mem::take(&mut self.trades)
    }

    fn clone_box(&self) -> Box<dyn Strategy> {
        Box::new(self.clone())
    }

    fn encode_state(&self, w: &mut wire::Writer) {
        wire::Codec::encode(self, w);
    }

    fn decode_state(&mut self, r: &mut wire::Reader<'_>) -> Result<(), wire::WireError> {
        *self = <KalmanStrategy as wire::Codec>::decode(r)?;
        Ok(())
    }
}

// Full mid-day state: every float travels as raw bits so a restored
// filter continues bit-exactly.
impl wire::Codec for KalmanStrategy {
    fn encode(&self, w: &mut wire::Writer) {
        self.pair.encode(w);
        self.params.encode(w);
        self.exec.encode(w);
        self.intervals.encode(w);
        self.alpha.encode(w);
        self.beta.encode(w);
        self.p[0].encode(w);
        self.p[1].encode(w);
        self.p[2].encode(w);
        self.seen.encode(w);
        self.open.encode(w);
        self.trades.encode(w);
        self.last_prices.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(KalmanStrategy {
            pair: <(usize, usize)>::decode(r)?,
            params: KalmanParams::decode(r)?,
            exec: ExecutionConfig::decode(r)?,
            intervals: usize::decode(r)?,
            alpha: f64::decode(r)?,
            beta: f64::decode(r)?,
            p: [f64::decode(r)?, f64::decode(r)?, f64::decode(r)?],
            seen: usize::decode(r)?,
            open: Option::<OpenKalman>::decode(r)?,
            trades: Vec::<Trade>::decode(r)?,
            last_prices: Option::<(usize, f64, f64)>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_params() -> KalmanParams {
        KalmanParams {
            // Past the filter's transient: the warm loop's sawtooth x
            // resets spike |z| every 7 steps until ≈ interval 29.
            warmup: 30,
            corr_window: 4,
            max_holding: 10,
            min_time_before_close: 3,
            ..KalmanParams::jansen_default()
        }
    }

    fn input(s: usize, pi: f64, pj: f64) -> IntervalInput {
        IntervalInput {
            s,
            price_i: pi,
            price_j: pj,
            corr: 0.8,
            w_return_i: 0.0,
            w_return_j: 0.0,
        }
    }

    /// Feed a perfectly linear relation, then shock leg i upward.
    fn warmed(params: KalmanParams) -> (KalmanStrategy, usize) {
        let mut st = KalmanStrategy::new((1, 0), params, ExecutionConfig::paper());
        let mut s = 0;
        while s < params.warmup + 20 {
            // y = 10 + 2x with enough x motion to identify α and β
            // separately (a near-constant x only pins down α + βx̄).
            let x = 30.0 + (s % 7) as f64 * 1.5;
            st.on_interval(input(s, 10.0 + 2.0 * x, x));
            s += 1;
        }
        assert!(!st.is_open(), "no entry on an exact linear relation");
        (st, s)
    }

    #[test]
    fn validation_rejects_nonsense() {
        let base = fast_params();
        let bad = [
            KalmanParams { delta: 0.0, ..base },
            KalmanParams { delta: 1.0, ..base },
            KalmanParams { r: 0.0, ..base },
            KalmanParams {
                z_entry: 0.0,
                ..base
            },
            KalmanParams {
                z_exit: 3.0,
                ..base
            },
            KalmanParams { warmup: 0, ..base },
            KalmanParams {
                max_holding: 0,
                ..base
            },
            KalmanParams {
                dt_seconds: 7,
                ..base
            },
            KalmanParams {
                warmup: 100_000,
                ..base
            },
        ];
        for (i, p) in bad.iter().enumerate() {
            assert!(p.validate().is_err(), "case {i} should fail");
        }
        assert!(base.validate().is_ok());
        assert!(KalmanParams::jansen_default().validate().is_ok());
    }

    #[test]
    fn filter_tracks_a_linear_relation() {
        let (st, _) = warmed(fast_params());
        assert!((st.beta - 2.0).abs() < 0.2, "β ≈ 2, got {}", st.beta);
        assert!((st.alpha - 10.0).abs() < 7.0, "α ≈ 10, got {}", st.alpha);
    }

    #[test]
    fn shock_opens_short_rich_leg_and_retraces() {
        let (mut st, s) = warmed(fast_params());
        let x = 30.0;
        // Leg i jumps far above the learned relation: z > entry.
        st.on_interval(input(s, 10.0 + 2.0 * x + 5.0, x));
        assert!(st.is_open(), "shock must trigger an entry");
        let pos = Strategy::open_position(&st).unwrap();
        assert_eq!(pos.short.stock, 1, "short the rich leg");
        assert_eq!(pos.long.stock, 0);
        // The relation snaps back: innovation flips sign, exit.
        let mut k = s + 1;
        while st.is_open() && k < s + 20 {
            st.on_interval(input(k, 10.0 + 2.0 * x, x));
            k += 1;
        }
        assert!(!st.is_open());
        let trades = Strategy::trades(&st);
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].reason, ExitReason::Retracement);
        assert!(trades[0].pnl > 0.0, "short at the top, cover at fair");
    }

    #[test]
    fn max_holding_bounds_a_stuck_position() {
        let params = fast_params();
        let (mut st, s) = warmed(params);
        let x = 30.0;
        st.on_interval(input(s, 10.0 + 2.0 * x + 5.0, x));
        assert!(st.is_open());
        // The mispricing keeps widening — δ is small, so the filter
        // adapts slowly and z stays positive past HP.
        let mut k = s + 1;
        let mut drift = 5.0;
        while st.is_open() {
            drift += 1.0;
            st.on_interval(input(k, 10.0 + 2.0 * x + drift, x));
            k += 1;
            assert!(k < s + 30, "HP must have fired");
        }
        let trades = Strategy::trades(&st);
        assert_eq!(trades[0].reason, ExitReason::MaxHolding);
        assert!(trades[0].holding_intervals() <= params.max_holding);
    }

    #[test]
    fn no_entry_during_warmup_or_near_close() {
        let params = fast_params();
        let mut st = KalmanStrategy::new((1, 0), params, ExecutionConfig::paper());
        // A violent shock on the very first observations: huge |z| but
        // inside warmup.
        for s in 0..params.warmup {
            st.on_interval(input(s, 1000.0 * (s + 1) as f64, 30.0));
            assert!(!st.is_open(), "entered during warmup at s={s}");
        }
        // Near the close: shock after the ST fence.
        let intervals = params.intervals_per_day();
        let (mut st, _) = warmed(params);
        let fence = intervals - params.min_time_before_close;
        st.on_interval(input(fence, 10.0 + 2.0 * 30.0 + 50.0, 30.0));
        assert!(!st.is_open(), "entered inside the ST fence");
    }

    #[test]
    fn state_roundtrips_bit_exactly() {
        let (mut st, s) = warmed(fast_params());
        st.on_interval(input(s, 10.0 + 2.0 * 30.0 + 5.0, 30.0));
        assert!(st.is_open());
        let bytes = wire::to_bytes(&st);
        let mut twin = KalmanStrategy::new((1, 0), fast_params(), ExecutionConfig::paper());
        Strategy::decode_state(&mut twin, &mut wire::Reader::new(&bytes)).unwrap();
        assert_eq!(twin.alpha.to_bits(), st.alpha.to_bits());
        assert_eq!(twin.beta.to_bits(), st.beta.to_bits());
        for k in 0..3 {
            assert_eq!(twin.p[k].to_bits(), st.p[k].to_bits());
        }
        // Both continue identically.
        let drive = |st: &mut KalmanStrategy| {
            for k in 0..10 {
                st.on_interval(input(s + 1 + k, 70.0 + k as f64 * 0.3, 30.0));
            }
            Strategy::finish(st)
        };
        let a = drive(&mut st);
        let b = drive(&mut twin);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pnl.to_bits(), y.pnl.to_bits());
            assert_eq!(x.exit_interval, y.exit_interval);
        }
    }

    #[test]
    fn finish_flattens_end_of_day() {
        let (mut st, s) = warmed(fast_params());
        st.on_interval(input(s, 10.0 + 2.0 * 30.0 + 5.0, 30.0));
        assert!(st.is_open());
        let trades = Strategy::finish(&mut st);
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].reason, ExitReason::EndOfDay);
        assert!(!st.is_open());
    }
}
