//! Heterogeneous strategy specifications.
//!
//! [`StrategySpec`] is the closed algebra over the strategy families the
//! runtime can host side by side in one sweep: the paper's divergence
//! strategy, the Kalman dynamic-hedge family, and the risk-overlay
//! combinator over either. A spec is pure configuration — validated at
//! construction, serializable (checkpoints, shard jobs), and turned into
//! a live [`Strategy`] per pair with [`StrategySpec::build`].
//!
//! The wire form is versioned: a leading [`SPEC_WIRE_VERSION`] byte
//! guards checkpoint and shard-job compatibility, so adding a family is
//! a tag bump, not a silent reinterpretation of old bytes.

use serde::{Deserialize, Serialize};
use stats::correlation::CorrType;

use crate::exec::ExecutionConfig;
use crate::kalman::{KalmanParams, KalmanStrategy};
use crate::overlay::{OverlayParams, OverlayStrategy};
use crate::params::{InvalidParams, StrategyParams};
use crate::strategy::{InputNeeds, PairStrategy, Strategy};

/// Version byte leading every encoded [`StrategySpec`].
pub const SPEC_WIRE_VERSION: u8 = 1;

/// Which family a spec (or a trade report) belongs to. The overlay is
/// its own kind: reports and telemetry attribute an overlaid strategy's
/// trades to the wrapper, which owns the risk behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StrategyKind {
    /// The paper's divergence/retracement strategy.
    Paper,
    /// Kalman-filtered dynamic hedge-ratio z-score strategy.
    Kalman,
    /// Risk overlay wrapped around an inner family.
    Overlay,
}

impl StrategyKind {
    /// Stable lower-case name for labels, reports and bench metadata.
    pub fn as_str(&self) -> &'static str {
        match self {
            StrategyKind::Paper => "paper",
            StrategyKind::Kalman => "kalman",
            StrategyKind::Overlay => "overlay",
        }
    }
}

impl wire::Codec for StrategyKind {
    fn encode(&self, w: &mut wire::Writer) {
        let tag: u8 = match self {
            StrategyKind::Paper => 0,
            StrategyKind::Kalman => 1,
            StrategyKind::Overlay => 2,
        };
        tag.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(match u8::decode(r)? {
            0 => StrategyKind::Paper,
            1 => StrategyKind::Kalman,
            2 => StrategyKind::Overlay,
            _ => return Err(wire::WireError::Invalid("strategy kind tag")),
        })
    }
}

/// One fully-specified strategy configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// The paper strategy with its eleven knobs.
    Paper(StrategyParams),
    /// The Kalman dynamic hedge-ratio strategy.
    Kalman(KalmanParams),
    /// A risk overlay around an inner spec.
    Overlay {
        /// The wrapped family (entries and native exits).
        inner: Box<StrategySpec>,
        /// The overlay thresholds (additional exits).
        overlay: OverlayParams,
    },
}

impl StrategySpec {
    /// The family tag (an overlay reports as [`StrategyKind::Overlay`]).
    pub fn kind(&self) -> StrategyKind {
        match self {
            StrategySpec::Paper(_) => StrategyKind::Paper,
            StrategySpec::Kalman(_) => StrategyKind::Kalman,
            StrategySpec::Overlay { .. } => StrategyKind::Overlay,
        }
    }

    /// Wrap this spec in a risk overlay.
    pub fn with_overlay(self, overlay: OverlayParams) -> StrategySpec {
        StrategySpec::Overlay {
            inner: Box::new(self),
            overlay,
        }
    }

    /// Bar width in seconds — every spec in one sweep must agree.
    pub fn dt_seconds(&self) -> u32 {
        match self {
            StrategySpec::Paper(p) => p.dt_seconds,
            StrategySpec::Kalman(p) => p.dt_seconds,
            StrategySpec::Overlay { inner, .. } => inner.dt_seconds(),
        }
    }

    /// Which shared correlation stream this spec rides: estimator kind
    /// and window. Overlays ride their inner spec's stream.
    pub fn stream_key(&self) -> (CorrType, usize) {
        match self {
            StrategySpec::Paper(p) => (p.ctype, p.corr_window),
            StrategySpec::Kalman(p) => (p.ctype, p.corr_window),
            StrategySpec::Overlay { inner, .. } => inner.stream_key(),
        }
    }

    /// Intervals in a trading session at this spec's bar width.
    pub fn intervals_per_day(&self) -> usize {
        match self {
            StrategySpec::Paper(p) => p.intervals_per_day(),
            StrategySpec::Kalman(p) => p.intervals_per_day(),
            StrategySpec::Overlay { inner, .. } => inner.intervals_per_day(),
        }
    }

    /// What per-interval inputs the built strategy consumes.
    pub fn needs(&self) -> InputNeeds {
        match self {
            StrategySpec::Paper(p) => InputNeeds {
                w_return_window: p.avg_window,
            },
            StrategySpec::Kalman(_) => InputNeeds { w_return_window: 0 },
            StrategySpec::Overlay { inner, .. } => inner.needs(),
        }
    }

    /// Validate recursively; overlay nesting is rejected (the algebra is
    /// one overlay deep — stacking overlays re-checks the same position
    /// twice per interval with ambiguous priority).
    pub fn validate(&self) -> Result<(), InvalidParams> {
        match self {
            StrategySpec::Paper(p) => p.validate(),
            StrategySpec::Kalman(p) => p.validate(),
            StrategySpec::Overlay { inner, overlay } => {
                if matches!(**inner, StrategySpec::Overlay { .. }) {
                    return Err(InvalidParams(
                        "overlay may not wrap another overlay".to_string(),
                    ));
                }
                overlay.validate()?;
                inner.validate()
            }
        }
    }

    /// Human-readable label, e.g. `overlay(sl5%-pt5%-hp30, Kalman/...)`.
    pub fn label(&self) -> String {
        match self {
            StrategySpec::Paper(p) => p.label(),
            StrategySpec::Kalman(p) => p.label(),
            StrategySpec::Overlay { inner, overlay } => {
                format!("overlay({}, {})", overlay.label(), inner.label())
            }
        }
    }

    /// Instantiate a live strategy for one pair.
    pub fn build(&self, pair: (usize, usize), exec: ExecutionConfig) -> Box<dyn Strategy> {
        match self {
            StrategySpec::Paper(p) => Box::new(PairStrategy::new(pair, *p, exec)),
            StrategySpec::Kalman(p) => Box::new(KalmanStrategy::new(pair, *p, exec)),
            StrategySpec::Overlay { inner, overlay } => {
                Box::new(OverlayStrategy::new(inner.build(pair, exec), *overlay))
            }
        }
    }
}

impl wire::Codec for StrategySpec {
    fn encode(&self, w: &mut wire::Writer) {
        SPEC_WIRE_VERSION.encode(w);
        match self {
            StrategySpec::Paper(p) => {
                0u8.encode(w);
                p.encode(w);
            }
            StrategySpec::Kalman(p) => {
                1u8.encode(w);
                p.encode(w);
            }
            StrategySpec::Overlay { inner, overlay } => {
                2u8.encode(w);
                inner.encode(w);
                overlay.encode(w);
            }
        }
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        if u8::decode(r)? != SPEC_WIRE_VERSION {
            return Err(wire::WireError::Invalid("strategy spec wire version"));
        }
        let spec = match u8::decode(r)? {
            0 => StrategySpec::Paper(StrategyParams::decode(r)?),
            1 => StrategySpec::Kalman(KalmanParams::decode(r)?),
            2 => StrategySpec::Overlay {
                inner: Box::new(StrategySpec::decode(r)?),
                overlay: OverlayParams::decode(r)?,
            },
            _ => return Err(wire::WireError::Invalid("strategy spec tag")),
        };
        spec.validate()
            .map_err(|_| wire::WireError::Invalid("strategy spec contents"))?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> [StrategySpec; 3] {
        [
            StrategySpec::Paper(StrategyParams::paper_default()),
            StrategySpec::Kalman(KalmanParams::jansen_default()),
            StrategySpec::Paper(StrategyParams::paper_default())
                .with_overlay(OverlayParams::conservative()),
        ]
    }

    #[test]
    fn kinds_and_labels_are_distinct() {
        let [p, k, o] = specs();
        assert_eq!(p.kind(), StrategyKind::Paper);
        assert_eq!(k.kind(), StrategyKind::Kalman);
        assert_eq!(o.kind(), StrategyKind::Overlay);
        assert!(o.label().starts_with("overlay("));
        assert_ne!(p.label(), k.label());
    }

    #[test]
    fn all_families_validate_and_roundtrip() {
        for spec in specs() {
            spec.validate().unwrap();
            let bytes = wire::to_bytes(&spec);
            assert_eq!(bytes[0], SPEC_WIRE_VERSION);
            let back: StrategySpec = wire::from_bytes(&bytes).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn nested_overlays_are_rejected() {
        let [_, _, o] = specs();
        let double = o.with_overlay(OverlayParams::conservative());
        assert!(double.validate().is_err());
    }

    #[test]
    fn invalid_contents_fail_at_decode() {
        let mut bad = KalmanParams::jansen_default();
        bad.delta = 0.5; // still valid — corrupt below instead
        let spec = StrategySpec::Kalman(bad);
        let mut bytes = wire::to_bytes(&spec);
        // Clobber the version byte: must be refused, not reinterpreted.
        bytes[0] = SPEC_WIRE_VERSION + 1;
        assert!(wire::from_bytes::<StrategySpec>(&bytes).is_err());
    }

    #[test]
    fn overlay_needs_and_stream_follow_the_inner_spec() {
        let [p, _, o] = specs();
        assert_eq!(o.needs(), p.needs());
        assert_eq!(o.stream_key(), p.stream_key());
        assert_eq!(o.dt_seconds(), p.dt_seconds());
        let k = StrategySpec::Kalman(KalmanParams::jansen_default());
        assert_eq!(k.needs().w_return_window, 0);
    }

    #[test]
    fn build_produces_matching_kinds() {
        for spec in specs() {
            let st = spec.build((1, 0), ExecutionConfig::paper());
            assert_eq!(st.pair(), (1, 0));
            assert!(!st.is_open());
            assert_eq!(st.needs(), spec.needs());
        }
    }
}
