//! Divergence detection — steps 1–2 of the strategy pseudo-code.
//!
//! Per interval `s` the detector maintains the `W`-window average
//! correlation
//!
//! ```text
//! C̄(s) = (1/W) Σ_{σ = s-W+1}^{s} C(σ)
//! ```
//!
//! and fires when **both** hold:
//!
//! * `C̄(s) > A` — the pair is correlated enough to be tradeable, and
//! * within the last `Y` intervals the correlation dropped more than `d`
//!   (relative) below the then-current average: for some
//!   `σ ∈ (s-Y, s]`, `(C̄(σ) − C(σ)) / C̄(σ) > d`.
//!
//! The drop direction is deliberate: a pair trade is triggered by
//! *deteriorating* co-movement (the spread has opened), not by correlation
//! strengthening. With the paper's intra-day `d` of a few basis points the
//! detector is sensitive — this is a high-turnover strategy by design.

use timeseries::window::SlidingWindow;

use crate::params::StrategyParams;

/// Streaming divergence detector for one pair under one parameter vector.
#[derive(Debug, Clone)]
pub struct DivergenceDetector {
    min_avg_corr: f64,
    divergence: f64,
    /// Correlations over the last `W` intervals.
    corr_window: SlidingWindow<f64>,
    /// Relative drops `(C̄ − C) / C̄` over the last `Y` intervals.
    drop_window: SlidingWindow<f64>,
    last_avg: f64,
    last_corr: f64,
}

/// The detector's per-interval verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalState {
    /// Current `W`-window average correlation `C̄(s)`.
    pub avg_corr: f64,
    /// Current correlation `C(s)`.
    pub corr: f64,
    /// True when the trade trigger fires this interval.
    pub diverged: bool,
}

impl DivergenceDetector {
    /// Detector configured from a parameter vector (uses `A`, `W`, `Y`,
    /// `d`).
    pub fn new(params: &StrategyParams) -> Self {
        DivergenceDetector {
            min_avg_corr: params.min_avg_corr,
            divergence: params.divergence,
            corr_window: SlidingWindow::new(params.avg_window),
            drop_window: SlidingWindow::new(params.div_window),
            last_avg: 0.0,
            last_corr: 0.0,
        }
    }

    /// Feed the correlation for the current interval; returns the verdict.
    ///
    /// The average uses however many correlations are available until the
    /// `W` window fills (the strategy engine only acts after
    /// `first_active_interval`, so a full window is guaranteed in
    /// production use).
    pub fn push(&mut self, corr: f64) -> SignalState {
        self.corr_window.push(corr);
        let avg = self.corr_window.mean();
        self.last_avg = avg;
        self.last_corr = corr;

        let rel_drop = if avg.abs() > f64::EPSILON {
            (avg - corr) / avg
        } else {
            0.0
        };
        self.drop_window.push(rel_drop);

        let diverged =
            avg > self.min_avg_corr && self.drop_window.iter().any(|dr| dr > self.divergence);
        SignalState {
            avg_corr: avg,
            corr,
            diverged,
        }
    }

    /// Most recent average correlation `C̄`.
    pub fn avg_corr(&self) -> f64 {
        self.last_avg
    }

    /// True when the correlation has *reverted* into the band
    /// `[C̄ (1 − d), C̄]` — the optional correlation-reversion exit the
    /// paper sketches: "if the correlation returns within the average
    /// range ... the prices may have adjusted to new levels".
    pub fn corr_reverted(&self) -> bool {
        let lo = self.last_avg * (1.0 - self.divergence);
        self.last_corr >= lo && self.last_corr <= self.last_avg
    }
}

impl wire::Codec for DivergenceDetector {
    fn encode(&self, w: &mut wire::Writer) {
        self.min_avg_corr.encode(w);
        self.divergence.encode(w);
        self.corr_window.encode(w);
        self.drop_window.encode(w);
        self.last_avg.encode(w);
        self.last_corr.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(DivergenceDetector {
            min_avg_corr: f64::decode(r)?,
            divergence: f64::decode(r)?,
            corr_window: SlidingWindow::decode(r)?,
            drop_window: SlidingWindow::decode(r)?,
            last_avg: f64::decode(r)?,
            last_corr: f64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::StrategyParams;

    fn detector(a: f64, w: usize, y: usize, d: f64) -> DivergenceDetector {
        let p = StrategyParams {
            min_avg_corr: a,
            avg_window: w,
            div_window: y,
            divergence: d,
            ..StrategyParams::paper_default()
        };
        DivergenceDetector::new(&p)
    }

    #[test]
    fn no_signal_on_stable_high_correlation() {
        let mut det = detector(0.1, 10, 5, 0.01);
        for _ in 0..50 {
            let s = det.push(0.8);
            assert!(!s.diverged, "flat correlation must not trigger");
        }
    }

    #[test]
    fn no_signal_below_min_correlation() {
        let mut det = detector(0.5, 10, 5, 0.001);
        // Average stays ~0.3 < A even with a big drop.
        for _ in 0..20 {
            det.push(0.3);
        }
        let s = det.push(0.1);
        assert!(s.avg_corr < 0.5);
        assert!(!s.diverged, "below-A pairs are never traded");
    }

    #[test]
    fn drop_triggers_signal() {
        let mut det = detector(0.1, 10, 5, 0.01);
        for _ in 0..20 {
            det.push(0.8);
        }
        // 5% relative drop > 1% threshold.
        let s = det.push(0.8 * 0.95);
        assert!(s.diverged);
        assert!((s.avg_corr - 0.8).abs() < 0.01);
    }

    #[test]
    fn rise_does_not_trigger() {
        let mut det = detector(0.1, 10, 5, 0.01);
        for _ in 0..20 {
            det.push(0.8);
        }
        let s = det.push(0.9); // strengthening co-movement
        assert!(!s.diverged);
    }

    #[test]
    fn divergence_memory_is_y_intervals() {
        let mut det = detector(0.1, 50, 3, 0.01);
        for _ in 0..50 {
            det.push(0.8);
        }
        // One sharp drop...
        let s = det.push(0.7);
        assert!(s.diverged);
        // ...stays armed while within the Y = 3 window...
        let s = det.push(0.8);
        assert!(s.diverged, "within Y of the drop");
        let s = det.push(0.8);
        assert!(s.diverged, "still within Y");
        // ...and expires after Y intervals.
        let s = det.push(0.8);
        assert!(!s.diverged, "drop has left the Y window");
    }

    #[test]
    fn threshold_is_relative_not_absolute() {
        // A 0.004 absolute drop from 0.2 is 2% relative: fires at d=1%.
        let mut det = detector(0.1, 10, 2, 0.01);
        for _ in 0..20 {
            det.push(0.2);
        }
        let s = det.push(0.2 - 0.004);
        assert!(s.diverged);
        // The same absolute drop from 0.8 is 0.5% relative: no fire.
        let mut det = detector(0.1, 10, 2, 0.01);
        for _ in 0..20 {
            det.push(0.8);
        }
        let s = det.push(0.8 - 0.004);
        assert!(!s.diverged);
    }

    #[test]
    fn corr_reversion_band() {
        let mut det = detector(0.1, 10, 5, 0.05);
        for _ in 0..20 {
            det.push(0.8);
        }
        det.push(0.6); // diverged well below the band
        assert!(!det.corr_reverted());
        // Push back inside [C̄(1-d), C̄].
        let avg = det.avg_corr();
        det.push(avg * 0.97);
        assert!(det.corr_reverted());
    }

    #[test]
    fn partial_window_average() {
        let mut det = detector(0.1, 10, 5, 0.01);
        let s = det.push(0.6);
        assert_eq!(s.avg_corr, 0.6);
        let s = det.push(0.8);
        assert!((s.avg_corr - 0.7).abs() < 1e-12);
    }
}
