//! Risk-overlay combinator: stop-loss / profit-target / holding-cap
//! wrapped around *any* inner [`Strategy`].
//!
//! The overlay never opens positions — entries, sizing and the inner
//! family's own exits are untouched. After delegating each interval to
//! the inner strategy it inspects the (possibly still-open) position and
//! force-closes it at the interval's prices when one of three rules
//! trips, in fixed priority order:
//!
//! 1. unrealized return ≤ −`stop_loss`        → [`ExitReason::OverlayStop`]
//! 2. unrealized return ≥ `profit_target`     → [`ExitReason::OverlayTarget`]
//! 3. holding ≥ `max_holding` (tighter cap)   → [`ExitReason::OverlayHolding`]
//!
//! Ordering keeps the one-action-per-interval invariant: the inner
//! strategy acts first; a position opened *this* interval has zero
//! holding and zero unrealized return, so no overlay rule can fire on
//! it, and a position the inner strategy just closed is simply gone.

use serde::{Deserialize, Serialize};

use crate::params::InvalidParams;
use crate::position::PairPosition;
use crate::strategy::{InputNeeds, IntervalInput, Strategy};
use crate::trade::{ExitReason, Trade};

/// Thresholds of the risk overlay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlayParams {
    /// Exit when the unrealized trade return reaches `−stop_loss`
    /// (fraction: 0.05 = −5%).
    pub stop_loss: f64,
    /// Exit when the unrealized trade return reaches `profit_target`.
    pub profit_target: f64,
    /// Exit when the position has been held this many intervals —
    /// typically tighter than the inner strategy's own HP.
    pub max_holding: usize,
}

impl OverlayParams {
    /// The SNIPPETS baseline: 5% stop, 5% target, 30-interval cap.
    pub fn conservative() -> Self {
        OverlayParams {
            stop_loss: 0.05,
            profit_target: 0.05,
            max_holding: 30,
        }
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        let err = |m: &str| Err(InvalidParams(m.to_string()));
        if !(self.stop_loss > 0.0 && self.stop_loss.is_finite()) {
            return err("overlay stop_loss must be positive and finite");
        }
        if !(self.profit_target > 0.0 && self.profit_target.is_finite()) {
            return err("overlay profit_target must be positive and finite");
        }
        if self.max_holding == 0 {
            return err("overlay max_holding must be positive");
        }
        Ok(())
    }

    /// Compact label fragment, e.g. `sl5%-pt5%-hp30`.
    pub fn label(&self) -> String {
        format!(
            "sl{}%-pt{}%-hp{}",
            self.stop_loss * 100.0,
            self.profit_target * 100.0,
            self.max_holding
        )
    }
}

impl wire::Codec for OverlayParams {
    fn encode(&self, w: &mut wire::Writer) {
        self.stop_loss.encode(w);
        self.profit_target.encode(w);
        self.max_holding.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        let p = OverlayParams {
            stop_loss: f64::decode(r)?,
            profit_target: f64::decode(r)?,
            max_holding: usize::decode(r)?,
        };
        p.validate()
            .map_err(|_| wire::WireError::Invalid("overlay parameters"))?;
        Ok(p)
    }
}

/// The combinator: any inner [`Strategy`] plus overlay thresholds.
///
/// Carries no mutable state of its own — the checkpoint bytes are
/// exactly the inner strategy's, so overlay wrapping composes freely
/// with snapshot/restore.
pub struct OverlayStrategy {
    inner: Box<dyn Strategy>,
    params: OverlayParams,
}

impl Clone for OverlayStrategy {
    fn clone(&self) -> Self {
        OverlayStrategy {
            inner: self.inner.clone_box(),
            params: self.params,
        }
    }
}

impl OverlayStrategy {
    /// Wrap `inner` with the overlay rules.
    pub fn new(inner: Box<dyn Strategy>, params: OverlayParams) -> Self {
        OverlayStrategy { inner, params }
    }
}

impl Strategy for OverlayStrategy {
    fn pair(&self) -> (usize, usize) {
        self.inner.pair()
    }

    fn is_open(&self) -> bool {
        self.inner.is_open()
    }

    fn open_position(&self) -> Option<&PairPosition> {
        self.inner.open_position()
    }

    fn trades(&self) -> &[Trade] {
        self.inner.trades()
    }

    fn needs(&self) -> InputNeeds {
        self.inner.needs()
    }

    fn on_interval(&mut self, input: IntervalInput) {
        self.inner.on_interval(input);
        let IntervalInput {
            s,
            price_i,
            price_j,
            ..
        } = input;
        let Some(pos) = self.inner.open_position() else {
            return;
        };
        if pos.entry_interval == s {
            return; // opened this interval: one action per interval
        }
        let pair = self.inner.pair();
        let long_exit = if pos.long.stock == pair.0 {
            price_i
        } else {
            price_j
        };
        let short_exit = if pos.short.stock == pair.0 {
            price_i
        } else {
            price_j
        };
        let unrealized = pos.trade_return(long_exit, short_exit);
        let holding = s - pos.entry_interval;
        let reason = if unrealized <= -self.params.stop_loss {
            Some(ExitReason::OverlayStop)
        } else if unrealized >= self.params.profit_target {
            Some(ExitReason::OverlayTarget)
        } else if holding >= self.params.max_holding {
            Some(ExitReason::OverlayHolding)
        } else {
            None
        };
        if let Some(reason) = reason {
            self.inner.force_close_at(s, price_i, price_j, reason);
        }
    }

    fn force_close(&mut self, reason: ExitReason) {
        self.inner.force_close(reason);
    }

    fn force_close_at(&mut self, s: usize, price_i: f64, price_j: f64, reason: ExitReason) {
        self.inner.force_close_at(s, price_i, price_j, reason);
    }

    fn finish(&mut self) -> Vec<Trade> {
        self.inner.finish()
    }

    fn clone_box(&self) -> Box<dyn Strategy> {
        Box::new(self.clone())
    }

    fn encode_state(&self, w: &mut wire::Writer) {
        self.inner.encode_state(w);
    }

    fn decode_state(&mut self, r: &mut wire::Reader<'_>) -> Result<(), wire::WireError> {
        self.inner.decode_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecutionConfig;
    use crate::params::StrategyParams;
    use crate::strategy::PairStrategy;
    use stats::correlation::CorrType;

    fn inner_params() -> StrategyParams {
        StrategyParams {
            dt_seconds: 30,
            ctype: CorrType::Pearson,
            min_avg_corr: 0.1,
            corr_window: 4,
            avg_window: 4,
            div_window: 3,
            divergence: 0.01,
            retracement: 1.0 / 3.0,
            spread_window: 4,
            max_holding: 50,
            min_time_before_close: 3,
        }
    }

    fn overlaid(params: OverlayParams) -> (OverlayStrategy, usize) {
        let inner = PairStrategy::new((1, 0), inner_params(), ExecutionConfig::paper());
        let mut st = OverlayStrategy::new(Box::new(inner), params);
        let start = inner_params().first_active_interval();
        for s in 0..start + 5 {
            st.on_interval(input(s, 130.0, 30.0, 0.8, 0.0, 0.0));
        }
        assert!(!st.is_open());
        (st, start + 5)
    }

    fn input(s: usize, pi: f64, pj: f64, corr: f64, wi: f64, wj: f64) -> IntervalInput {
        IntervalInput {
            s,
            price_i: pi,
            price_j: pj,
            corr,
            w_return_i: wi,
            w_return_j: wj,
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        let base = OverlayParams::conservative();
        assert!(base.validate().is_ok());
        let bad = [
            OverlayParams {
                stop_loss: 0.0,
                ..base
            },
            OverlayParams {
                stop_loss: f64::NAN,
                ..base
            },
            OverlayParams {
                profit_target: -0.1,
                ..base
            },
            OverlayParams {
                max_holding: 0,
                ..base
            },
        ];
        for (i, p) in bad.iter().enumerate() {
            assert!(p.validate().is_err(), "case {i} should fail");
        }
    }

    #[test]
    fn overlay_stop_fires_before_inner_exit() {
        let (mut st, s) = overlaid(OverlayParams {
            stop_loss: 0.005,
            profit_target: 10.0,
            max_holding: 40,
        });
        // Inner opens: i over-performed, short i / long j.
        st.on_interval(input(s, 131.0, 29.5, 0.70, 0.01, -0.01));
        assert!(st.is_open());
        // The short leg rips against us: deep unrealized loss; the inner
        // paper strategy (no stop_loss configured) would hold.
        st.on_interval(input(s + 1, 140.0, 29.5, 0.70, 0.0, 0.0));
        assert!(!st.is_open(), "overlay stop must flatten");
        let trades = Strategy::trades(&st);
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].reason, ExitReason::OverlayStop);
        assert!(trades[0].ret < -0.005);
    }

    #[test]
    fn overlay_target_books_profit() {
        let (mut st, s) = overlaid(OverlayParams {
            stop_loss: 10.0,
            profit_target: 0.0005,
            max_holding: 40,
        });
        st.on_interval(input(s, 131.0, 29.5, 0.70, 0.01, -0.01));
        assert!(st.is_open());
        // Short i eases in our favour — but the spread (101.3) stays
        // above the inner retracement level (101.0), so only the
        // overlay's tighter profit target can close this.
        st.on_interval(input(s + 1, 130.8, 29.5, 0.70, 0.0, 0.0));
        assert!(!st.is_open());
        let trades = Strategy::trades(&st);
        assert_eq!(trades[0].reason, ExitReason::OverlayTarget);
        assert!(trades[0].is_win());
    }

    #[test]
    fn overlay_holding_cap_is_tighter_than_inner_hp() {
        let (mut st, s) = overlaid(OverlayParams {
            stop_loss: 10.0,
            profit_target: 10.0,
            max_holding: 3,
        });
        st.on_interval(input(s, 131.0, 29.5, 0.70, 0.01, -0.01));
        assert!(st.is_open());
        let mut k = s + 1;
        while st.is_open() {
            st.on_interval(input(k, 131.0, 29.5, 0.70, 0.0, 0.0));
            k += 1;
            assert!(k < s + 10, "overlay HP must have fired");
        }
        let trades = Strategy::trades(&st);
        assert_eq!(trades[0].reason, ExitReason::OverlayHolding);
        assert!(trades[0].holding_intervals() <= 3);
        assert!(
            trades[0].holding_intervals() < inner_params().max_holding,
            "fired before the inner HP"
        );
    }

    #[test]
    fn no_overlay_action_on_the_entry_interval() {
        // A pathological target of ~0 would otherwise close the position
        // the moment it opens; the entry-interval guard forbids that.
        let (mut st, s) = overlaid(OverlayParams {
            stop_loss: 1e-12,
            profit_target: 1e-12,
            max_holding: 1,
        });
        st.on_interval(input(s, 131.0, 29.5, 0.70, 0.01, -0.01));
        assert!(st.is_open(), "entry interval: overlay must not act");
    }

    #[test]
    fn wide_overlay_is_transparent() {
        // With thresholds that never trip, the overlaid strategy must be
        // trade-for-trade identical to the bare inner strategy.
        let run = |overlay: Option<OverlayParams>| -> Vec<Trade> {
            let inner = PairStrategy::new((1, 0), inner_params(), ExecutionConfig::paper());
            let mut st: Box<dyn Strategy> = match overlay {
                Some(p) => Box::new(OverlayStrategy::new(Box::new(inner), p)),
                None => Box::new(inner),
            };
            let start = inner_params().first_active_interval();
            for s in 0..start + 5 {
                st.on_interval(input(s, 130.0, 30.0, 0.8, 0.0, 0.0));
            }
            st.on_interval(input(start + 5, 131.0, 29.5, 0.70, 0.01, -0.01));
            for k in 1..30 {
                let wiggle = (k % 5) as f64 * 0.2;
                st.on_interval(input(start + 5 + k, 131.0 - wiggle, 29.5, 0.75, 0.0, 0.0));
            }
            st.finish()
        };
        let bare = run(None);
        let wrapped = run(Some(OverlayParams {
            stop_loss: 100.0,
            profit_target: 100.0,
            max_holding: 100_000,
        }));
        assert!(!bare.is_empty());
        assert_eq!(bare.len(), wrapped.len());
        for (a, b) in bare.iter().zip(&wrapped) {
            assert_eq!(a.reason, b.reason);
            assert_eq!(a.entry_interval, b.entry_interval);
            assert_eq!(a.exit_interval, b.exit_interval);
            assert_eq!(a.pnl.to_bits(), b.pnl.to_bits());
        }
    }

    #[test]
    fn state_roundtrips_through_inner_bytes() {
        let params = OverlayParams::conservative();
        let (mut st, s) = overlaid(params);
        st.on_interval(input(s, 131.0, 29.5, 0.70, 0.01, -0.01));
        assert!(st.is_open());
        let mut w = wire::Writer::new();
        st.encode_state(&mut w);
        let bytes = w.into_bytes();
        let inner = PairStrategy::new((1, 0), inner_params(), ExecutionConfig::paper());
        let mut twin = OverlayStrategy::new(Box::new(inner), params);
        twin.decode_state(&mut wire::Reader::new(&bytes)).unwrap();
        assert!(twin.is_open());
        let a = Strategy::finish(&mut st);
        let b = Strategy::finish(&mut twin);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pnl.to_bits(), y.pnl.to_bits());
        }
    }
}
