//! The classical distance-method baseline — Gatev, Goetzmann &
//! Rouwenhorst's "Pairs Trading: Performance of a Relative Value
//! Arbitrage Rule" (the paper's reference \[1\], "widely used in the
//! financial industry for over twenty years").
//!
//! The paper positions its correlation-divergence strategy against this
//! canon; implementing the canon makes the comparison runnable:
//!
//! * **Formation**: over a formation window, normalise every stock's
//!   price to a cumulative index starting at 1 and select the pairs with
//!   the minimum sum of squared deviations (SSD) between their indices;
//!   record the formation-period standard deviation σ of each selected
//!   pair's index spread.
//! * **Trading**: after formation, open when the index spread exceeds
//!   `k σ` (classically k = 2) — long the cheap leg, short the rich leg —
//!   and unwind when the indices next *cross* (spread returns through 0).
//!   Everything closes at end of day.
//!
//! This adaptation runs the classic rule intra-day on the same Δs grid
//! the correlation strategy uses, so `examples/baseline_comparison.rs`
//! can race them on identical data. Differences in character are the
//! point: the distance method trades far less often (a pair opens at
//! most a handful of times a day) and holds until full convergence
//! rather than a retracement fraction.

use serde::{Deserialize, Serialize};
use timeseries::bam::PriceGrid;

use crate::position::PairPosition;
use crate::trade::{ExitReason, Trade};

/// Distance-method configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistanceConfig {
    /// Formation window in Δs intervals.
    pub formation_intervals: usize,
    /// Number of lowest-SSD pairs to trade.
    pub top_pairs: usize,
    /// Opening threshold in formation-σ units (classically 2).
    pub open_sigmas: f64,
    /// Minimum intervals before the close to open (the ST fence, kept
    /// identical to the correlation strategy for a fair comparison).
    pub min_time_before_close: usize,
}

impl Default for DistanceConfig {
    fn default() -> Self {
        DistanceConfig {
            formation_intervals: 260, // ~2 trading hours at Δs = 30 s
            top_pairs: 20,
            open_sigmas: 2.0,
            min_time_before_close: 20,
        }
    }
}

/// A pair selected in formation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormedPair {
    /// Canonical pair `(i, j)`, `i > j`.
    pub pair: (usize, usize),
    /// Sum of squared index deviations over formation.
    pub ssd: f64,
    /// Formation-period standard deviation of the index spread.
    pub sigma: f64,
}

/// Run formation: rank all pairs by SSD of normalised prices over
/// `[0, formation_intervals)` and keep the best `top_pairs` with usable
/// spread volatility.
///
/// # Panics
/// Panics if the formation window exceeds the day.
pub fn form_pairs(grid: &PriceGrid, cfg: &DistanceConfig) -> Vec<FormedPair> {
    let n = grid.n_stocks();
    let f = cfg.formation_intervals;
    assert!(f >= 2 && f <= grid.intervals(), "formation window invalid");

    // Normalised index per stock: P(s) / P(0) over formation.
    let index = |stock: usize, s: usize| -> f64 {
        let p0 = grid.price(stock, 0);
        if p0 > 0.0 {
            grid.price(stock, s) / p0
        } else {
            f64::NAN
        }
    };

    let mut formed = Vec::new();
    for i in 1..n {
        for j in 0..i {
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            let mut ok = true;
            for s in 0..f {
                let d = index(i, s) - index(j, s);
                if !d.is_finite() {
                    ok = false;
                    break;
                }
                sum += d;
                sum_sq += d * d;
            }
            if !ok {
                continue;
            }
            let mean = sum / f as f64;
            let var = (sum_sq / f as f64 - mean * mean).max(0.0);
            let sigma = var.sqrt();
            if sigma <= 0.0 {
                continue; // no spread volatility, nothing to trade
            }
            formed.push(FormedPair {
                pair: (i, j),
                ssd: sum_sq,
                sigma,
            });
        }
    }
    formed.sort_by(|a, b| a.ssd.partial_cmp(&b.ssd).unwrap());
    formed.truncate(cfg.top_pairs);
    formed
}

/// Trade the formed pairs over the remainder of the day. Returns all
/// completed round trips (the `Trade` record is shared with the
/// correlation strategy, so the metrics pipeline applies unchanged).
pub fn trade_day(grid: &PriceGrid, cfg: &DistanceConfig) -> Vec<Trade> {
    let formed = form_pairs(grid, cfg);
    let smax = grid.intervals();
    let f = cfg.formation_intervals;
    let mut trades = Vec::new();

    for fp in &formed {
        let (i, j) = fp.pair;
        let p0_i = grid.price(i, 0);
        let p0_j = grid.price(j, 0);
        let spread = |s: usize| -> f64 { grid.price(i, s) / p0_i - grid.price(j, s) / p0_j };

        let mut open: Option<(PairPosition, f64)> = None; // (position, entry spread sign)
        for s in f..smax {
            let sp = spread(s);
            if !sp.is_finite() {
                continue;
            }
            match &open {
                Some((position, entry_sign)) => {
                    // Unwind on crossing (sign flip or touch), or EOD.
                    let crossed = sp == 0.0 || sp.signum() != *entry_sign;
                    let eod = s + 1 >= smax;
                    if crossed || eod {
                        let (long_exit, short_exit) = exit_prices(position, grid, i, j, s);
                        let gross = position.gross_entry_value();
                        let pnl = position.pnl(long_exit, short_exit);
                        trades.push(Trade {
                            pair: (i, j),
                            entry_interval: position.entry_interval,
                            exit_interval: s,
                            reason: if crossed {
                                ExitReason::Retracement
                            } else {
                                ExitReason::EndOfDay
                            },
                            pnl,
                            gross,
                            ret: pnl / gross,
                            position: *position,
                        });
                        open = None;
                    }
                }
                None => {
                    let remaining = smax - 1 - s;
                    if remaining < cfg.min_time_before_close {
                        continue;
                    }
                    if sp.abs() > cfg.open_sigmas * fp.sigma {
                        // Long the cheap (low-index) leg, short the rich.
                        let (pi, pj) = (grid.price(i, s), grid.price(j, s));
                        if !(pi > 0.0 && pj > 0.0) {
                            continue;
                        }
                        let position = if sp > 0.0 {
                            PairPosition::open(s, j, pj, i, pi) // i rich
                        } else {
                            PairPosition::open(s, i, pi, j, pj) // j rich
                        };
                        open = Some((position, sp.signum()));
                    }
                }
            }
        }
        // Safety net: close anything the loop left open at the last price.
        if let Some((position, _)) = open {
            let s = smax - 1;
            let (long_exit, short_exit) = exit_prices(&position, grid, i, j, s);
            let gross = position.gross_entry_value();
            let pnl = position.pnl(long_exit, short_exit);
            trades.push(Trade {
                pair: (i, j),
                entry_interval: position.entry_interval,
                exit_interval: s,
                reason: ExitReason::EndOfDay,
                pnl,
                gross,
                ret: pnl / gross,
                position,
            });
        }
    }
    trades.sort_by_key(|t| (t.entry_interval, t.pair));
    trades
}

fn exit_prices(
    position: &PairPosition,
    grid: &PriceGrid,
    i: usize,
    j: usize,
    s: usize,
) -> (f64, f64) {
    let price_of = |stock: usize| {
        if stock == i {
            grid.price(i, s)
        } else {
            grid.price(j, s)
        }
    };
    (
        price_of(position.long.stock),
        price_of(position.short.stock),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::bam::PriceGrid;

    /// Grid with one tightly-matched pair (0, 1), one loose pair member
    /// (2), and a divergence-and-reconvergence episode on the matched
    /// pair during the trading window.
    fn episode_grid() -> PriceGrid {
        let smax = 780;
        let f = 260;
        let mut a = vec![0.0; smax];
        let mut b = vec![0.0; smax];
        let mut c = vec![0.0; smax];
        for s in 0..smax {
            // A slow common factor plus, for b, a small idiosyncratic
            // wobble (an exactly-zero spread σ has nothing to trade and is
            // rightly excluded by formation).
            let wave = (s as f64 * 0.01).sin();
            a[s] = 100.0 + wave;
            b[s] = 50.0 + 0.5 * wave + 0.1 * (s as f64 * 0.31).sin();
            c[s] = 80.0 + 3.0 * (s as f64 * 0.013).cos(); // unrelated
        }
        // Episode: stock 0 runs 3% rich from interval 400, reconverges by
        // 460.
        for (s, v) in a.iter_mut().enumerate().take(431).skip(400) {
            *v *= 1.0 + 0.03 * ((s - 400) as f64 / 30.0);
        }
        for (s, v) in a.iter_mut().enumerate().take(460).skip(431) {
            *v *= 1.0 + 0.03 * (1.0 - (s - 430) as f64 / 29.0);
        }
        let _ = f;
        PriceGrid::from_series(vec![a, b, c], 30)
    }

    fn cfg() -> DistanceConfig {
        DistanceConfig {
            formation_intervals: 260,
            top_pairs: 1,
            open_sigmas: 2.0,
            min_time_before_close: 20,
        }
    }

    #[test]
    fn formation_selects_the_matched_pair() {
        let grid = episode_grid();
        let formed = form_pairs(&grid, &cfg());
        assert_eq!(formed.len(), 1);
        assert_eq!(formed[0].pair, (1, 0), "the index-identical pair wins");
        assert!(formed[0].sigma > 0.0);
        // With top_pairs = 3 the ranking keeps the matched pair first.
        let all = form_pairs(
            &grid,
            &DistanceConfig {
                top_pairs: 3,
                ..cfg()
            },
        );
        assert_eq!(all[0].pair, (1, 0));
        assert!(all[0].ssd <= all[1].ssd);
    }

    #[test]
    fn trades_the_divergence_and_wins_on_reconvergence() {
        let grid = episode_grid();
        let trades = trade_day(&grid, &cfg());
        assert!(!trades.is_empty(), "the 2% episode must trigger at 2σ");
        let t = &trades[0];
        assert!((390..=440).contains(&t.entry_interval), "{t:?}");
        // Stock 0 ran rich: short it, long stock 1.
        assert_eq!(t.position.short.stock, 0);
        assert_eq!(t.position.long.stock, 1);
        // Reconvergence exit with profit.
        assert_eq!(t.reason, ExitReason::Retracement);
        assert!(t.pnl > 0.0, "convergence trade should profit: {t:?}");
    }

    #[test]
    fn quiet_market_produces_no_trades() {
        let smax = 780;
        let a: Vec<f64> = (0..smax).map(|s| 100.0 + (s as f64 * 0.05).sin()).collect();
        let b: Vec<f64> = (0..smax)
            .map(|s| 50.0 + 0.5 * (s as f64 * 0.05).sin())
            .collect();
        let grid = PriceGrid::from_series(vec![a, b], 30);
        let trades = trade_day(&grid, &cfg());
        assert!(trades.is_empty(), "no divergence beyond 2σ -> no trades");
    }

    #[test]
    fn respects_the_close_fence_and_eod() {
        // Divergence that never reconverges: the position must be closed
        // EndOfDay, and nothing may open inside the ST fence.
        let smax = 780;
        let mut a: Vec<f64> = (0..smax).map(|s| 100.0 + (s as f64 * 0.05).sin()).collect();
        let b: Vec<f64> = (0..smax)
            .map(|s| 50.0 + 0.5 * (s as f64 * 0.05).sin())
            .collect();
        for v in a.iter_mut().take(smax).skip(700) {
            *v *= 1.05; // diverges inside the fence region, stays rich
        }
        let grid = PriceGrid::from_series(vec![a, b], 30);
        let c = DistanceConfig {
            min_time_before_close: 100,
            ..cfg()
        };
        let trades = trade_day(&grid, &c);
        for t in &trades {
            assert!(smax - 1 - t.entry_interval >= 100, "{t:?}");
            assert!(t.exit_interval < smax);
        }
    }

    #[test]
    fn baseline_trades_far_less_than_the_divergence_strategy_would() {
        // Character check: the distance method opens once per big episode,
        // not dozens of times per day.
        let grid = episode_grid();
        let trades = trade_day(&grid, &cfg());
        assert!(trades.len() <= 4, "got {}", trades.len());
    }
}
