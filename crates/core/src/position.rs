//! Position sizing and PnL — steps 4 and 6 of the strategy pseudo-code.
//!
//! **Share ratio** (step 4): the paper keeps the book "as close to
//! cash-neutral as possible, but just slightly on the long side". With
//! prices `Pi > Pj`:
//!
//! * long `i`, short `j`  → 1 share of `i` long, `x = ⌊Pi/Pj⌋` shares of
//!   `j` short (long value `Pi` ≥ short value `x·Pj`);
//! * short `i`, long `j`  → `x = ⌈Pi/Pj⌉` shares of `j` long, 1 share of
//!   `i` short (long value `x·Pj` ≥ short value `Pi`).
//!
//! Worked example from the paper: buying MSFT at $30 and selling IBM at
//! $130 gives a 5 : 1 ratio — $150 long vs $130 short.
//!
//! **Return** (step 6): `R = π / (Pᵢ Nᵢ + Pⱼ Nⱼ)` over entry prices. (The
//! paper's worked example divides its $5 profit by $180 while stating the
//! total cost is $280; the formula — and this implementation — uses $280,
//! giving 1.79%. The discrepancy is an arithmetic slip in the paper and is
//! unit-tested below.)

use serde::{Deserialize, Serialize};

/// Direction of one leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// Long the stock.
    Long,
    /// Short the stock.
    Short,
}

impl Side {
    /// Sign applied to price moves: +1 long, −1 short.
    pub fn sign(self) -> f64 {
        match self {
            Side::Long => 1.0,
            Side::Short => -1.0,
        }
    }

    /// The opposite side.
    pub fn flip(self) -> Side {
        match self {
            Side::Long => Side::Short,
            Side::Short => Side::Long,
        }
    }
}

/// One leg of an open pair position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Leg {
    /// Stock index (into the universe).
    pub stock: usize,
    /// Direction.
    pub side: Side,
    /// Shares held.
    pub shares: u32,
    /// Entry price.
    pub entry_price: f64,
}

/// An open pair position: always exactly two legs on opposite sides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairPosition {
    /// The long leg.
    pub long: Leg,
    /// The short leg.
    pub short: Leg,
    /// Interval at which the position was opened.
    pub entry_interval: usize,
}

/// Compute the paper's share ratio. Returns `(long_shares, short_shares)`
/// for the given entry prices.
///
/// The paper's worked example — long MSFT at \$30, short IBM at \$130:
///
/// ```
/// // "a ratio of 5:1 would give us an allocation of $150 long and
/// //  $130 short"
/// assert_eq!(pairtrade_core::position::share_ratio(30.0, 130.0), (5, 1));
/// ```
///
/// # Panics
/// Panics if either price is non-positive.
pub fn share_ratio(long_price: f64, short_price: f64) -> (u32, u32) {
    assert!(
        long_price > 0.0 && short_price > 0.0,
        "prices must be positive"
    );
    if long_price >= short_price {
        // Long the expensive stock: 1 long, floor(Pl/Ps) short.
        let x = (long_price / short_price).floor().max(1.0) as u32;
        (1, x)
    } else {
        // Long the cheap stock: ceil(Ps/Pl) long, 1 short.
        let x = (short_price / long_price).ceil().max(1.0) as u32;
        (x, 1)
    }
}

impl PairPosition {
    /// Open a position: long `long_stock` at `long_price`, short
    /// `short_stock` at `short_price`, sized by [`share_ratio`].
    pub fn open(
        entry_interval: usize,
        long_stock: usize,
        long_price: f64,
        short_stock: usize,
        short_price: f64,
    ) -> Self {
        let (nl, ns) = share_ratio(long_price, short_price);
        PairPosition {
            long: Leg {
                stock: long_stock,
                side: Side::Long,
                shares: nl,
                entry_price: long_price,
            },
            short: Leg {
                stock: short_stock,
                side: Side::Short,
                shares: ns,
                entry_price: short_price,
            },
            entry_interval,
        }
    }

    /// Gross entry value `Pᵢ Nᵢ + Pⱼ Nⱼ` — the return denominator.
    pub fn gross_entry_value(&self) -> f64 {
        self.long.entry_price * self.long.shares as f64
            + self.short.entry_price * self.short.shares as f64
    }

    /// Net (signed) exposure: long value − short value at entry. The
    /// ratio rule guarantees this is ≥ 0 ("just slightly on the long
    /// side").
    pub fn net_entry_exposure(&self) -> f64 {
        self.long.entry_price * self.long.shares as f64
            - self.short.entry_price * self.short.shares as f64
    }

    /// Profit in dollars at the given exit prices (before costs):
    /// `π = Nl (Pl_exit − Pl_entry) − Ns (Ps_exit − Ps_entry)`.
    pub fn pnl(&self, long_exit: f64, short_exit: f64) -> f64 {
        self.long.shares as f64 * (long_exit - self.long.entry_price)
            - self.short.shares as f64 * (short_exit - self.short.entry_price)
    }

    /// The paper's trade return `R = π / (Pᵢ Nᵢ + Pⱼ Nⱼ)`.
    pub fn trade_return(&self, long_exit: f64, short_exit: f64) -> f64 {
        self.pnl(long_exit, short_exit) / self.gross_entry_value()
    }

    /// Total shares across both legs (used for per-share cost models).
    pub fn total_shares(&self) -> u32 {
        self.long.shares + self.short.shares
    }
}

impl wire::Codec for Side {
    fn encode(&self, w: &mut wire::Writer) {
        let tag: u8 = match self {
            Side::Long => 0,
            Side::Short => 1,
        };
        wire::Codec::encode(&tag, w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(match <u8 as wire::Codec>::decode(r)? {
            0 => Side::Long,
            1 => Side::Short,
            _ => return Err(wire::WireError::Invalid("side tag")),
        })
    }
}

impl wire::Codec for Leg {
    fn encode(&self, w: &mut wire::Writer) {
        self.stock.encode(w);
        self.side.encode(w);
        self.shares.encode(w);
        self.entry_price.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(Leg {
            stock: usize::decode(r)?,
            side: Side::decode(r)?,
            shares: u32::decode(r)?,
            entry_price: f64::decode(r)?,
        })
    }
}

impl wire::Codec for PairPosition {
    fn encode(&self, w: &mut wire::Writer) {
        self.long.encode(w);
        self.short.encode(w);
        self.entry_interval.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(PairPosition {
            long: Leg::decode(r)?,
            short: Leg::decode(r)?,
            entry_interval: usize::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_msft_ibm_ratio() {
        // "if we are buying MSFT at $30 and selling IBM at $130, a ratio of
        //  5:1 would give us an allocation of $150 long and $130 short."
        let (long_shares, short_shares) = share_ratio(30.0, 130.0);
        assert_eq!((long_shares, short_shares), (5, 1));
        let pos = PairPosition::open(0, 0, 30.0, 1, 130.0);
        assert_eq!(pos.long.shares, 5);
        assert_eq!(pos.short.shares, 1);
        assert!((pos.net_entry_exposure() - 20.0).abs() < 1e-12); // $150-$130
    }

    #[test]
    fn floor_rule_when_long_expensive() {
        // Long IBM $130, short MSFT $30: x = floor(130/30) = 4.
        let (nl, ns) = share_ratio(130.0, 30.0);
        assert_eq!((nl, ns), (1, 4));
        let pos = PairPosition::open(0, 1, 130.0, 0, 30.0);
        // $130 long vs $120 short: slightly long.
        assert!((pos.net_entry_exposure() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn always_slightly_long() {
        // Property over a price lattice: net exposure >= 0 always.
        for pl10 in 1..60u32 {
            for ps10 in 1..60u32 {
                let (pl, ps) = (pl10 as f64 * 7.3, ps10 as f64 * 11.1);
                let pos = PairPosition::open(0, 0, pl, 1, ps);
                assert!(
                    pos.net_entry_exposure() >= -1e-9,
                    "short-heavy book at Pl={pl} Ps={ps}: {}",
                    pos.net_entry_exposure()
                );
            }
        }
    }

    #[test]
    fn equal_prices_trade_one_to_one() {
        assert_eq!(share_ratio(50.0, 50.0), (1, 1));
    }

    #[test]
    fn paper_pnl_example_with_corrected_return() {
        // "long MSFT at $30 and short IBM at $130 with ratio 5:1. If when
        //  we reverse the position MSFT is $29 and IBM is $120, then we
        //  profit ($29-$30)*5 + ($120-$130)(-1) = $5."
        let pos = PairPosition::open(0, 0, 30.0, 1, 130.0);
        let pnl = pos.pnl(29.0, 120.0);
        assert!((pnl - 5.0).abs() < 1e-12);
        // "The total cost ... is 5($30) + 1($130) = $280" — the formula's
        // denominator. (The paper then slips and divides by $180.)
        assert!((pos.gross_entry_value() - 280.0).abs() < 1e-12);
        let r = pos.trade_return(29.0, 120.0);
        assert!((r - 5.0 / 280.0).abs() < 1e-12);
    }

    #[test]
    fn losing_trade_has_negative_return() {
        let pos = PairPosition::open(0, 0, 30.0, 1, 130.0);
        // Divergence widens instead of closing.
        let r = pos.trade_return(28.0, 135.0);
        assert!(r < 0.0);
        assert!((pos.pnl(28.0, 135.0) + 15.0).abs() < 1e-12);
    }

    #[test]
    fn side_signs() {
        assert_eq!(Side::Long.sign(), 1.0);
        assert_eq!(Side::Short.sign(), -1.0);
        assert_eq!(Side::Long.flip(), Side::Short);
    }

    #[test]
    #[should_panic]
    fn zero_price_rejected() {
        let _ = share_ratio(0.0, 10.0);
    }
}
