//! Durable epoch checkpoints: atomic writes, CRC validation, and
//! recovery to the latest *complete* epoch.
//!
//! The multi-process shard runner cuts the running sweep at epoch
//! boundaries and persists every component's encoded state as one blob.
//! This store makes those blobs survive `kill -9` at any instant:
//!
//! * **Torn writes are impossible to observe.** A checkpoint is written
//!   to a temporary file, `fsync`ed, then `rename`d into place — readers
//!   only ever see a file that was completely written or not at all. The
//!   directory is `fsync`ed after the rename so the entry itself is
//!   durable.
//! * **Corruption is detected, not trusted.** Every file carries a magic,
//!   a version, its payload length and a CRC-32 over the payload. A
//!   truncated or bit-flipped file fails validation and recovery falls
//!   back to the previous epoch.
//! * **The manifest names the newest complete epoch.** `MANIFEST` is a
//!   one-line pointer, itself replaced atomically after the checkpoint it
//!   names is durable. If the manifest is stale or missing, recovery
//!   scans `ckpt-*.bin` files newest-first — the manifest is an
//!   optimisation, never the sole source of truth.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use wire::{crc32, Reader, WireError};

/// File magic: "MMCK" (MarketMiner ChecKpoint).
const MAGIC: [u8; 4] = *b"MMCK";
/// Format version.
const VERSION: u8 = 1;
/// Fixed header: magic(4) + version(1) + epoch(8) + len(8) + crc(4).
const HEADER_LEN: usize = 4 + 1 + 8 + 8 + 4;

/// A checkpoint store error.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// No valid checkpoint exists.
    NoCheckpoint,
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io: {e}"),
            CkptError::NoCheckpoint => write!(f, "no valid checkpoint on disk"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// A checkpoint file that failed validation during recovery, reported so
/// the caller can log a `checkpoint.corrupt` incident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptCheckpoint {
    /// The offending file.
    pub path: PathBuf,
    /// The epoch its name claims.
    pub epoch: u64,
    /// Why validation failed.
    pub reason: String,
}

/// The result of recovery: the newest valid checkpoint plus every newer
/// file that had to be skipped.
#[derive(Debug)]
pub struct Recovered {
    /// Epoch of the loaded checkpoint.
    pub epoch: u64,
    /// Its payload.
    pub payload: Vec<u8>,
    /// Newer checkpoint files that failed validation (newest first).
    pub corrupt: Vec<CorruptCheckpoint>,
}

/// Outcome of one durable save, for telemetry.
#[derive(Debug, Clone, Copy)]
pub struct SaveReport {
    /// Bytes written (header + payload).
    pub bytes: u64,
    /// Wall time of the save, microseconds.
    pub write_us: u64,
    /// `fsync` calls issued (file + directory).
    pub fsyncs: u32,
}

/// A directory of epoch checkpoints with atomic save and validated
/// recovery.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

fn ckpt_name(epoch: u64) -> String {
    format!("ckpt-{epoch:010}.bin")
}

fn parse_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

impl CheckpointStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn fsync_dir(&self) -> std::io::Result<()> {
        // Durability of the rename itself. Directory fsync is a no-op on
        // some platforms; best effort beyond Linux.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Durably save `payload` as the checkpoint for `epoch`.
    ///
    /// Write path: tmp file → fsync → rename → fsync dir → manifest tmp →
    /// rename → fsync dir. A crash at any point leaves either the old or
    /// the new checkpoint fully intact and discoverable.
    pub fn save(&self, epoch: u64, payload: &[u8]) -> Result<SaveReport, CkptError> {
        let start = std::time::Instant::now();
        let mut fsyncs = 0u32;

        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&epoch.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(payload);

        let tmp = self.dir.join(format!(".tmp-{}", ckpt_name(epoch)));
        let fin = self.dir.join(ckpt_name(epoch));
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
            fsyncs += 1;
        }
        fs::rename(&tmp, &fin)?;
        self.fsync_dir()?;
        fsyncs += 1;

        // Manifest: a pointer to the newest complete epoch, replaced
        // atomically only after that checkpoint is durable.
        let mtmp = self.dir.join(".tmp-MANIFEST");
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&mtmp)?;
            f.write_all(ckpt_name(epoch).as_bytes())?;
            f.sync_all()?;
            fsyncs += 1;
        }
        fs::rename(&mtmp, self.dir.join("MANIFEST"))?;
        self.fsync_dir()?;
        fsyncs += 1;

        Ok(SaveReport {
            bytes: buf.len() as u64,
            write_us: start.elapsed().as_micros() as u64,
            fsyncs,
        })
    }

    /// Validate and load one checkpoint file, returning `(epoch, payload)`.
    fn load_file(path: &Path) -> Result<(u64, Vec<u8>), String> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| format!("unreadable: {e}"))?;
        if bytes.len() < HEADER_LEN {
            return Err("truncated header".into());
        }
        let mut r = Reader::new(&bytes);
        let magic = r.take(4).expect("header length checked");
        if magic != MAGIC {
            return Err("bad magic".into());
        }
        let version = r.take(1).expect("header length checked")[0];
        if version != VERSION {
            return Err(format!("unknown version {version}"));
        }
        let word = |r: &mut Reader<'_>| -> u64 {
            u64::from_le_bytes(r.take(8).unwrap().try_into().unwrap())
        };
        let epoch = word(&mut r);
        let len = word(&mut r) as usize;
        let crc = u32::from_le_bytes(r.take(4).unwrap().try_into().unwrap());
        let payload = r
            .take(len)
            .map_err(|_: WireError| "truncated payload".to_string())?;
        if !r.is_empty() {
            return Err("trailing bytes".into());
        }
        if crc32(payload) != crc {
            return Err("crc mismatch".into());
        }
        Ok((epoch, payload.to_vec()))
    }

    /// All checkpoint epochs on disk, descending (no validation).
    fn epochs_desc(&self) -> Result<Vec<u64>, CkptError> {
        let mut epochs: Vec<u64> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_epoch(&e.file_name().to_string_lossy()))
            .collect();
        epochs.sort_unstable_by(|a, b| b.cmp(a));
        Ok(epochs)
    }

    /// Recover the newest *valid* checkpoint.
    ///
    /// The manifest's epoch is tried first; on any validation failure the
    /// scan falls back through older epochs, collecting a
    /// [`CorruptCheckpoint`] record for each skipped file. Returns
    /// [`CkptError::NoCheckpoint`] when nothing valid exists.
    pub fn recover(&self) -> Result<Recovered, CkptError> {
        let mut corrupt = Vec::new();
        for epoch in self.epochs_desc()? {
            let path = self.dir.join(ckpt_name(epoch));
            match Self::load_file(&path) {
                Ok((file_epoch, payload)) if file_epoch == epoch => {
                    return Ok(Recovered {
                        epoch,
                        payload,
                        corrupt,
                    });
                }
                Ok((file_epoch, _)) => corrupt.push(CorruptCheckpoint {
                    path,
                    epoch,
                    reason: format!("epoch mismatch: file says {file_epoch}"),
                }),
                Err(reason) => corrupt.push(CorruptCheckpoint {
                    path,
                    epoch,
                    reason,
                }),
            }
        }
        Err(CkptError::NoCheckpoint)
    }

    /// The newest complete epoch, if any (manifest first, then scan).
    pub fn latest_epoch(&self) -> Option<u64> {
        if let Ok(name) = fs::read_to_string(self.dir.join("MANIFEST")) {
            if let Some(epoch) = parse_epoch(name.trim()) {
                if Self::load_file(&self.dir.join(ckpt_name(epoch))).is_ok() {
                    return Some(epoch);
                }
            }
        }
        self.recover().ok().map(|r| r.epoch)
    }

    /// Delete all but the newest `keep` checkpoints.
    pub fn retain_last(&self, keep: usize) -> Result<(), CkptError> {
        for epoch in self.epochs_desc()?.into_iter().skip(keep) {
            let _ = fs::remove_file(self.dir.join(ckpt_name(epoch)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mm-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_and_recover_roundtrip() {
        let store = CheckpointStore::open(tmpdir("roundtrip")).unwrap();
        let report = store.save(0, b"epoch zero").unwrap();
        assert!(report.bytes > 10);
        assert!(report.fsyncs >= 3);
        store.save(1, b"epoch one").unwrap();
        let r = store.recover().unwrap();
        assert_eq!(r.epoch, 1);
        assert_eq!(r.payload, b"epoch one");
        assert!(r.corrupt.is_empty());
        assert_eq!(store.latest_epoch(), Some(1));
    }

    #[test]
    fn truncation_falls_back_to_previous_epoch() {
        let store = CheckpointStore::open(tmpdir("truncate")).unwrap();
        store.save(3, b"good old state").unwrap();
        store.save(4, b"the torn one").unwrap();
        // Simulate a torn write that somehow survived (e.g. silent disk
        // truncation after the rename): chop the newest file mid-payload.
        let newest = store.dir().join(ckpt_name(4));
        let full = fs::read(&newest).unwrap();
        fs::write(&newest, &full[..full.len() - 5]).unwrap();

        let r = store.recover().unwrap();
        assert_eq!(r.epoch, 3);
        assert_eq!(r.payload, b"good old state");
        assert_eq!(r.corrupt.len(), 1);
        assert_eq!(r.corrupt[0].epoch, 4);
        assert!(r.corrupt[0].reason.contains("truncated"));
    }

    #[test]
    fn bit_flip_falls_back_to_previous_epoch() {
        let store = CheckpointStore::open(tmpdir("bitflip")).unwrap();
        store.save(7, b"pristine").unwrap();
        store.save(8, b"will be flipped").unwrap();
        let newest = store.dir().join(ckpt_name(8));
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip one payload bit
        fs::write(&newest, &bytes).unwrap();

        let r = store.recover().unwrap();
        assert_eq!(r.epoch, 7);
        assert_eq!(r.corrupt.len(), 1);
        assert_eq!(r.corrupt[0].reason, "crc mismatch");
        // latest_epoch must not trust the (stale) manifest either.
        assert_eq!(store.latest_epoch(), Some(7));
    }

    #[test]
    fn missing_manifest_scans_files() {
        let store = CheckpointStore::open(tmpdir("noman")).unwrap();
        store.save(1, b"a").unwrap();
        store.save(2, b"b").unwrap();
        fs::remove_file(store.dir().join("MANIFEST")).unwrap();
        assert_eq!(store.latest_epoch(), Some(2));
        assert_eq!(store.recover().unwrap().epoch, 2);
    }

    #[test]
    fn empty_store_reports_no_checkpoint() {
        let store = CheckpointStore::open(tmpdir("empty")).unwrap();
        assert!(matches!(store.recover(), Err(CkptError::NoCheckpoint)));
        assert_eq!(store.latest_epoch(), None);
    }

    #[test]
    fn retain_last_prunes_old_epochs() {
        let store = CheckpointStore::open(tmpdir("retain")).unwrap();
        for e in 0..6 {
            store.save(e, format!("e{e}").as_bytes()).unwrap();
        }
        store.retain_last(2).unwrap();
        let r = store.recover().unwrap();
        assert_eq!(r.epoch, 5);
        // Only 4 and 5 remain.
        let mut left: Vec<u64> = fs::read_dir(store.dir())
            .unwrap()
            .filter_map(|e| parse_epoch(&e.unwrap().file_name().to_string_lossy()))
            .collect();
        left.sort_unstable();
        assert_eq!(left, vec![4, 5]);
    }

    #[test]
    fn wrong_magic_is_corrupt() {
        let store = CheckpointStore::open(tmpdir("magic")).unwrap();
        store.save(0, b"ok").unwrap();
        store.save(1, b"bad").unwrap();
        let newest = store.dir().join(ckpt_name(1));
        let mut bytes = fs::read(&newest).unwrap();
        bytes[0] = b'X';
        fs::write(&newest, &bytes).unwrap();
        let r = store.recover().unwrap();
        assert_eq!(r.epoch, 0);
        assert_eq!(r.corrupt[0].reason, "bad magic");
    }
}
