//! Retracement levels — step 5 of the strategy pseudo-code.
//!
//! At entry, with `Sl`, `Sh`, `S̄` the low, high and mean of the pair
//! spread over the trailing `RT` intervals and `Se` the entry spread:
//!
//! * `Se ≤ S̄` (entered near the bottom of the range): reverse when the
//!   spread *rises* to `L = Sl + ℓ (Sh − Sl)`;
//! * `Se > S̄` (entered near the top): reverse when the spread *falls* to
//!   `L = Sh − ℓ (Sh − Sl)`.
//!
//! Paper example (MSFT–IBM spread, high $100, low $80, ℓ = 1/3): entry at
//! ~$80 reverses at `80 + 20/3 = $86.67`; entry at ~$100 reverses at
//! `100 − 20/3 = $93.33`. (The paper prints $93.40 — an arithmetic slip,
//! tested against the correct value below.)

use serde::{Deserialize, Serialize};
use timeseries::rolling::RangeStats;

/// A fixed retracement rule, established at position entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetracementRule {
    /// The retracement level `L`.
    pub level: f64,
    /// True when the exit condition is `spread >= level` (entered low);
    /// false when it is `spread <= level` (entered high).
    pub exit_above: bool,
}

impl RetracementRule {
    /// Build the rule from the trailing spread stats and the entry spread.
    ///
    /// # Panics
    /// Panics unless `0 < ell < 1`.
    pub fn at_entry(stats: RangeStats, entry_spread: f64, ell: f64) -> Self {
        assert!(ell > 0.0 && ell < 1.0, "ℓ must be in (0, 1)");
        let range = stats.high - stats.low;
        if entry_spread <= stats.mean {
            RetracementRule {
                level: stats.low + ell * range,
                exit_above: true,
            }
        } else {
            RetracementRule {
                level: stats.high - ell * range,
                exit_above: false,
            }
        }
    }

    /// True when the current spread has reached the retracement level.
    pub fn reached(&self, spread: f64) -> bool {
        if self.exit_above {
            spread >= self.level
        } else {
            spread <= self.level
        }
    }
}

impl wire::Codec for RetracementRule {
    fn encode(&self, w: &mut wire::Writer) {
        self.level.encode(w);
        self.exit_above.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(RetracementRule {
            level: f64::decode(r)?,
            exit_above: bool::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(low: f64, high: f64, mean: f64) -> RangeStats {
        RangeStats {
            low,
            high,
            mean,
            len: 60,
        }
    }

    #[test]
    fn paper_low_entry_example() {
        // High $100, low $80, entry ~$80, ℓ = 1/3 -> L = $86.67, exit up.
        let rule = RetracementRule::at_entry(stats(80.0, 100.0, 90.0), 80.0, 1.0 / 3.0);
        assert!((rule.level - 86.666_666_666_666_67).abs() < 1e-9);
        assert!(rule.exit_above);
        assert!(!rule.reached(86.0));
        assert!(rule.reached(86.67));
        assert!(rule.reached(95.0));
    }

    #[test]
    fn paper_high_entry_example_corrected() {
        // Entry ~$100: L = 100 - 20/3 = $93.33 (the paper prints 93.40).
        let rule = RetracementRule::at_entry(stats(80.0, 100.0, 90.0), 100.0, 1.0 / 3.0);
        assert!((rule.level - 93.333_333_333_333_33).abs() < 1e-9);
        assert!(!rule.exit_above);
        assert!(!rule.reached(94.0));
        assert!(rule.reached(93.33));
        assert!(rule.reached(85.0));
    }

    #[test]
    fn entry_at_mean_counts_as_low_entry() {
        // Se <= S̄ branch per the paper's "If Se ≤ S̄".
        let rule = RetracementRule::at_entry(stats(10.0, 20.0, 15.0), 15.0, 0.5);
        assert!(rule.exit_above);
        assert_eq!(rule.level, 15.0);
    }

    #[test]
    fn larger_ell_waits_for_deeper_retracement() {
        let s = stats(80.0, 100.0, 90.0);
        let shallow = RetracementRule::at_entry(s, 80.0, 1.0 / 3.0);
        let deep = RetracementRule::at_entry(s, 80.0, 2.0 / 3.0);
        assert!(deep.level > shallow.level);
        // 2/3 retracement from the bottom: 80 + 40/3 = 93.33.
        assert!((deep.level - 93.333_333_333_333_33).abs() < 1e-9);
    }

    #[test]
    fn degenerate_flat_range() {
        // Sh == Sl: level equals the (single) spread value; an entry at
        // that value on the low branch exits immediately — harmless.
        let rule = RetracementRule::at_entry(stats(50.0, 50.0, 50.0), 50.0, 0.5);
        assert_eq!(rule.level, 50.0);
        assert!(rule.reached(50.0));
    }

    #[test]
    fn negative_spreads_work() {
        // Spreads are signed (P_i - P_j with canonical ordering).
        let rule = RetracementRule::at_entry(stats(-100.0, -80.0, -90.0), -100.0, 1.0 / 3.0);
        assert!(rule.exit_above);
        assert!((rule.level - (-93.333_333_333_333_33)).abs() < 1e-9);
        assert!(rule.reached(-90.0));
        assert!(!rule.reached(-99.0));
    }

    #[test]
    #[should_panic]
    fn ell_out_of_range_rejected() {
        let _ = RetracementRule::at_entry(stats(0.0, 1.0, 0.5), 0.5, 1.0);
    }
}
