//! Completed-trade records.

use serde::{Deserialize, Serialize};

use crate::position::PairPosition;

/// Why a position was reversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitReason {
    /// The spread reached the retracement level `L`.
    Retracement,
    /// `HP` intervals elapsed ("after HP time periods the position is
    /// reversed, regardless of the situation").
    MaxHolding,
    /// End of day ("we should reverse all positions at the end of the
    /// trading day").
    EndOfDay,
    /// Extension: absolute stop-loss.
    StopLoss,
    /// Extension: correlation reverted into the average band.
    CorrReversion,
    /// Extension: a leg's symbol was marked degraded (outage, halt, or
    /// quarantine) and the position was flattened defensively.
    Degraded,
    /// Risk overlay: the wrapper's stop-loss threshold was breached.
    OverlayStop,
    /// Risk overlay: the wrapper's profit target was reached.
    OverlayTarget,
    /// Risk overlay: the wrapper's (tighter) maximum holding period
    /// elapsed before the inner strategy's own exit fired.
    OverlayHolding,
}

impl ExitReason {
    /// Stable lower-case name for reports and lineage summaries.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExitReason::Retracement => "retracement",
            ExitReason::MaxHolding => "max-holding",
            ExitReason::EndOfDay => "end-of-day",
            ExitReason::StopLoss => "stop-loss",
            ExitReason::CorrReversion => "corr-reversion",
            ExitReason::Degraded => "degraded",
            ExitReason::OverlayStop => "overlay-stop",
            ExitReason::OverlayTarget => "overlay-target",
            ExitReason::OverlayHolding => "overlay-holding",
        }
    }
}

/// One completed round trip on a pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trade {
    /// Canonical pair indices `(i, j)` with `i > j`.
    pub pair: (usize, usize),
    /// Entry interval.
    pub entry_interval: usize,
    /// Exit interval.
    pub exit_interval: usize,
    /// Why the position was closed.
    pub reason: ExitReason,
    /// Dollar PnL (after costs, when a cost model is active).
    pub pnl: f64,
    /// Gross entry value (the return denominator).
    pub gross: f64,
    /// The trade return `R = π / (PᵢNᵢ + PⱼNⱼ)`, after costs.
    pub ret: f64,
    /// The position that was held.
    pub position: PairPosition,
}

impl Trade {
    /// Holding period in intervals.
    pub fn holding_intervals(&self) -> usize {
        self.exit_interval - self.entry_interval
    }

    /// True for a winning trade (positive return) — the win–loss ratio's
    /// numerator membership test.
    pub fn is_win(&self) -> bool {
        self.ret > 0.0
    }

    /// True for a losing trade (negative return).
    pub fn is_loss(&self) -> bool {
        self.ret < 0.0
    }
}

impl wire::Codec for ExitReason {
    fn encode(&self, w: &mut wire::Writer) {
        let tag: u8 = match self {
            ExitReason::Retracement => 0,
            ExitReason::MaxHolding => 1,
            ExitReason::EndOfDay => 2,
            ExitReason::StopLoss => 3,
            ExitReason::CorrReversion => 4,
            ExitReason::Degraded => 5,
            ExitReason::OverlayStop => 6,
            ExitReason::OverlayTarget => 7,
            ExitReason::OverlayHolding => 8,
        };
        wire::Codec::encode(&tag, w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(match <u8 as wire::Codec>::decode(r)? {
            0 => ExitReason::Retracement,
            1 => ExitReason::MaxHolding,
            2 => ExitReason::EndOfDay,
            3 => ExitReason::StopLoss,
            4 => ExitReason::CorrReversion,
            5 => ExitReason::Degraded,
            6 => ExitReason::OverlayStop,
            7 => ExitReason::OverlayTarget,
            8 => ExitReason::OverlayHolding,
            _ => return Err(wire::WireError::Invalid("exit reason tag")),
        })
    }
}

impl wire::Codec for Trade {
    fn encode(&self, w: &mut wire::Writer) {
        self.pair.encode(w);
        self.entry_interval.encode(w);
        self.exit_interval.encode(w);
        self.reason.encode(w);
        self.pnl.encode(w);
        self.gross.encode(w);
        self.ret.encode(w);
        self.position.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(Trade {
            pair: <(usize, usize)>::decode(r)?,
            entry_interval: usize::decode(r)?,
            exit_interval: usize::decode(r)?,
            reason: ExitReason::decode(r)?,
            pnl: f64::decode(r)?,
            gross: f64::decode(r)?,
            ret: f64::decode(r)?,
            position: crate::position::PairPosition::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::position::PairPosition;

    #[test]
    fn trade_accounting() {
        let pos = PairPosition::open(10, 0, 30.0, 1, 130.0);
        let t = Trade {
            pair: (1, 0),
            entry_interval: 10,
            exit_interval: 25,
            reason: ExitReason::Retracement,
            pnl: 5.0,
            gross: 280.0,
            ret: 5.0 / 280.0,
            position: pos,
        };
        assert_eq!(t.holding_intervals(), 15);
        assert!(t.is_win());
        assert!(!t.is_loss());
    }

    #[test]
    fn zero_return_is_neither_win_nor_loss() {
        // Matches the paper's win-loss ratio definition, which counts
        // strictly positive and strictly negative returns.
        let pos = PairPosition::open(0, 0, 10.0, 1, 10.0);
        let t = Trade {
            pair: (1, 0),
            entry_interval: 0,
            exit_interval: 1,
            reason: ExitReason::EndOfDay,
            pnl: 0.0,
            gross: 20.0,
            ret: 0.0,
            position: pos,
        };
        assert!(!t.is_win() && !t.is_loss());
    }
}
