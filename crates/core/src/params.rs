//! Strategy parameters — Table I of the paper — and the 42-vector
//! experiment grid.
//!
//! | Sym | Field                    | Paper description                                            | Values (Table I)            |
//! |-----|--------------------------|--------------------------------------------------------------|-----------------------------|
//! | Δs  | `dt_seconds`             | Time window                                                  | 30 s                        |
//! | Ctype | `ctype`                | Type of correlation measure                                  | Pearson / Maronna / Combined|
//! | A   | `min_avg_corr`           | Minimum correlation for trading                              | 0.1                         |
//! | M   | `corr_window`            | Time window for correlation calculation                      | 50, 100, 200                |
//! | W   | `avg_window`             | Time window of average correlation calculation               | 60, 120                     |
//! | Y   | `div_window`             | Window over which divergences from the average are considered| 10, 20                      |
//! | d   | `divergence`             | Divergence level required to trigger a trade (relative)      | 0.01%–0.10%                 |
//! | ℓ   | `retracement`            | Retracement level for reversing a position                   | 1/3, 2/3                    |
//! | RT  | `spread_window`          | Window for measuring the spread level                        | 60                          |
//! | HP  | `max_holding`            | Maximum holding period for any position                      | 30, 40                      |
//! | ST  | `min_time_before_close`  | Minimum time before close required to open a new position    | 20                          |
//!
//! All windows and periods are in Δs time units. The paper uses 42
//! parameter sets = 3 correlation treatments × 14 levels of the remaining
//! factors but does not enumerate the 14; [`paper_nontreatment_levels`]
//! reconstructs them as a one-factor-at-a-time design around the base
//! vector plus two interaction levels (documented in DESIGN.md).

use serde::{Deserialize, Serialize};
use stats::correlation::CorrType;

/// A full strategy parameter vector `k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyParams {
    /// Δs — interval width in seconds.
    pub dt_seconds: u32,
    /// Ctype — correlation treatment.
    pub ctype: CorrType,
    /// A — minimum average correlation for trading.
    pub min_avg_corr: f64,
    /// M — returns per correlation window.
    pub corr_window: usize,
    /// W — intervals in the average-correlation window.
    pub avg_window: usize,
    /// Y — look-back (intervals) for divergence detection.
    pub div_window: usize,
    /// d — relative divergence threshold (fraction: 0.0001 = 0.01%).
    pub divergence: f64,
    /// ℓ — retracement parameter in (0, 1).
    pub retracement: f64,
    /// RT — intervals in the spread-level window.
    pub spread_window: usize,
    /// HP — maximum holding period (intervals).
    pub max_holding: usize,
    /// ST — minimum intervals before close to open a new position.
    pub min_time_before_close: usize,
}

/// Parameter validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidParams(pub String);

impl std::fmt::Display for InvalidParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid strategy parameters: {}", self.0)
    }
}

impl std::error::Error for InvalidParams {}

impl StrategyParams {
    /// The paper's base vector: the example element of `K` given in
    /// Section III, with ℓ = 1/3 (the first Table-I level).
    pub fn paper_default() -> Self {
        StrategyParams {
            dt_seconds: 30,
            ctype: CorrType::Pearson,
            min_avg_corr: 0.1,
            corr_window: 100,
            avg_window: 60,
            div_window: 10,
            divergence: 0.0001, // 0.01%
            retracement: 1.0 / 3.0,
            spread_window: 60,
            max_holding: 30,
            min_time_before_close: 20,
        }
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        let err = |m: &str| Err(InvalidParams(m.to_string()));
        if self.dt_seconds == 0 || !taq::time::SECONDS_PER_SESSION.is_multiple_of(self.dt_seconds) {
            return err("Δs must be positive and divide the 23400-second session");
        }
        if !(0.0..=1.0).contains(&self.min_avg_corr) {
            return err("A must lie in [0, 1]");
        }
        if self.corr_window < 2 {
            return err("M must be at least 2");
        }
        if self.avg_window == 0 || self.div_window == 0 || self.spread_window == 0 {
            return err("W, Y and RT must be positive");
        }
        if self.divergence <= 0.0 {
            return err("d must be positive");
        }
        if !(self.retracement > 0.0 && self.retracement < 1.0) {
            return err("ℓ must lie strictly between 0 and 1");
        }
        if self.max_holding == 0 {
            return err("HP must be positive");
        }
        let intervals = (taq::time::SECONDS_PER_SESSION / self.dt_seconds) as usize;
        if self.corr_window + self.avg_window >= intervals {
            return err("M + W must leave room to trade within the day");
        }
        Ok(())
    }

    /// Intervals per trading day at this Δs (`smax`).
    pub fn intervals_per_day(&self) -> usize {
        (taq::time::SECONDS_PER_SESSION / self.dt_seconds) as usize
    }

    /// First interval index at which the strategy can act: one full
    /// correlation window (`M` returns need `M + 1` prices, i.e. interval
    /// `M`) plus the `W` averaging window.
    pub fn first_active_interval(&self) -> usize {
        self.corr_window + self.avg_window
    }

    /// Compact label for reports, e.g.
    /// `Pearson/M100/W60/Y10/d0.010%/l0.33/HP30`.
    pub fn label(&self) -> String {
        format!(
            "{}/M{}/W{}/Y{}/d{:.3}%/l{:.2}/HP{}",
            self.ctype,
            self.corr_window,
            self.avg_window,
            self.div_window,
            self.divergence * 100.0,
            self.retracement,
            self.max_holding
        )
    }
}

impl Default for StrategyParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The 14 non-treatment factor levels `K'` (reconstruction; see module
/// docs). `ctype` in the returned vectors is the base's and is meant to be
/// overridden per treatment.
pub fn paper_nontreatment_levels() -> Vec<StrategyParams> {
    let base = StrategyParams::paper_default();
    let mut levels = vec![base];
    // One-factor-at-a-time over the remaining Table-I values.
    levels.push(StrategyParams {
        corr_window: 50,
        ..base
    });
    levels.push(StrategyParams {
        corr_window: 200,
        ..base
    });
    levels.push(StrategyParams {
        avg_window: 120,
        ..base
    });
    levels.push(StrategyParams {
        div_window: 20,
        ..base
    });
    for d_pct in [0.02, 0.03, 0.04, 0.05, 0.10] {
        levels.push(StrategyParams {
            divergence: d_pct / 100.0,
            ..base
        });
    }
    levels.push(StrategyParams {
        retracement: 2.0 / 3.0,
        ..base
    });
    levels.push(StrategyParams {
        max_holding: 40,
        ..base
    });
    // Two interaction levels to reach the paper's 14.
    levels.push(StrategyParams {
        corr_window: 200,
        avg_window: 120,
        ..base
    });
    levels.push(StrategyParams {
        divergence: 0.05 / 100.0,
        retracement: 2.0 / 3.0,
        ..base
    });
    levels
}

/// The full 42-vector grid `K`: every non-treatment level crossed with the
/// three correlation treatments (Maronna, Pearson, Combined).
///
/// ```
/// let grid = pairtrade_core::params::paper_parameter_grid();
/// assert_eq!(grid.len(), 42); // the paper's 42 parameter sets
/// ```
pub fn paper_parameter_grid() -> Vec<StrategyParams> {
    let mut grid = Vec::with_capacity(42);
    for ctype in CorrType::TREATMENTS {
        for level in paper_nontreatment_levels() {
            grid.push(StrategyParams { ctype, ..level });
        }
    }
    grid
}

impl wire::Codec for StrategyParams {
    fn encode(&self, w: &mut wire::Writer) {
        self.dt_seconds.encode(w);
        self.ctype.encode(w);
        self.min_avg_corr.encode(w);
        self.corr_window.encode(w);
        self.avg_window.encode(w);
        self.div_window.encode(w);
        self.divergence.encode(w);
        self.retracement.encode(w);
        self.spread_window.encode(w);
        self.max_holding.encode(w);
        self.min_time_before_close.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        let p = StrategyParams {
            dt_seconds: u32::decode(r)?,
            ctype: CorrType::decode(r)?,
            min_avg_corr: f64::decode(r)?,
            corr_window: usize::decode(r)?,
            avg_window: usize::decode(r)?,
            div_window: usize::decode(r)?,
            divergence: f64::decode(r)?,
            retracement: f64::decode(r)?,
            spread_window: usize::decode(r)?,
            max_holding: usize::decode(r)?,
            min_time_before_close: usize::decode(r)?,
        };
        p.validate()
            .map_err(|_| wire::WireError::Invalid("strategy parameters"))?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_iii_example() {
        // {Δs=30, Ctype=Pearson, A=0.1, M=100, W=60, Y=10, d=0.01,
        //  RT=60, HP=30, ST=20}
        let p = StrategyParams::paper_default();
        assert_eq!(p.dt_seconds, 30);
        assert_eq!(p.ctype, CorrType::Pearson);
        assert_eq!(p.min_avg_corr, 0.1);
        assert_eq!(p.corr_window, 100);
        assert_eq!(p.avg_window, 60);
        assert_eq!(p.div_window, 10);
        assert!((p.divergence - 0.0001).abs() < 1e-15);
        assert_eq!(p.spread_window, 60);
        assert_eq!(p.max_holding, 30);
        assert_eq!(p.min_time_before_close, 20);
        assert!(p.validate().is_ok());
        assert_eq!(p.intervals_per_day(), 780);
        assert_eq!(p.first_active_interval(), 160);
    }

    #[test]
    fn fourteen_levels_and_42_grid() {
        let levels = paper_nontreatment_levels();
        assert_eq!(levels.len(), 14, "paper: 14 non-treatment levels");
        for (i, l) in levels.iter().enumerate() {
            assert!(l.validate().is_ok(), "level {i} invalid");
        }
        // All levels distinct.
        for i in 0..levels.len() {
            for j in 0..i {
                assert_ne!(levels[i], levels[j], "levels {i} and {j} identical");
            }
        }
        let grid = paper_parameter_grid();
        assert_eq!(grid.len(), 42, "paper: 42 parameter sets");
        let pearson = grid.iter().filter(|p| p.ctype == CorrType::Pearson).count();
        assert_eq!(pearson, 14);
    }

    #[test]
    fn grid_covers_table_i_values() {
        let grid = paper_parameter_grid();
        let has = |f: &dyn Fn(&StrategyParams) -> bool| grid.iter().any(f);
        assert!(has(&|p| p.corr_window == 50));
        assert!(has(&|p| p.corr_window == 200));
        assert!(has(&|p| p.avg_window == 120));
        assert!(has(&|p| p.div_window == 20));
        for d in [0.0001, 0.0002, 0.0003, 0.0004, 0.0005, 0.001] {
            assert!(
                has(&|p| (p.divergence - d).abs() < 1e-12),
                "missing d = {d}"
            );
        }
        assert!(has(&|p| (p.retracement - 2.0 / 3.0).abs() < 1e-12));
        assert!(has(&|p| p.max_holding == 40));
    }

    #[test]
    fn validation_rejects_nonsense() {
        let base = StrategyParams::paper_default();
        let bad = [
            StrategyParams {
                dt_seconds: 0,
                ..base
            },
            StrategyParams {
                dt_seconds: 7,
                ..base
            },
            StrategyParams {
                min_avg_corr: 1.5,
                ..base
            },
            StrategyParams {
                corr_window: 1,
                ..base
            },
            StrategyParams {
                avg_window: 0,
                ..base
            },
            StrategyParams {
                divergence: 0.0,
                ..base
            },
            StrategyParams {
                retracement: 0.0,
                ..base
            },
            StrategyParams {
                retracement: 1.0,
                ..base
            },
            StrategyParams {
                max_holding: 0,
                ..base
            },
            StrategyParams {
                corr_window: 700,
                avg_window: 100,
                ..base
            },
        ];
        for (i, p) in bad.iter().enumerate() {
            assert!(p.validate().is_err(), "case {i} should fail");
        }
    }

    #[test]
    fn label_is_informative() {
        let l = StrategyParams::paper_default().label();
        assert!(l.contains("Pearson"));
        assert!(l.contains("M100"));
        assert!(l.contains("0.010%"));
    }
}
