//! Execution extensions.
//!
//! The paper *names* but deliberately defers several refinements: "we
//! point out, but do not consider any further, several other reversal
//! conditions" (absolute stop-loss, correlation reversion), and lists
//! transaction costs / implementation shortfall as future work (§VI).
//! They are implemented here behind a configuration so the backtester can
//! run both the paper-faithful strategy (`ExecutionConfig::paper()`, all
//! off) and the extended one, and the ablation benches can measure what
//! each refinement changes.

use serde::{Deserialize, Serialize};

/// Execution and risk configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// Absolute stop-loss on the trade return (e.g. `Some(0.01)` exits at
    /// −1%); `None` disables — the paper's configuration.
    pub stop_loss: Option<f64>,
    /// Exit when the correlation reverts into `[C̄(1 − d), C̄]`.
    pub corr_reversion_exit: bool,
    /// Commission per share, in dollars (both entry and exit, both legs).
    pub cost_per_share: f64,
    /// Slippage in basis points of each leg's traded value, applied on
    /// entry and exit (a crude implementation-shortfall model).
    pub slippage_bps: f64,
}

impl ExecutionConfig {
    /// Paper-faithful execution: no stops, no reversion exit, no costs.
    pub fn paper() -> Self {
        ExecutionConfig {
            stop_loss: None,
            corr_reversion_exit: false,
            cost_per_share: 0.0,
            slippage_bps: 0.0,
        }
    }

    /// A realistic 2008-flavoured cost model: 1¢/share commission plus
    /// 1 bp slippage — the "implementation shortfall" the paper's future
    /// work calls for.
    pub fn with_costs() -> Self {
        ExecutionConfig {
            cost_per_share: 0.01,
            slippage_bps: 1.0,
            ..Self::paper()
        }
    }

    /// Total round-trip cost in dollars for a position with the given
    /// total share count and gross traded value (entry + exit legs).
    pub fn round_trip_cost(&self, total_shares: u32, gross_traded_value: f64) -> f64 {
        // Commission: per share, charged on entry and on exit.
        let commission = 2.0 * self.cost_per_share * total_shares as f64;
        // Slippage: bps of value, entry and exit.
        let slippage = 2.0 * self.slippage_bps * 1e-4 * gross_traded_value;
        commission + slippage
    }
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl wire::Codec for ExecutionConfig {
    fn encode(&self, w: &mut wire::Writer) {
        self.stop_loss.encode(w);
        self.corr_reversion_exit.encode(w);
        self.cost_per_share.encode(w);
        self.slippage_bps.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(ExecutionConfig {
            stop_loss: Option::<f64>::decode(r)?,
            corr_reversion_exit: bool::decode(r)?,
            cost_per_share: f64::decode(r)?,
            slippage_bps: f64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_free() {
        let e = ExecutionConfig::paper();
        assert_eq!(e.round_trip_cost(100, 10_000.0), 0.0);
        assert_eq!(e.stop_loss, None);
        assert!(!e.corr_reversion_exit);
    }

    #[test]
    fn cost_model_arithmetic() {
        let e = ExecutionConfig::with_costs();
        // 6 shares round trip: 2 * $0.01 * 6 = $0.12 commission.
        // $280 gross: 2 * 1bp * 280 = $0.056 slippage.
        let cost = e.round_trip_cost(6, 280.0);
        assert!((cost - (0.12 + 0.056)).abs() < 1e-12);
    }

    #[test]
    fn costs_scale_linearly() {
        let e = ExecutionConfig::with_costs();
        let c1 = e.round_trip_cost(10, 1000.0);
        let c2 = e.round_trip_cost(20, 2000.0);
        assert!((c2 - 2.0 * c1).abs() < 1e-12);
    }
}
