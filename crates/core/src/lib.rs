//! The canonical intra-day statistical pair-trading strategy of
//! Wang, Rostoker & Wagner (IPPS 2009), Section III.
//!
//! A strategy instance is defined by a parameter vector
//! `k = {Δs, Ctype, A, M, W, Y, d, ℓ, RT, HP, ST}` (Table I) and a pair of
//! stocks. Per Δs interval it:
//!
//! 1. updates the `W`-interval average correlation `C̄(s)`;
//! 2. looks for a *divergence*: `C̄(s) > A` and the correlation has dropped
//!    more than `d` (relative) below the average within the last `Y`
//!    intervals;
//! 3. on divergence, goes long the under-performer and short the
//!    over-performer (by trailing `W`-interval return), sized by the
//!    floor/ceil cash-neutral-but-slightly-long share-ratio rule;
//! 4. fixes a retracement level from the trailing `RT`-interval spread
//!    range and reverses the position when the spread retraces to it, when
//!    `HP` intervals have elapsed, or at the end of the day — whichever
//!    comes first;
//! 5. books the trade return `R = π / (PᵢNᵢ + PⱼNⱼ)`.
//!
//! Module map: [`params`] (Table I and the 42-vector experiment grid),
//! [`signal`] (divergence detection), [`position`] (share sizing and PnL),
//! [`retracement`] (reversal levels), [`trade`] (trade records),
//! [`strategy`] (the [`Strategy`] trait and the paper's per-pair state
//! machine), [`engine`] (day-level driver), [`exec`] (execution
//! extensions the paper notes but defers: stop-loss,
//! correlation-reversion exit, transaction costs), [`baseline`] (the
//! classical Gatev distance-method pairs strategy the correlation
//! approach competes against), and the pluggable strategy algebra:
//! [`kalman`] (dynamic hedge-ratio z-score family), [`overlay`] (the
//! stop/target/holding risk combinator), and [`spec`] (the heterogeneous
//! [`StrategySpec`] that sweeps mix families through).

pub mod baseline;
pub mod ckpt;
pub mod engine;
pub mod exec;
pub mod kalman;
pub mod overlay;
pub mod params;
pub mod position;
pub mod retracement;
pub mod signal;
pub mod spec;
pub mod strategy;
pub mod trade;

pub use engine::{run_pair_day, run_spec_day};
pub use exec::ExecutionConfig;
pub use kalman::{KalmanParams, KalmanStrategy};
pub use overlay::{OverlayParams, OverlayStrategy};
pub use params::StrategyParams;
pub use signal::DivergenceDetector;
pub use spec::{StrategyKind, StrategySpec, SPEC_WIRE_VERSION};
pub use strategy::{InputNeeds, PairStrategy, Strategy};
pub use trade::{ExitReason, Trade};
