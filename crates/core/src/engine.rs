//! The day-level driver: feed a pair's aligned price and correlation
//! series through the [`PairStrategy`]
//! state machine.
//!
//! Index bookkeeping: the backtester computes the correlation series from
//! *log returns*, whose step `t` spans price intervals `t → t + 1`.
//! `first_corr_interval` is therefore the absolute **price-interval** index
//! at which `corr[0]` becomes known.

use crate::exec::ExecutionConfig;
use crate::params::StrategyParams;
use crate::spec::StrategySpec;
use crate::strategy::{IntervalInput, PairStrategy};
use crate::trade::Trade;

/// Run one pair for one day.
///
/// * `prices_i` / `prices_j` — the pair's BAM prices on the Δs grid
///   (`smax` entries, stock `i` being the canonical higher index).
/// * `corr` — the pair's trailing-`M` correlation series; `corr[k]`
///   applies at price interval `first_corr_interval + k`.
///
/// # Panics
/// Panics if price series lengths differ or the correlation series
/// overruns the day.
pub fn run_pair_day(
    pair: (usize, usize),
    params: &StrategyParams,
    exec: &ExecutionConfig,
    prices_i: &[f64],
    prices_j: &[f64],
    corr: &[f64],
    first_corr_interval: usize,
) -> Vec<Trade> {
    assert_eq!(prices_i.len(), prices_j.len(), "price grids must align");
    let smax = prices_i.len();
    assert!(
        first_corr_interval + corr.len() <= smax,
        "correlation series overruns the day"
    );
    let w = params.avg_window;
    let mut strategy = PairStrategy::new(pair, *params, *exec);
    for (k, &c) in corr.iter().enumerate() {
        let s = first_corr_interval + k;
        let w_ret = |p: &[f64]| -> f64 {
            if s >= w && p[s - w] > 0.0 && p[s] > 0.0 {
                p[s] / p[s - w] - 1.0
            } else {
                0.0
            }
        };
        strategy.on_interval(IntervalInput {
            s,
            price_i: prices_i[s],
            price_j: prices_j[s],
            corr: c,
            w_return_i: w_ret(prices_i),
            w_return_j: w_ret(prices_j),
        });
    }
    strategy.finish_day()
}

/// Run one pair for one day under any [`StrategySpec`].
///
/// The spec-generic sibling of [`run_pair_day`]: same index bookkeeping,
/// but the trailing-return window comes from the built strategy's
/// declared [`needs`](Strategy::needs) (a window of 0 means the family
/// ignores trailing returns and they are fed as 0.0).
///
/// # Panics
/// Panics if price series lengths differ or the correlation series
/// overruns the day.
pub fn run_spec_day(
    spec: &StrategySpec,
    pair: (usize, usize),
    exec: &ExecutionConfig,
    prices_i: &[f64],
    prices_j: &[f64],
    corr: &[f64],
    first_corr_interval: usize,
) -> Vec<Trade> {
    assert_eq!(prices_i.len(), prices_j.len(), "price grids must align");
    let smax = prices_i.len();
    assert!(
        first_corr_interval + corr.len() <= smax,
        "correlation series overruns the day"
    );
    let mut strategy = spec.build(pair, *exec);
    let w = strategy.needs().w_return_window;
    for (k, &c) in corr.iter().enumerate() {
        let s = first_corr_interval + k;
        let w_ret = |p: &[f64]| -> f64 {
            if w > 0 && s >= w && p[s - w] > 0.0 && p[s] > 0.0 {
                p[s] / p[s - w] - 1.0
            } else {
                0.0
            }
        };
        strategy.on_interval(IntervalInput {
            s,
            price_i: prices_i[s],
            price_j: prices_j[s],
            corr: c,
            w_return_i: w_ret(prices_i),
            w_return_j: w_ret(prices_j),
        });
    }
    strategy.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::correlation::CorrType;

    fn params() -> StrategyParams {
        StrategyParams {
            dt_seconds: 30,
            ctype: CorrType::Pearson,
            min_avg_corr: 0.1,
            corr_window: 10,
            avg_window: 10,
            div_window: 5,
            divergence: 0.01,
            retracement: 1.0 / 3.0,
            spread_window: 10,
            max_holding: 8,
            min_time_before_close: 5,
        }
    }

    /// Build a synthetic day: stable prices and correlation, one
    /// divergence-and-retrace episode in the middle.
    fn synthetic_day() -> (Vec<f64>, Vec<f64>, Vec<f64>, usize) {
        let p = params();
        let smax = p.intervals_per_day();
        let first = p.corr_window; // corr known from interval M onward
        let mut pi = vec![130.0; smax];
        let mut corr = vec![0.8; smax - first];
        let pj = vec![30.0; smax];
        // Episode at interval 400: i spikes (over-performs), correlation
        // dips, then everything retraces by 415.
        for (s, p) in pi.iter_mut().enumerate().take(400).skip(395) {
            *p = 130.0 + (s - 394) as f64 * 0.4; // ramp to 132
        }
        for (s, p) in pi.iter_mut().enumerate().take(410).skip(400) {
            *p = 132.0 - (s - 399) as f64 * 0.2; // decay back
        }
        for s in 398..404 {
            corr[s - first] = 0.7;
        }
        (pi, pj, corr, first)
    }

    #[test]
    fn trades_the_injected_episode() {
        let (pi, pj, corr, first) = synthetic_day();
        let p = params();
        let trades = run_pair_day(
            (1, 0),
            &p,
            &ExecutionConfig::paper(),
            &pi,
            &pj,
            &corr,
            first,
        );
        assert!(!trades.is_empty(), "the divergence episode must be traded");
        let t = &trades[0];
        assert!((395..=405).contains(&t.entry_interval), "{t:?}");
        // i over-performed into the entry: the strategy shorts it.
        assert_eq!(t.position.short.stock, 1);
        assert_eq!(t.position.long.stock, 0);
        // The spread retraces after entry; this trade should win.
        assert!(t.pnl > 0.0, "retraced episode should profit: {t:?}");
    }

    #[test]
    fn quiet_day_produces_no_trades() {
        let p = params();
        let smax = p.intervals_per_day();
        let first = p.corr_window;
        let pi = vec![130.0; smax];
        let pj = vec![30.0; smax];
        let corr = vec![0.8; smax - first];
        let trades = run_pair_day(
            (1, 0),
            &p,
            &ExecutionConfig::paper(),
            &pi,
            &pj,
            &corr,
            first,
        );
        assert!(trades.is_empty());
    }

    #[test]
    fn all_trades_respect_day_invariants() {
        let (pi, pj, corr, first) = synthetic_day();
        let p = params();
        let trades = run_pair_day(
            (1, 0),
            &p,
            &ExecutionConfig::paper(),
            &pi,
            &pj,
            &corr,
            first,
        );
        let smax = p.intervals_per_day();
        for t in &trades {
            assert!(t.entry_interval >= p.first_active_interval());
            assert!(t.exit_interval < smax);
            assert!(t.entry_interval <= t.exit_interval);
            assert!(t.holding_intervals() <= p.max_holding);
            assert!(
                smax - 1 - t.entry_interval >= p.min_time_before_close,
                "entry inside the ST fence"
            );
            assert!(t.position.net_entry_exposure() >= -1e-9);
            assert!(t.gross > 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn misaligned_prices_rejected() {
        let p = params();
        let _ = run_pair_day(
            (1, 0),
            &p,
            &ExecutionConfig::paper(),
            &[1.0; 10],
            &[1.0; 9],
            &[],
            0,
        );
    }

    #[test]
    #[should_panic]
    fn overlong_correlation_rejected() {
        let p = params();
        let _ = run_pair_day(
            (1, 0),
            &p,
            &ExecutionConfig::paper(),
            &[1.0; 10],
            &[1.0; 10],
            &[0.5; 11],
            0,
        );
    }
}
