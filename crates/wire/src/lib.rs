//! Binary codecs for durable checkpoints and the shard control socket.
//!
//! The workspace `serde` shim has no serializer, and checkpoint recovery
//! demands *bit-exact* round-trips (a Kahan compensator re-derived from
//! rounded values would diverge from the original stream), so the state
//! types implement [`Codec`] by hand: little-endian fixed-width integers,
//! `f64::to_bits` for floats, and `u64` length prefixes for collections.
//! Decoding is defensive — every read is bounds-checked and collection
//! lengths are validated against the remaining input, so a truncated or
//! bit-flipped checkpoint surfaces as a [`WireError`], never a panic or
//! an unbounded allocation.
//!
//! [`crc32`] is the IEEE polynomial used by the checkpoint store and the
//! framed transport to detect torn writes and corrupted frames.

use std::collections::VecDeque;

/// Decoding failure: the input is shorter than the encoding claims, or a
/// field holds a value outside its domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of input mid-field.
    Eof,
    /// A field decoded to an invalid value (bad tag, absurd length, ...).
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Eof => write!(f, "unexpected end of input"),
            WireError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// An append-only byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    /// The accumulated encoding.
    pub buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consume the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw bytes verbatim (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u64` length prefix followed by the bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        (bytes.len() as u64).encode(self);
        self.buf.extend_from_slice(bytes);
    }
}

/// A bounds-checked cursor over an encoded buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Eof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Take a `u64`-length-prefixed byte run (see [`Writer::bytes`]).
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = u64::decode(self)? as usize;
        if len > self.remaining() {
            return Err(WireError::Invalid("byte run longer than input"));
        }
        self.take(len)
    }
}

/// A self-describing binary encoding: every implementation round-trips
/// bit-exactly through `encode` → `decode`.
pub trait Codec: Sized {
    /// Append this value's encoding to the writer.
    fn encode(&self, w: &mut Writer);
    /// Parse one value, advancing the reader past it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encode a value into a fresh byte vector.
pub fn to_bytes<T: Codec>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decode a value from a buffer, requiring the buffer to be fully
/// consumed (trailing garbage is corruption, not padding).
pub fn from_bytes<T: Codec>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::Invalid("trailing bytes after value"));
    }
    Ok(value)
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, w: &mut Writer) {
                w.buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i64);

impl Codec for usize {
    fn encode(&self, w: &mut Writer) {
        (*self as u64).encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| WireError::Invalid("usize overflow"))
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut Writer) {
        w.buf.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool tag")),
        }
    }
}

impl Codec for f64 {
    /// Bit-pattern round-trip: NaN payloads, signed zeros and every last
    /// ulp survive, which the checkpoint bit-identity guarantee needs.
    fn encode(&self, w: &mut Writer) {
        self.to_bits().encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Codec for String {
    fn encode(&self, w: &mut Writer) {
        w.bytes(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("utf-8 string"))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.buf.push(0),
            Some(v) => {
                w.buf.push(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Invalid("option tag")),
        }
    }
}

// Every element consumes at least one byte, so a claimed length beyond
// the remaining input is corruption — reject it *before* allocating, so
// a flipped length byte cannot demand gigabytes.
fn guarded_len(r: &Reader<'_>, len: usize) -> Result<usize, WireError> {
    if len > r.remaining() {
        Err(WireError::Invalid("collection longer than input"))
    } else {
        Ok(len)
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::decode(r)?;
        let len = guarded_len(r, len)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for VecDeque<T> {
    fn encode(&self, w: &mut Writer) {
        self.len().encode(w);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::decode(r)?;
        let len = guarded_len(r, len)?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// IEEE CRC32 (the polynomial Ethernet, gzip and PNG share), computed
/// with a lazily built 256-entry table.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("pair trading"));
        roundtrip(String::new());
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
            -1.2345678901234567e-300,
        ] {
            let bytes = to_bytes(&v);
            let back: f64 = from_bytes(&bytes).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // NaN payload survives too.
        let nan = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let back: f64 = from_bytes(&to_bytes(&nan)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn collections_and_compounds_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(VecDeque::from([(-1i64, true), (7, false)]));
        roundtrip(Some(vec![0.5f64, -0.5]));
        roundtrip(Option::<u32>::None);
        roundtrip(((1.0f64, 2.0f64), (3.0f64, 4.0f64, 5.0f64)));
        roundtrip(vec![Some("a".to_string()), None]);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Vec<u64>>(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn absurd_length_is_rejected_before_allocation() {
        // Claims 2^60 elements with 0 bytes of payload.
        let mut w = Writer::new();
        (1u64 << 60).encode(&mut w);
        assert_eq!(
            from_bytes::<Vec<u64>>(&w.buf),
            Err(WireError::Invalid("collection longer than input"))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert_eq!(
            from_bytes::<bool>(&[2]),
            Err(WireError::Invalid("bool tag"))
        );
        assert_eq!(
            from_bytes::<Option<u8>>(&[9, 0]),
            Err(WireError::Invalid("option tag"))
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn bit_flip_changes_crc() {
        let data = b"checkpoint payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "byte {byte} bit {bit}");
            }
        }
    }
}
