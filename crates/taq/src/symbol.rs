//! Stock symbols, interning, and the default 61-name liquid roster.
//!
//! Quotes are high-volume; carrying a `String` per tick would dominate
//! memory, so symbols are interned to a `u16` id through a [`SymbolTable`].
//! The default roster has exactly 61 names — the size of the paper's
//! universe, yielding C(61, 2) = 1830 pairs.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An interned stock symbol: an index into a [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub u16);

impl Symbol {
    /// Index as usize, for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional symbol interner.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Table pre-populated with the default 61-stock roster.
    pub fn liquid_us_roster() -> Self {
        let mut t = Self::new();
        for name in LIQUID_61 {
            t.intern(name);
        }
        t
    }

    /// Table with `n` synthetic names `S00, S01, ...` — used by benches and
    /// scaling studies that sweep universe size beyond the roster.
    pub fn synthetic(n: usize) -> Self {
        let mut t = Self::new();
        for i in 0..n {
            t.intern(&format!("S{i:02}"));
        }
        t
    }

    /// Intern a name, returning its (possibly pre-existing) symbol.
    ///
    /// # Panics
    /// Panics if more than `u16::MAX` symbols are interned.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let id = u16::try_from(self.names.len()).expect("symbol table overflow");
        let s = Symbol(id);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), s);
        s
    }

    /// Look up a symbol by name.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Name of a symbol.
    ///
    /// # Panics
    /// Panics if the symbol does not belong to this table.
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All symbols in interning order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len()).map(|i| Symbol(i as u16))
    }

    /// All names in interning order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// 61 highly liquid US large-caps circa 2008 — the size and character of
/// the paper's universe. Includes every ticker the paper itself mentions
/// (Table II: NVDA, ORCL, SLB, TWX, BK; text: XOM/CVX, UPS/FDX, WMT/TGT,
/// MSFT, IBM) grouped loosely by sector so the synthetic correlation
/// structure has fundamentally-linked blocks.
pub const LIQUID_61: [&str; 61] = [
    // Technology
    "MSFT", "IBM", "NVDA", "ORCL", "INTC", "AMD", "CSCO", "HPQ", "DELL", "AAPL", "GOOG", "EBAY",
    "YHOO", "TXN", "MU", // Energy
    "XOM", "CVX", "SLB", "COP", "HAL", "OXY", "DVN", "APA", "VLO", // Financials
    "BK", "C", "BAC", "JPM", "WFC", "GS", "MS", "MER", "AXP", "USB",
    // Consumer / retail
    "WMT", "TGT", "HD", "LOW", "COST", "MCD", "SBUX", "KO", "PEP", "PG",
    // Transport / industrial
    "UPS", "FDX", "GE", "BA", "CAT", "DE", "HON", "UTX", // Media / telecom
    "TWX", "DIS", "CMCSA", "T", "VZ", "S", // Healthcare
    "PFE", "MRK", "JNJ",
];

impl wire::Codec for Symbol {
    fn encode(&self, w: &mut wire::Writer) {
        wire::Codec::encode(&self.0, w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        Ok(Symbol(<u16 as wire::Codec>::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_exactly_61_unique_names() {
        let t = SymbolTable::liquid_us_roster();
        assert_eq!(t.len(), 61);
        let mut set = std::collections::HashSet::new();
        for n in t.names() {
            assert!(set.insert(n.clone()), "duplicate ticker {n}");
        }
        // The paper's pair count.
        assert_eq!(t.len() * (t.len() - 1) / 2, 1830);
    }

    #[test]
    fn paper_tickers_present() {
        let t = SymbolTable::liquid_us_roster();
        for name in [
            "NVDA", "ORCL", "SLB", "TWX", "BK", "MSFT", "IBM", "XOM", "CVX", "UPS", "FDX", "WMT",
            "TGT",
        ] {
            assert!(t.get(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn interning_round_trip() {
        let mut t = SymbolTable::new();
        let a = t.intern("ABC");
        let b = t.intern("XYZ");
        let a2 = t.intern("ABC");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "ABC");
        assert_eq!(t.get("XYZ"), Some(b));
        assert_eq!(t.get("ZZZ"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn synthetic_table() {
        let t = SymbolTable::synthetic(100);
        assert_eq!(t.len(), 100);
        assert_eq!(t.name(Symbol(7)), "S07");
        assert_eq!(t.symbols().count(), 100);
    }
}
