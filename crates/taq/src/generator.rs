//! The market generator: latent model + microstructure + error injection
//! assembled into a reproducible quote tape.
//!
//! Quote arrival per stock is a Poisson process; at each arrival the quote
//! brackets the latent fair midpoint with a jittered half-spread, rounds to
//! cents, and passes through the [`crate::errors::ErrorInjector`]. The whole
//! market is a pure function of `(MarketConfig, seed)`.

use serde::{Deserialize, Serialize};

use crate::dataset::{DayData, TickDataset};
use crate::errors::{ErrorConfig, ErrorInjector};
use crate::model::{DivergenceConfig, LatentModel, SectorStructure, StressParams};
use crate::quote::Quote;
use crate::rng::MarketRng;
use crate::symbol::{Symbol, SymbolTable};
use crate::time::{Timestamp, SECONDS_PER_SESSION};

/// Quote microstructure parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroConfig {
    /// Mean quote arrivals per second per stock.
    pub quote_rate_hz: f64,
    /// Half-spread in basis points of the midpoint.
    pub half_spread_bps: f64,
    /// Multiplicative jitter on the half-spread, in [0, 1): each quote's
    /// half-spread is scaled by `1 + jitter * U(-1, 1)`.
    pub spread_jitter: f64,
    /// Maximum displayed size (round lots); sizes are uniform in [1, max].
    pub max_size: u16,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            quote_rate_hz: 0.2,
            half_spread_bps: 3.0,
            spread_jitter: 0.5,
            max_size: 50,
        }
    }
}

/// A stress window: days `[from_day, to_day]` run under the given
/// stressed regime (crisis volatility + correlation compression).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StressWindow {
    /// First stressed day (inclusive).
    pub from_day: u16,
    /// Last stressed day (inclusive).
    pub to_day: u16,
    /// The regime.
    pub params: StressParams,
}

/// Full market configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketConfig {
    /// Universe size. When `<= 61` the liquid-US roster supplies tickers;
    /// larger universes get synthetic names.
    pub n_stocks: usize,
    /// Number of trading days to generate.
    pub days: u16,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Daily log-return volatility (same for all stocks; per-stock
    /// variation comes from price levels and episodes).
    pub daily_vol: f64,
    /// Range initial prices are drawn from, uniformly (dollars).
    pub price_range: (f64, f64),
    /// Sector correlation structure; `None` uses the default blocks of ~8.
    pub sectors: Option<SectorStructure>,
    /// Divergence-episode process.
    pub divergence: DivergenceConfig,
    /// Quote microstructure.
    pub micro: MicroConfig,
    /// Data-error injection.
    pub errors: ErrorConfig,
    /// Optional crisis window (March 2008 had one mid-month).
    pub stress: Option<StressWindow>,
}

impl MarketConfig {
    /// The paper's evaluation scale: 61 stocks, 20 trading days
    /// ("March 2008"), realistic error rates.
    pub fn paper_scale(seed: u64) -> Self {
        MarketConfig {
            n_stocks: 61,
            days: 20,
            seed,
            daily_vol: 0.02,
            price_range: (15.0, 150.0),
            sectors: None,
            divergence: DivergenceConfig::default(),
            micro: MicroConfig::default(),
            errors: ErrorConfig::realistic(),
            stress: None,
        }
    }

    /// A small configuration for tests and examples.
    pub fn small(n_stocks: usize, days: u16, seed: u64) -> Self {
        MarketConfig {
            n_stocks,
            days,
            ..Self::paper_scale(seed)
        }
    }
}

/// Stateful day-by-day generator.
///
/// Days must be generated in order (the latent model's close carries into
/// the next open); [`MarketGenerator::generate`] produces a whole dataset,
/// while [`MarketGenerator::next_day`] streams one day at a time so a
/// month-long backtest never holds more than a day of ticks.
#[derive(Debug)]
pub struct MarketGenerator {
    config: MarketConfig,
    model: LatentModel,
    table: SymbolTable,
    next_day: u16,
}

impl MarketGenerator {
    /// Build a generator from a configuration.
    ///
    /// # Panics
    /// Panics if `n_stocks < 2`, the configured sector structure size
    /// does not match `n_stocks`, or the error configuration is invalid
    /// (see [`MarketGenerator::try_new`] for the non-panicking form).
    pub fn new(config: MarketConfig) -> Self {
        match Self::try_new(config) {
            Ok(generator) => generator,
            Err(e) => panic!("invalid market config: {e}"),
        }
    }

    /// Build a generator, rejecting an invalid [`ErrorConfig`] instead of
    /// silently skewing corruption-class frequencies (band probabilities
    /// summing to ≥ 1 truncate whichever classes are checked last).
    pub fn try_new(config: MarketConfig) -> Result<Self, crate::errors::ConfigError> {
        config.errors.validate()?;
        assert!(config.n_stocks >= 2, "need at least two stocks to pair");
        let table = if config.n_stocks <= 61 {
            let full = SymbolTable::liquid_us_roster();
            let mut t = SymbolTable::new();
            for name in full.names().iter().take(config.n_stocks) {
                t.intern(name);
            }
            t
        } else {
            SymbolTable::synthetic(config.n_stocks)
        };
        let sectors = config
            .sectors
            .clone()
            .unwrap_or_else(|| SectorStructure::default_for(config.n_stocks));
        let mut seed_rng = MarketRng::seed_from(config.seed);
        let prices: Vec<f64> = (0..config.n_stocks)
            .map(|_| {
                config.price_range.0
                    + seed_rng.uniform() * (config.price_range.1 - config.price_range.0)
            })
            .collect();
        let vols = vec![config.daily_vol; config.n_stocks];
        let model = LatentModel::new(&prices, &vols, &sectors, config.divergence);
        Ok(MarketGenerator {
            config,
            model,
            table,
            next_day: 0,
        })
    }

    /// The symbol table backing generated quotes.
    pub fn symbols(&self) -> &SymbolTable {
        &self.table
    }

    /// The configuration in force.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// Generate the next trading day. Returns `None` once `config.days`
    /// days have been produced.
    pub fn next_day(&mut self) -> Option<DayData> {
        if self.next_day >= self.config.days {
            return None;
        }
        let day = self.next_day;
        self.next_day += 1;

        let base = MarketRng::seed_from(self.config.seed);
        let mut model_rng = base.derive((u64::from(day) << 32) | 0x0001);
        let stress = self
            .config
            .stress
            .filter(|w| day >= w.from_day && day <= w.to_day)
            .map(|w| w.params);
        let latent = self.model.simulate_day_with(&mut model_rng, stress);

        let n = self.config.n_stocks;
        let mut quotes: Vec<Quote> = Vec::new();
        for stock in 0..n {
            let mut rng = base.derive((u64::from(day) << 32) | 0x1000 | stock as u64);
            let mut injector = ErrorInjector::new(self.config.errors);
            let rate = self.config.micro.quote_rate_hz;
            let mut t = rng.exponential(rate);
            while t < SECONDS_PER_SESSION as f64 {
                let sec = t as u32;
                let mid = latent.mid(stock, sec);
                let jitter = 1.0 + self.config.micro.spread_jitter * (2.0 * rng.uniform() - 1.0);
                let hs = (mid * self.config.micro.half_spread_bps * 1e-4 * jitter).max(0.005);
                let bid_cents = (((mid - hs) * 100.0).round() as u32).max(1);
                let ask_cents = (((mid + hs) * 100.0).round() as u32).max(bid_cents + 1);
                let clean = Quote {
                    ts: Timestamp::new(day, (t * 1000.0) as u32),
                    symbol: Symbol(stock as u16),
                    bid_cents,
                    ask_cents,
                    bid_size: rng.uniform_int(1, self.config.micro.max_size as u32) as u16,
                    ask_size: rng.uniform_int(1, self.config.micro.max_size as u32) as u16,
                };
                let (q, _kind) = injector.process(clean, &mut rng);
                quotes.push(q);
                t += rng.exponential(rate);
            }
        }
        Some(DayData::new(day, quotes, n, latent.episodes))
    }

    /// Generate the full configured span as one dataset (convenient for
    /// small universes; month-scale runs should stream with
    /// [`MarketGenerator::next_day`]).
    pub fn generate(mut self) -> TickDataset {
        let mut ds = TickDataset::new(self.table.clone());
        while let Some(day) = self.next_day() {
            ds.days.push(day);
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MarketConfig {
        let mut c = MarketConfig::small(4, 2, 42);
        c.micro.quote_rate_hz = 0.02; // keep tests fast
        c
    }

    #[test]
    fn try_new_rejects_overflowing_error_bands() {
        let mut c = tiny();
        c.errors.jitter = 0.7;
        c.errors.far_out = 0.4; // sums past 1: bands would truncate
        assert!(matches!(
            MarketGenerator::try_new(c),
            Err(crate::errors::ConfigError::ProbabilitiesSumTooHigh { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid market config")]
    fn new_panics_on_invalid_error_config() {
        let mut c = tiny();
        c.errors.stale = 1.5;
        let _ = MarketGenerator::new(c);
    }

    #[test]
    fn generates_configured_span() {
        let ds = MarketGenerator::new(tiny()).generate();
        assert_eq!(ds.n_days(), 2);
        assert_eq!(ds.n_stocks(), 4);
        assert!(ds.total_quotes() > 0);
    }

    #[test]
    fn quote_rate_is_roughly_poisson() {
        let ds = MarketGenerator::new(tiny()).generate();
        // Expected quotes per stock-day = 0.02 * 23400 = 468.
        let per_stock_day = ds.total_quotes() as f64 / (4.0 * 2.0);
        assert!(
            (300.0..650.0).contains(&per_stock_day),
            "quotes/stock/day = {per_stock_day}"
        );
    }

    #[test]
    fn tape_is_time_sorted_within_day() {
        let ds = MarketGenerator::new(tiny()).generate();
        for day in &ds.days {
            assert!(day.quotes().windows(2).all(|w| w[0].ts <= w[1].ts));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = MarketGenerator::new(tiny()).generate();
        let b = MarketGenerator::new(tiny()).generate();
        assert_eq!(a.total_quotes(), b.total_quotes());
        assert_eq!(a.days[0].quotes()[..50], b.days[0].quotes()[..50]);
        let mut other = tiny();
        other.seed = 43;
        let c = MarketGenerator::new(other).generate();
        assert_ne!(a.days[0].quotes()[..50], c.days[0].quotes()[..50]);
    }

    #[test]
    fn streaming_matches_batch() {
        let mut g = MarketGenerator::new(tiny());
        let d0 = g.next_day().unwrap();
        let d1 = g.next_day().unwrap();
        assert!(g.next_day().is_none());
        let batch = MarketGenerator::new(tiny()).generate();
        assert_eq!(d0.quotes(), batch.days[0].quotes());
        assert_eq!(d1.quotes(), batch.days[1].quotes());
    }

    #[test]
    fn uses_real_roster_tickers() {
        let g = MarketGenerator::new(tiny());
        assert_eq!(g.symbols().name(Symbol(0)), "MSFT");
        let mut big = tiny();
        big.n_stocks = 80;
        let g = MarketGenerator::new(big);
        assert_eq!(g.symbols().name(Symbol(70)), "S70");
    }

    #[test]
    fn clean_config_produces_well_formed_quotes() {
        let mut c = tiny();
        c.errors = ErrorConfig::none();
        let ds = MarketGenerator::new(c).generate();
        for day in &ds.days {
            for q in day.quotes() {
                assert!(q.is_well_formed(), "{q:?}");
                // Spread should be a few bps of the mid, not pathological.
                assert!(q.spread() / q.midpoint() < 0.01);
            }
        }
    }

    #[test]
    fn error_injection_produces_malformed_quotes_sometimes() {
        let mut c = tiny();
        c.micro.quote_rate_hz = 0.05;
        c.errors = ErrorConfig::heavy();
        let ds = MarketGenerator::new(c).generate();
        let bad = ds
            .days
            .iter()
            .flat_map(|d| d.quotes())
            .filter(|q| !q.is_well_formed() || q.spread() / q.midpoint() > 0.05)
            .count();
        assert!(bad > 0, "heavy error config must corrupt something");
    }

    #[test]
    fn episodes_recorded_as_ground_truth() {
        let ds = MarketGenerator::new(tiny()).generate();
        let total: usize = ds.days.iter().map(|d| d.episodes.len()).sum();
        // 4 stocks * 6/day * 2 days = 48 expected.
        assert!(total > 10, "episodes {total}");
    }
}
