//! Data-quality error injection.
//!
//! "Raw tick TAQ data contains every raw quote, not just the best offer, so
//! there can be many spurious ticks originating from various sources, some
//! human typing errors but mainly from electronic trading systems
//! generating test quotes ... or far-out limit orders which have little
//! probability of getting filled."
//!
//! This module corrupts a clean synthetic quote stream with exactly those
//! artefact classes, so the cleaning filter (`timeseries::clean`) and the
//! robust correlation measures have something real to earn their keep on.
//! Every corruption is tagged so tests can measure filter precision/recall
//! against ground truth.

use serde::{Deserialize, Serialize};

use crate::quote::Quote;
use crate::rng::MarketRng;

/// Per-quote probabilities of each corruption class. Disjoint events,
/// evaluated in declaration order; probabilities should sum to < 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorConfig {
    /// Electronic test quote: both sides replaced by absurd levels.
    pub test_quote: f64,
    /// Human fat-finger: one side off by a factor of 10.
    pub fat_finger: f64,
    /// Far-out limit order: one side pushed 20-50% away from the market.
    pub far_out: f64,
    /// Stale repeat: the previous quote's prices re-sent at a new time.
    pub stale: f64,
    /// Mid-price jitter: the whole quote displaced by a few tenths of a
    /// percent — *small enough to pass the TCP-like cleaning filter*, so
    /// it lands in the correlation inputs. This is the error class that
    /// separates robust from classical correlation in practice: "the
    /// remaining outliers will be gracefully down-weighted by the robust
    /// correlation method".
    pub jitter: f64,
    /// Peak jitter displacement as a fraction of the midpoint (each hit
    /// draws uniformly in `[0.25, 1.0] x` this, signed).
    pub jitter_magnitude: f64,
}

impl ErrorConfig {
    /// Paper-flavoured default: roughly 1 in 250 quotes grossly bad, plus
    /// a few percent of filter-surviving jitter.
    pub fn realistic() -> Self {
        ErrorConfig {
            test_quote: 0.0005,
            fat_finger: 0.001,
            far_out: 0.002,
            stale: 0.0005,
            jitter: 0.03,
            jitter_magnitude: 0.004,
        }
    }

    /// No corruption (clean-data ablation).
    pub fn none() -> Self {
        ErrorConfig {
            test_quote: 0.0,
            fat_finger: 0.0,
            far_out: 0.0,
            stale: 0.0,
            jitter: 0.0,
            jitter_magnitude: 0.0,
        }
    }

    /// Heavy corruption (robustness stress ablation): ~5% gross bad ticks
    /// plus 10% jitter.
    pub fn heavy() -> Self {
        ErrorConfig {
            test_quote: 0.005,
            fat_finger: 0.02,
            far_out: 0.02,
            stale: 0.005,
            jitter: 0.10,
            jitter_magnitude: 0.006,
        }
    }

    /// Total probability that a quote is corrupted (any class).
    pub fn total(&self) -> f64 {
        self.test_quote + self.fat_finger + self.far_out + self.stale + self.jitter
    }

    /// Validate the configuration. The classes are disjoint bands over a
    /// single uniform draw, so each probability must lie in `[0, 1]` and
    /// the sum must stay below 1 — otherwise later bands are silently
    /// truncated and class frequencies skew.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let fields = [
            ("test_quote", self.test_quote),
            ("fat_finger", self.fat_finger),
            ("far_out", self.far_out),
            ("stale", self.stale),
            ("jitter", self.jitter),
        ];
        for (field, value) in fields {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::ProbabilityOutOfRange { field, value });
            }
        }
        if !self.jitter_magnitude.is_finite() || self.jitter_magnitude < 0.0 {
            return Err(ConfigError::ProbabilityOutOfRange {
                field: "jitter_magnitude",
                value: self.jitter_magnitude,
            });
        }
        let total = self.total();
        if total >= 1.0 {
            return Err(ConfigError::ProbabilitiesSumTooHigh { total });
        }
        Ok(())
    }
}

/// An invalid error-injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// A class probability (or magnitude) outside its legal range.
    ProbabilityOutOfRange {
        /// Offending field name.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The class probabilities sum to ≥ 1, which would skew the band
    /// decomposition over the single uniform draw.
    ProbabilitiesSumTooHigh {
        /// The offending sum.
        total: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ProbabilityOutOfRange { field, value } => {
                write!(f, "error probability `{field}` = {value} outside [0, 1]")
            }
            ConfigError::ProbabilitiesSumTooHigh { total } => {
                write!(f, "error probabilities sum to {total} (must be < 1)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Default for ErrorConfig {
    fn default() -> Self {
        Self::realistic()
    }
}

/// The corruption applied to a quote, for ground-truth bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Electronic test quote.
    TestQuote,
    /// Fat-finger digit error.
    FatFinger,
    /// Far-out limit order.
    FarOut,
    /// Stale repeat of the previous quote.
    Stale,
    /// Small mid-price displacement that survives cleaning.
    Jitter,
}

/// Stateful injector (remembers the previous clean quote per call site to
/// implement stale repeats).
#[derive(Debug, Clone)]
pub struct ErrorInjector {
    cfg: ErrorConfig,
    prev: Option<Quote>,
}

impl ErrorInjector {
    /// New injector with the given configuration.
    pub fn new(cfg: ErrorConfig) -> Self {
        ErrorInjector { cfg, prev: None }
    }

    /// Possibly corrupt a quote. Returns the (possibly modified) quote and
    /// the corruption tag, if any. The *clean* quote is remembered for
    /// stale-repeat generation regardless of outcome.
    pub fn process(&mut self, quote: Quote, rng: &mut MarketRng) -> (Quote, Option<ErrorKind>) {
        let prev = self.prev.replace(quote);
        let u = rng.uniform();
        let c = &self.cfg;

        let mut lo = 0.0;
        let mut band = |p: f64, u: f64| {
            let hit = u >= lo && u < lo + p;
            lo += p;
            hit
        };

        if band(c.test_quote, u) {
            let mut q = quote;
            // Exchange test pattern: penny bid, far ask.
            q.bid_cents = 1;
            q.ask_cents = 99_999;
            q.bid_size = 1;
            q.ask_size = 1;
            return (q, Some(ErrorKind::TestQuote));
        }
        if band(c.fat_finger, u) {
            let mut q = quote;
            // Shift one side by a decimal place, direction at random.
            let up = rng.flip(0.5);
            if rng.flip(0.5) {
                q.bid_cents = if up {
                    q.bid_cents.saturating_mul(10)
                } else {
                    (q.bid_cents / 10).max(1)
                };
            } else {
                q.ask_cents = if up {
                    q.ask_cents.saturating_mul(10)
                } else {
                    (q.ask_cents / 10).max(2)
                };
            }
            return (q, Some(ErrorKind::FatFinger));
        }
        if band(c.far_out, u) {
            let mut q = quote;
            let frac = 0.2 + 0.3 * rng.uniform();
            if rng.flip(0.5) {
                q.bid_cents = ((q.bid_cents as f64) * (1.0 - frac)) as u32;
                q.bid_cents = q.bid_cents.max(1);
            } else {
                q.ask_cents = ((q.ask_cents as f64) * (1.0 + frac)) as u32;
            }
            return (q, Some(ErrorKind::FarOut));
        }
        if band(c.stale, u) {
            if let Some(p) = prev {
                let mut q = quote;
                q.bid_cents = p.bid_cents;
                q.ask_cents = p.ask_cents;
                q.bid_size = p.bid_size;
                q.ask_size = p.ask_size;
                return (q, Some(ErrorKind::Stale));
            }
        }
        if band(c.jitter, u) {
            let mut q = quote;
            let sign = if rng.flip(0.5) { 1.0 } else { -1.0 };
            let frac = sign * c.jitter_magnitude * (0.25 + 0.75 * rng.uniform());
            let shift =
                |cents: u32| -> u32 { ((cents as f64 * (1.0 + frac)).round() as u32).max(1) };
            q.bid_cents = shift(q.bid_cents);
            q.ask_cents = shift(q.ask_cents).max(q.bid_cents + 1);
            return (q, Some(ErrorKind::Jitter));
        }
        (quote, None)
    }
}

// ---------------------------------------------------------------------------
// Stream-level faults
// ---------------------------------------------------------------------------
//
// The per-quote [`ErrorInjector`] models *content* corruption. The types
// below model *delivery* faults — the feed itself misbehaving: a symbol
// going silent, the whole exchange halting, quotes arriving late and out
// of timestamp order, or a burst of duplicates. They are applied to an
// already-generated tape, and every mutation is counted in a
// [`StreamFaultLog`] so chaos tests can assert against ground truth.

/// One symbol's feed goes silent for a window (seconds into the session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Affected stock index.
    pub symbol: u16,
    /// First silent second (inclusive).
    pub start_s: u32,
    /// Last silent second (inclusive).
    pub end_s: u32,
}

/// Every symbol's feed goes silent for a window (exchange-wide halt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HaltWindow {
    /// First silent second (inclusive).
    pub start_s: u32,
    /// Last silent second (inclusive).
    pub end_s: u32,
}

/// A burst of garbage on one symbol: quotes in the window are replaced by
/// the exchange test-quote pattern with probability `intensity`, which a
/// downstream cleaning filter will reject — driving its reject-rate
/// tripwire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionBurst {
    /// Affected stock index.
    pub symbol: u16,
    /// First corrupted second (inclusive).
    pub start_s: u32,
    /// Last corrupted second (inclusive).
    pub end_s: u32,
    /// Per-quote corruption probability within the window.
    pub intensity: f64,
}

/// Bounded out-of-order delivery: quotes of one symbol in the window are
/// delivered up to `max_delay_ms` late (timestamps unchanged — the
/// *stream order* becomes non-monotonic, as a congested feed handler
/// would produce).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReorderWindow {
    /// Affected stock index.
    pub symbol: u16,
    /// First affected second (inclusive).
    pub start_s: u32,
    /// Last affected second (inclusive).
    pub end_s: u32,
    /// Upper bound on the delivery delay, in milliseconds.
    pub max_delay_ms: u32,
}

/// Burst duplication: every quote of one symbol in the window is
/// delivered `1 + copies` times (a retransmitting feed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DuplicationBurst {
    /// Affected stock index.
    pub symbol: u16,
    /// First affected second (inclusive).
    pub start_s: u32,
    /// Last affected second (inclusive).
    pub end_s: u32,
    /// Extra copies per quote.
    pub copies: u32,
}

/// A complete stream-fault schedule for one session.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StreamFaultPlan {
    /// Per-symbol outage windows.
    pub outages: Vec<OutageWindow>,
    /// Exchange-wide halts.
    pub halts: Vec<HaltWindow>,
    /// Reject-storm bursts.
    pub bursts: Vec<CorruptionBurst>,
    /// Out-of-order delivery windows.
    pub reorders: Vec<ReorderWindow>,
    /// Duplication bursts.
    pub duplications: Vec<DuplicationBurst>,
    /// Seed for the plan's own randomness (burst coin flips, delays).
    pub seed: u64,
}

impl StreamFaultPlan {
    /// The empty plan (a faithful feed).
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.halts.is_empty()
            && self.bursts.is_empty()
            && self.reorders.is_empty()
            && self.duplications.is_empty()
    }

    /// Every stock index named by any fault (halts affect all symbols and
    /// are not included here — they are universe-wide by construction).
    pub fn targeted_symbols(&self) -> std::collections::BTreeSet<u16> {
        let mut set = std::collections::BTreeSet::new();
        set.extend(self.outages.iter().map(|w| w.symbol));
        set.extend(self.bursts.iter().map(|w| w.symbol));
        set.extend(self.reorders.iter().map(|w| w.symbol));
        set.extend(self.duplications.iter().map(|w| w.symbol));
        set
    }
}

/// Ground-truth accounting for one [`apply_stream_faults`] application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamFaultLog {
    /// Quotes removed by outages or halts.
    pub dropped: u64,
    /// Quotes replaced by the test-quote pattern.
    pub corrupted: u64,
    /// Quotes delivered late (timestamp unchanged).
    pub delayed: u64,
    /// Extra copies inserted.
    pub duplicated: u64,
}

fn in_window(sec: u32, start_s: u32, end_s: u32) -> bool {
    sec >= start_s && sec <= end_s
}

/// Apply a fault schedule to a time-sorted tape, returning the delivered
/// stream (possibly out of timestamp order) and the ground-truth log.
/// Deterministic in `(quotes, plan)`.
pub fn apply_stream_faults(
    quotes: &[Quote],
    plan: &StreamFaultPlan,
) -> (Vec<Quote>, StreamFaultLog) {
    let mut log = StreamFaultLog::default();
    let mut rng = MarketRng::seed_from(plan.seed).derive(0x5fau64 << 32);

    // Pass 1: drops (outage/halt) and in-place corruption; compute each
    // surviving quote's delivery time (timestamp + any reorder delay).
    let mut delivered: Vec<(u64, usize, Quote)> = Vec::with_capacity(quotes.len());
    'quotes: for (pos, q) in quotes.iter().enumerate() {
        let sec = q.ts.seconds();
        for h in &plan.halts {
            if in_window(sec, h.start_s, h.end_s) {
                log.dropped += 1;
                continue 'quotes;
            }
        }
        for o in &plan.outages {
            if o.symbol == q.symbol.0 && in_window(sec, o.start_s, o.end_s) {
                log.dropped += 1;
                continue 'quotes;
            }
        }
        let mut q = *q;
        for b in &plan.bursts {
            if b.symbol == q.symbol.0 && in_window(sec, b.start_s, b.end_s) && rng.flip(b.intensity)
            {
                q.bid_cents = 1;
                q.ask_cents = 99_999;
                q.bid_size = 1;
                q.ask_size = 1;
                log.corrupted += 1;
                break;
            }
        }
        let mut delivery_ms = u64::from(q.ts.millis);
        for r in &plan.reorders {
            if r.symbol == q.symbol.0 && in_window(sec, r.start_s, r.end_s) && r.max_delay_ms > 0 {
                delivery_ms += u64::from(rng.uniform_int(1, r.max_delay_ms));
                log.delayed += 1;
                break;
            }
        }
        delivered.push((delivery_ms, pos, q));
    }

    // Pass 2: sort by delivery time (original position breaks ties, so
    // undelayed quotes keep their relative order). Timestamps are left
    // untouched: a delayed quote now sits *behind* younger quotes.
    delivered.sort_by_key(|&(ms, pos, _)| (ms, pos));

    // Pass 3: duplication bursts on the delivered stream (copies arrive
    // back-to-back, as a retransmitting feed emits them).
    let mut out: Vec<Quote> = Vec::with_capacity(delivered.len());
    for (_, _, q) in delivered {
        let sec = q.ts.seconds();
        let mut copies = 0u32;
        for d in &plan.duplications {
            if d.symbol == q.symbol.0 && in_window(sec, d.start_s, d.end_s) {
                copies = copies.max(d.copies);
            }
        }
        out.push(q);
        for _ in 0..copies {
            out.push(q);
            log.duplicated += 1;
        }
    }
    (out, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;
    use crate::time::Timestamp;

    fn clean_quote(millis: u32, bid: u32, ask: u32) -> Quote {
        Quote {
            ts: Timestamp::new(0, millis),
            symbol: Symbol(0),
            bid_cents: bid,
            ask_cents: ask,
            bid_size: 5,
            ask_size: 5,
        }
    }

    #[test]
    fn no_corruption_when_disabled() {
        let mut inj = ErrorInjector::new(ErrorConfig::none());
        let mut rng = MarketRng::seed_from(1);
        for k in 0..1000 {
            let q = clean_quote(k, 4000, 4002);
            let (out, kind) = inj.process(q, &mut rng);
            assert_eq!(out, q);
            assert_eq!(kind, None);
        }
    }

    #[test]
    fn corruption_rate_matches_config() {
        let cfg = ErrorConfig::heavy();
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(2);
        let n = 200_000;
        let mut corrupted = 0;
        for k in 0..n {
            let q = clean_quote(k % 23_000_000, 4000, 4002);
            let (_, kind) = inj.process(q, &mut rng);
            if kind.is_some() {
                corrupted += 1;
            }
        }
        let rate = corrupted as f64 / n as f64;
        assert!(
            (rate - cfg.total()).abs() < 0.005,
            "rate {rate} vs config {}",
            cfg.total()
        );
    }

    #[test]
    fn test_quotes_are_absurd() {
        let cfg = ErrorConfig {
            test_quote: 1.0,
            fat_finger: 0.0,
            far_out: 0.0,
            stale: 0.0,
            jitter: 0.0,
            jitter_magnitude: 0.0,
        };
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(3);
        let (q, kind) = inj.process(clean_quote(0, 4000, 4002), &mut rng);
        assert_eq!(kind, Some(ErrorKind::TestQuote));
        assert_eq!(q.bid_cents, 1);
        assert_eq!(q.ask_cents, 99_999);
    }

    #[test]
    fn fat_finger_moves_a_decimal_place() {
        let cfg = ErrorConfig {
            test_quote: 0.0,
            fat_finger: 1.0,
            far_out: 0.0,
            stale: 0.0,
            jitter: 0.0,
            jitter_magnitude: 0.0,
        };
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(4);
        for k in 0..100 {
            let (q, kind) = inj.process(clean_quote(k, 4000, 4002), &mut rng);
            assert_eq!(kind, Some(ErrorKind::FatFinger));
            let moved_bid = q.bid_cents == 40_000 || q.bid_cents == 400;
            let moved_ask = q.ask_cents == 40_020 || q.ask_cents == 400;
            assert!(moved_bid || moved_ask, "{q:?}");
        }
    }

    #[test]
    fn stale_repeats_previous_prices() {
        let cfg = ErrorConfig {
            test_quote: 0.0,
            fat_finger: 0.0,
            far_out: 0.0,
            stale: 1.0,
            jitter: 0.0,
            jitter_magnitude: 0.0,
        };
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(5);
        // First quote: no previous, passes clean.
        let (q0, k0) = inj.process(clean_quote(0, 4000, 4002), &mut rng);
        assert_eq!(k0, None);
        assert_eq!(q0.bid_cents, 4000);
        // Second quote: repeats first's prices but keeps its own timestamp.
        let (q1, k1) = inj.process(clean_quote(1000, 5000, 5002), &mut rng);
        assert_eq!(k1, Some(ErrorKind::Stale));
        assert_eq!(q1.bid_cents, 4000);
        assert_eq!(q1.ts.millis, 1000);
    }

    #[test]
    fn jitter_is_small_and_survives_well_formedness() {
        let cfg = ErrorConfig {
            test_quote: 0.0,
            fat_finger: 0.0,
            far_out: 0.0,
            stale: 0.0,
            jitter: 1.0,
            jitter_magnitude: 0.004,
        };
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(8);
        for k in 0..500 {
            let (q, kind) = inj.process(clean_quote(k, 10_000, 10_004), &mut rng);
            assert_eq!(kind, Some(ErrorKind::Jitter));
            assert!(q.is_well_formed(), "{q:?}");
            let displacement = (q.midpoint() - 100.02) / 100.02;
            assert!(
                displacement.abs() <= 0.0041,
                "jitter too large: {displacement}"
            );
            assert!(
                displacement.abs() >= 0.0008,
                "jitter too small to matter: {displacement}"
            );
        }
    }

    #[test]
    fn validate_accepts_presets() {
        assert!(ErrorConfig::none().validate().is_ok());
        assert!(ErrorConfig::realistic().validate().is_ok());
        assert!(ErrorConfig::heavy().validate().is_ok());
    }

    #[test]
    fn validate_rejects_band_overflow() {
        let cfg = ErrorConfig {
            jitter: 0.6,
            far_out: 0.5,
            ..ErrorConfig::none()
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ProbabilitiesSumTooHigh { total: 1.1 })
        );
    }

    #[test]
    fn validate_rejects_out_of_range_probability() {
        let cfg = ErrorConfig {
            stale: -0.1,
            ..ErrorConfig::none()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ProbabilityOutOfRange { field: "stale", .. })
        ));
        let nan = ErrorConfig {
            jitter: f64::NAN,
            ..ErrorConfig::none()
        };
        assert!(nan.validate().is_err());
    }

    /// Two-symbol tape: one quote per symbol per second.
    fn two_symbol_tape(seconds: u32) -> Vec<Quote> {
        let mut quotes = Vec::new();
        for s in 0..seconds {
            for sym in 0..2u16 {
                quotes.push(Quote {
                    ts: Timestamp::new(0, s * 1000 + u32::from(sym)),
                    symbol: Symbol(sym),
                    bid_cents: 4000,
                    ask_cents: 4002,
                    bid_size: 5,
                    ask_size: 5,
                });
            }
        }
        quotes
    }

    #[test]
    fn outage_drops_only_target_symbol_in_window() {
        let tape = two_symbol_tape(100);
        let plan = StreamFaultPlan {
            outages: vec![OutageWindow {
                symbol: 0,
                start_s: 20,
                end_s: 39,
            }],
            seed: 7,
            ..StreamFaultPlan::none()
        };
        let (out, log) = apply_stream_faults(&tape, &plan);
        assert_eq!(log.dropped, 20, "20 seconds x 1 quote of symbol 0");
        assert_eq!(out.len(), tape.len() - 20);
        assert!(out
            .iter()
            .all(|q| q.symbol != Symbol(0) || !(20..=39).contains(&q.ts.seconds())));
        // Symbol 1 is untouched, quote for quote.
        let s1_in: Vec<_> = tape.iter().filter(|q| q.symbol == Symbol(1)).collect();
        let s1_out: Vec<_> = out.iter().filter(|q| q.symbol == Symbol(1)).collect();
        assert_eq!(s1_in.len(), s1_out.len());
        assert!(s1_in.iter().zip(&s1_out).all(|(a, b)| a == b));
    }

    #[test]
    fn halt_drops_every_symbol() {
        let tape = two_symbol_tape(50);
        let plan = StreamFaultPlan {
            halts: vec![HaltWindow {
                start_s: 10,
                end_s: 19,
            }],
            seed: 7,
            ..StreamFaultPlan::none()
        };
        let (out, log) = apply_stream_faults(&tape, &plan);
        assert_eq!(log.dropped, 20, "10 seconds x 2 symbols");
        assert!(out.iter().all(|q| !(10..=19).contains(&q.ts.seconds())));
    }

    #[test]
    fn corruption_burst_injects_rejectable_quotes() {
        let tape = two_symbol_tape(100);
        let plan = StreamFaultPlan {
            bursts: vec![CorruptionBurst {
                symbol: 1,
                start_s: 0,
                end_s: 99,
                intensity: 1.0,
            }],
            seed: 7,
            ..StreamFaultPlan::none()
        };
        let (out, log) = apply_stream_faults(&tape, &plan);
        assert_eq!(log.corrupted, 100);
        for q in out.iter().filter(|q| q.symbol == Symbol(1)) {
            assert_eq!((q.bid_cents, q.ask_cents), (1, 99_999));
        }
        assert!(out
            .iter()
            .filter(|q| q.symbol == Symbol(0))
            .all(|q| q.bid_cents == 4000));
    }

    #[test]
    fn reorder_is_out_of_order_but_bounded() {
        let tape = two_symbol_tape(200);
        let plan = StreamFaultPlan {
            reorders: vec![ReorderWindow {
                symbol: 0,
                start_s: 50,
                end_s: 149,
                max_delay_ms: 5_000,
            }],
            seed: 11,
            ..StreamFaultPlan::none()
        };
        let (out, log) = apply_stream_faults(&tape, &plan);
        assert_eq!(log.delayed, 100);
        assert_eq!(out.len(), tape.len(), "reorder never loses quotes");
        // The delivered stream must actually be out of timestamp order...
        let inversions = out.windows(2).filter(|w| w[0].ts > w[1].ts).count();
        assert!(inversions > 0, "delays must produce visible inversions");
        // ...but boundedly so: a quote can only be passed by quotes at
        // most max_delay_ms younger.
        let mut max_seen = 0u32;
        for q in &out {
            max_seen = max_seen.max(q.ts.millis);
            assert!(
                u64::from(q.ts.millis) + 5_000 >= u64::from(max_seen),
                "displacement beyond the delay bound"
            );
        }
    }

    #[test]
    fn duplication_inserts_adjacent_copies() {
        let tape = two_symbol_tape(30);
        let plan = StreamFaultPlan {
            duplications: vec![DuplicationBurst {
                symbol: 1,
                start_s: 10,
                end_s: 19,
                copies: 2,
            }],
            seed: 3,
            ..StreamFaultPlan::none()
        };
        let (out, log) = apply_stream_faults(&tape, &plan);
        assert_eq!(log.duplicated, 20, "10 quotes x 2 extra copies");
        assert_eq!(out.len(), tape.len() + 20);
        // Copies arrive back-to-back.
        for w in out.windows(3) {
            if w[0].symbol == Symbol(1) && (10..=19).contains(&w[0].ts.seconds()) {
                assert_eq!(w[0], w[1]);
                assert_eq!(w[1], w[2]);
                break;
            }
        }
    }

    #[test]
    fn stream_faults_are_deterministic() {
        let tape = two_symbol_tape(100);
        let plan = StreamFaultPlan {
            bursts: vec![CorruptionBurst {
                symbol: 0,
                start_s: 0,
                end_s: 99,
                intensity: 0.5,
            }],
            reorders: vec![ReorderWindow {
                symbol: 1,
                start_s: 0,
                end_s: 99,
                max_delay_ms: 2_000,
            }],
            seed: 99,
            ..StreamFaultPlan::none()
        };
        let (a, la) = apply_stream_faults(&tape, &plan);
        let (b, lb) = apply_stream_faults(&tape, &plan);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        assert!(
            la.corrupted > 10 && la.corrupted < 90,
            "coin actually flips"
        );
    }

    #[test]
    fn targeted_symbols_cover_every_fault_class() {
        let plan = StreamFaultPlan {
            outages: vec![OutageWindow {
                symbol: 1,
                start_s: 0,
                end_s: 1,
            }],
            bursts: vec![CorruptionBurst {
                symbol: 2,
                start_s: 0,
                end_s: 1,
                intensity: 1.0,
            }],
            reorders: vec![ReorderWindow {
                symbol: 3,
                start_s: 0,
                end_s: 1,
                max_delay_ms: 10,
            }],
            duplications: vec![DuplicationBurst {
                symbol: 4,
                start_s: 0,
                end_s: 1,
                copies: 1,
            }],
            ..StreamFaultPlan::none()
        };
        let t: Vec<u16> = plan.targeted_symbols().into_iter().collect();
        assert_eq!(t, vec![1, 2, 3, 4]);
        assert!(!plan.is_empty());
        assert!(StreamFaultPlan::none().is_empty());
    }

    #[test]
    fn far_out_pushes_one_side() {
        let cfg = ErrorConfig {
            test_quote: 0.0,
            fat_finger: 0.0,
            far_out: 1.0,
            stale: 0.0,
            jitter: 0.0,
            jitter_magnitude: 0.0,
        };
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(6);
        for k in 0..100 {
            let (q, kind) = inj.process(clean_quote(k, 10_000, 10_004), &mut rng);
            assert_eq!(kind, Some(ErrorKind::FarOut));
            let bid_out = q.bid_cents <= 8_000;
            let ask_out = q.ask_cents >= 12_000;
            assert!(bid_out ^ ask_out, "{q:?}");
        }
    }
}
