//! Data-quality error injection.
//!
//! "Raw tick TAQ data contains every raw quote, not just the best offer, so
//! there can be many spurious ticks originating from various sources, some
//! human typing errors but mainly from electronic trading systems
//! generating test quotes ... or far-out limit orders which have little
//! probability of getting filled."
//!
//! This module corrupts a clean synthetic quote stream with exactly those
//! artefact classes, so the cleaning filter (`timeseries::clean`) and the
//! robust correlation measures have something real to earn their keep on.
//! Every corruption is tagged so tests can measure filter precision/recall
//! against ground truth.

use serde::{Deserialize, Serialize};

use crate::quote::Quote;
use crate::rng::MarketRng;

/// Per-quote probabilities of each corruption class. Disjoint events,
/// evaluated in declaration order; probabilities should sum to < 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorConfig {
    /// Electronic test quote: both sides replaced by absurd levels.
    pub test_quote: f64,
    /// Human fat-finger: one side off by a factor of 10.
    pub fat_finger: f64,
    /// Far-out limit order: one side pushed 20-50% away from the market.
    pub far_out: f64,
    /// Stale repeat: the previous quote's prices re-sent at a new time.
    pub stale: f64,
    /// Mid-price jitter: the whole quote displaced by a few tenths of a
    /// percent — *small enough to pass the TCP-like cleaning filter*, so
    /// it lands in the correlation inputs. This is the error class that
    /// separates robust from classical correlation in practice: "the
    /// remaining outliers will be gracefully down-weighted by the robust
    /// correlation method".
    pub jitter: f64,
    /// Peak jitter displacement as a fraction of the midpoint (each hit
    /// draws uniformly in `[0.25, 1.0] x` this, signed).
    pub jitter_magnitude: f64,
}

impl ErrorConfig {
    /// Paper-flavoured default: roughly 1 in 250 quotes grossly bad, plus
    /// a few percent of filter-surviving jitter.
    pub fn realistic() -> Self {
        ErrorConfig {
            test_quote: 0.0005,
            fat_finger: 0.001,
            far_out: 0.002,
            stale: 0.0005,
            jitter: 0.03,
            jitter_magnitude: 0.004,
        }
    }

    /// No corruption (clean-data ablation).
    pub fn none() -> Self {
        ErrorConfig {
            test_quote: 0.0,
            fat_finger: 0.0,
            far_out: 0.0,
            stale: 0.0,
            jitter: 0.0,
            jitter_magnitude: 0.0,
        }
    }

    /// Heavy corruption (robustness stress ablation): ~5% gross bad ticks
    /// plus 10% jitter.
    pub fn heavy() -> Self {
        ErrorConfig {
            test_quote: 0.005,
            fat_finger: 0.02,
            far_out: 0.02,
            stale: 0.005,
            jitter: 0.10,
            jitter_magnitude: 0.006,
        }
    }

    /// Total probability that a quote is corrupted (any class).
    pub fn total(&self) -> f64 {
        self.test_quote + self.fat_finger + self.far_out + self.stale + self.jitter
    }
}

impl Default for ErrorConfig {
    fn default() -> Self {
        Self::realistic()
    }
}

/// The corruption applied to a quote, for ground-truth bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Electronic test quote.
    TestQuote,
    /// Fat-finger digit error.
    FatFinger,
    /// Far-out limit order.
    FarOut,
    /// Stale repeat of the previous quote.
    Stale,
    /// Small mid-price displacement that survives cleaning.
    Jitter,
}

/// Stateful injector (remembers the previous clean quote per call site to
/// implement stale repeats).
#[derive(Debug, Clone)]
pub struct ErrorInjector {
    cfg: ErrorConfig,
    prev: Option<Quote>,
}

impl ErrorInjector {
    /// New injector with the given configuration.
    pub fn new(cfg: ErrorConfig) -> Self {
        ErrorInjector { cfg, prev: None }
    }

    /// Possibly corrupt a quote. Returns the (possibly modified) quote and
    /// the corruption tag, if any. The *clean* quote is remembered for
    /// stale-repeat generation regardless of outcome.
    pub fn process(&mut self, quote: Quote, rng: &mut MarketRng) -> (Quote, Option<ErrorKind>) {
        let prev = self.prev.replace(quote);
        let u = rng.uniform();
        let c = &self.cfg;

        let mut lo = 0.0;
        let mut band = |p: f64, u: f64| {
            let hit = u >= lo && u < lo + p;
            lo += p;
            hit
        };

        if band(c.test_quote, u) {
            let mut q = quote;
            // Exchange test pattern: penny bid, far ask.
            q.bid_cents = 1;
            q.ask_cents = 99_999;
            q.bid_size = 1;
            q.ask_size = 1;
            return (q, Some(ErrorKind::TestQuote));
        }
        if band(c.fat_finger, u) {
            let mut q = quote;
            // Shift one side by a decimal place, direction at random.
            let up = rng.flip(0.5);
            if rng.flip(0.5) {
                q.bid_cents = if up {
                    q.bid_cents.saturating_mul(10)
                } else {
                    (q.bid_cents / 10).max(1)
                };
            } else {
                q.ask_cents = if up {
                    q.ask_cents.saturating_mul(10)
                } else {
                    (q.ask_cents / 10).max(2)
                };
            }
            return (q, Some(ErrorKind::FatFinger));
        }
        if band(c.far_out, u) {
            let mut q = quote;
            let frac = 0.2 + 0.3 * rng.uniform();
            if rng.flip(0.5) {
                q.bid_cents = ((q.bid_cents as f64) * (1.0 - frac)) as u32;
                q.bid_cents = q.bid_cents.max(1);
            } else {
                q.ask_cents = ((q.ask_cents as f64) * (1.0 + frac)) as u32;
            }
            return (q, Some(ErrorKind::FarOut));
        }
        if band(c.stale, u) {
            if let Some(p) = prev {
                let mut q = quote;
                q.bid_cents = p.bid_cents;
                q.ask_cents = p.ask_cents;
                q.bid_size = p.bid_size;
                q.ask_size = p.ask_size;
                return (q, Some(ErrorKind::Stale));
            }
        }
        if band(c.jitter, u) {
            let mut q = quote;
            let sign = if rng.flip(0.5) { 1.0 } else { -1.0 };
            let frac = sign * c.jitter_magnitude * (0.25 + 0.75 * rng.uniform());
            let shift =
                |cents: u32| -> u32 { ((cents as f64 * (1.0 + frac)).round() as u32).max(1) };
            q.bid_cents = shift(q.bid_cents);
            q.ask_cents = shift(q.ask_cents).max(q.bid_cents + 1);
            return (q, Some(ErrorKind::Jitter));
        }
        (quote, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;
    use crate::time::Timestamp;

    fn clean_quote(millis: u32, bid: u32, ask: u32) -> Quote {
        Quote {
            ts: Timestamp::new(0, millis),
            symbol: Symbol(0),
            bid_cents: bid,
            ask_cents: ask,
            bid_size: 5,
            ask_size: 5,
        }
    }

    #[test]
    fn no_corruption_when_disabled() {
        let mut inj = ErrorInjector::new(ErrorConfig::none());
        let mut rng = MarketRng::seed_from(1);
        for k in 0..1000 {
            let q = clean_quote(k, 4000, 4002);
            let (out, kind) = inj.process(q, &mut rng);
            assert_eq!(out, q);
            assert_eq!(kind, None);
        }
    }

    #[test]
    fn corruption_rate_matches_config() {
        let cfg = ErrorConfig::heavy();
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(2);
        let n = 200_000;
        let mut corrupted = 0;
        for k in 0..n {
            let q = clean_quote(k % 23_000_000, 4000, 4002);
            let (_, kind) = inj.process(q, &mut rng);
            if kind.is_some() {
                corrupted += 1;
            }
        }
        let rate = corrupted as f64 / n as f64;
        assert!(
            (rate - cfg.total()).abs() < 0.005,
            "rate {rate} vs config {}",
            cfg.total()
        );
    }

    #[test]
    fn test_quotes_are_absurd() {
        let cfg = ErrorConfig {
            test_quote: 1.0,
            fat_finger: 0.0,
            far_out: 0.0,
            stale: 0.0,
            jitter: 0.0,
            jitter_magnitude: 0.0,
        };
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(3);
        let (q, kind) = inj.process(clean_quote(0, 4000, 4002), &mut rng);
        assert_eq!(kind, Some(ErrorKind::TestQuote));
        assert_eq!(q.bid_cents, 1);
        assert_eq!(q.ask_cents, 99_999);
    }

    #[test]
    fn fat_finger_moves_a_decimal_place() {
        let cfg = ErrorConfig {
            test_quote: 0.0,
            fat_finger: 1.0,
            far_out: 0.0,
            stale: 0.0,
            jitter: 0.0,
            jitter_magnitude: 0.0,
        };
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(4);
        for k in 0..100 {
            let (q, kind) = inj.process(clean_quote(k, 4000, 4002), &mut rng);
            assert_eq!(kind, Some(ErrorKind::FatFinger));
            let moved_bid = q.bid_cents == 40_000 || q.bid_cents == 400;
            let moved_ask = q.ask_cents == 40_020 || q.ask_cents == 400;
            assert!(moved_bid || moved_ask, "{q:?}");
        }
    }

    #[test]
    fn stale_repeats_previous_prices() {
        let cfg = ErrorConfig {
            test_quote: 0.0,
            fat_finger: 0.0,
            far_out: 0.0,
            stale: 1.0,
            jitter: 0.0,
            jitter_magnitude: 0.0,
        };
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(5);
        // First quote: no previous, passes clean.
        let (q0, k0) = inj.process(clean_quote(0, 4000, 4002), &mut rng);
        assert_eq!(k0, None);
        assert_eq!(q0.bid_cents, 4000);
        // Second quote: repeats first's prices but keeps its own timestamp.
        let (q1, k1) = inj.process(clean_quote(1000, 5000, 5002), &mut rng);
        assert_eq!(k1, Some(ErrorKind::Stale));
        assert_eq!(q1.bid_cents, 4000);
        assert_eq!(q1.ts.millis, 1000);
    }

    #[test]
    fn jitter_is_small_and_survives_well_formedness() {
        let cfg = ErrorConfig {
            test_quote: 0.0,
            fat_finger: 0.0,
            far_out: 0.0,
            stale: 0.0,
            jitter: 1.0,
            jitter_magnitude: 0.004,
        };
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(8);
        for k in 0..500 {
            let (q, kind) = inj.process(clean_quote(k, 10_000, 10_004), &mut rng);
            assert_eq!(kind, Some(ErrorKind::Jitter));
            assert!(q.is_well_formed(), "{q:?}");
            let displacement = (q.midpoint() - 100.02) / 100.02;
            assert!(
                displacement.abs() <= 0.0041,
                "jitter too large: {displacement}"
            );
            assert!(
                displacement.abs() >= 0.0008,
                "jitter too small to matter: {displacement}"
            );
        }
    }

    #[test]
    fn far_out_pushes_one_side() {
        let cfg = ErrorConfig {
            test_quote: 0.0,
            fat_finger: 0.0,
            far_out: 1.0,
            stale: 0.0,
            jitter: 0.0,
            jitter_magnitude: 0.0,
        };
        let mut inj = ErrorInjector::new(cfg);
        let mut rng = MarketRng::seed_from(6);
        for k in 0..100 {
            let (q, kind) = inj.process(clean_quote(k, 10_000, 10_004), &mut rng);
            assert_eq!(kind, Some(ErrorKind::FarOut));
            let bid_out = q.bid_cents <= 8_000;
            let ask_out = q.ask_cents >= 12_000;
            assert!(bid_out ^ ask_out, "{q:?}");
        }
    }
}
