//! The trading clock.
//!
//! A regular NYSE session runs 09:30–16:00, i.e. exactly 23 400 seconds —
//! the paper leans on this: "there are exactly 23400 seconds in a typical
//! trading day, and if Δs = 30 seconds, then there will be
//! smax = 23400 / 30 = 780 intervals."
//!
//! Timestamps are millisecond offsets from the session open, paired with a
//! day index (the paper's month of March 2008 has 20 trading days).

use serde::{Deserialize, Serialize};

/// Seconds in a regular trading session (09:30:00 to 16:00:00).
pub const SECONDS_PER_SESSION: u32 = 23_400;

/// Milliseconds in a regular trading session.
pub const MILLIS_PER_SESSION: u32 = SECONDS_PER_SESSION * 1000;

/// Session open in seconds since midnight (09:30).
pub const OPEN_SECONDS_SINCE_MIDNIGHT: u32 = 9 * 3600 + 30 * 60;

/// A point in trading time: day index plus milliseconds since the open.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp {
    /// Trading-day index (0-based within the dataset).
    pub day: u16,
    /// Milliseconds since the 09:30:00 open.
    pub millis: u32,
}

impl Timestamp {
    /// Construct from day and millisecond offset.
    ///
    /// # Panics
    /// Panics if `millis` is outside the session.
    pub fn new(day: u16, millis: u32) -> Self {
        assert!(millis < MILLIS_PER_SESSION, "timestamp outside session");
        Timestamp { day, millis }
    }

    /// Seconds since the open (truncated).
    #[inline]
    pub fn seconds(self) -> u32 {
        self.millis / 1000
    }

    /// The Δs interval index this timestamp falls into.
    #[inline]
    pub fn interval(self, dt_seconds: u32) -> usize {
        (self.seconds() / dt_seconds) as usize
    }

    /// Seconds remaining until the close.
    #[inline]
    pub fn seconds_to_close(self) -> u32 {
        SECONDS_PER_SESSION - self.seconds() - u32::from(!self.millis.is_multiple_of(1000))
    }

    /// Wall-clock rendering `HH:MM:SS`, as in Table II.
    pub fn wall_clock(self) -> String {
        let total = OPEN_SECONDS_SINCE_MIDNIGHT + self.seconds();
        format!(
            "{:02}:{:02}:{:02}",
            total / 3600,
            (total % 3600) / 60,
            total % 60
        )
    }
}

/// Trading calendar: a span of trading days partitioned into Δs intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TradingCalendar {
    /// Number of trading days (the paper's March 2008 has 20).
    pub days: u16,
    /// Interval width Δs in seconds.
    pub dt_seconds: u32,
}

impl TradingCalendar {
    /// Build a calendar.
    ///
    /// # Panics
    /// Panics if `dt_seconds` is 0 or does not divide the session evenly
    /// (the paper's interval arithmetic assumes it does).
    pub fn new(days: u16, dt_seconds: u32) -> Self {
        assert!(dt_seconds > 0, "Δs must be positive");
        assert_eq!(
            SECONDS_PER_SESSION % dt_seconds,
            0,
            "Δs must divide the 23400-second session evenly"
        );
        TradingCalendar { days, dt_seconds }
    }

    /// The paper's default: 20 trading days at Δs = 30 s.
    pub fn paper_default() -> Self {
        Self::new(20, 30)
    }

    /// Number of Δs intervals per day (`smax`).
    #[inline]
    pub fn intervals_per_day(&self) -> usize {
        (SECONDS_PER_SESSION / self.dt_seconds) as usize
    }

    /// Timestamp of the *end* of interval `s` on `day` (exclusive bound).
    pub fn interval_end(&self, day: u16, s: usize) -> Timestamp {
        let end_sec = (s as u32 + 1) * self.dt_seconds;
        Timestamp::new(day, end_sec * 1000 - 1)
    }

    /// Iterate over all (day, interval) cells in chronological order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (u16, usize)> + '_ {
        let per_day = self.intervals_per_day();
        (0..self.days).flat_map(move |d| (0..per_day).map(move |s| (d, s)))
    }
}

impl wire::Codec for Timestamp {
    fn encode(&self, w: &mut wire::Writer) {
        wire::Codec::encode(&self.day, w);
        wire::Codec::encode(&self.millis, w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        let day = <u16 as wire::Codec>::decode(r)?;
        let millis = <u32 as wire::Codec>::decode(r)?;
        if millis >= MILLIS_PER_SESSION {
            return Err(wire::WireError::Invalid("timestamp outside session"));
        }
        Ok(Timestamp { day, millis })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_interval_arithmetic() {
        // "if Δs = 30 seconds, then there will be smax = 23400/30 = 780".
        let cal = TradingCalendar::paper_default();
        assert_eq!(cal.intervals_per_day(), 780);
        assert_eq!(cal.days, 20);
        let cal15 = TradingCalendar::new(1, 15);
        assert_eq!(cal15.intervals_per_day(), 1560);
    }

    #[test]
    fn wall_clock_rendering() {
        assert_eq!(Timestamp::new(0, 0).wall_clock(), "09:30:00");
        assert_eq!(Timestamp::new(0, 4_000).wall_clock(), "09:30:04"); // Table II
        assert_eq!(
            Timestamp::new(0, MILLIS_PER_SESSION - 1).wall_clock(),
            "15:59:59"
        );
    }

    #[test]
    fn interval_assignment() {
        let ts = Timestamp::new(0, 29_999);
        assert_eq!(ts.interval(30), 0);
        let ts = Timestamp::new(0, 30_000);
        assert_eq!(ts.interval(30), 1);
        let last = Timestamp::new(0, MILLIS_PER_SESSION - 1);
        assert_eq!(last.interval(30), 779);
    }

    #[test]
    fn seconds_to_close() {
        assert_eq!(Timestamp::new(0, 0).seconds_to_close(), 23_400);
        assert_eq!(Timestamp::new(0, 23_399_000).seconds_to_close(), 1);
        assert_eq!(Timestamp::new(0, 23_399_999).seconds_to_close(), 0);
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Timestamp::new(0, 500);
        let b = Timestamp::new(0, 501);
        let c = Timestamp::new(1, 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn interval_end_timestamps() {
        let cal = TradingCalendar::new(2, 30);
        let end0 = cal.interval_end(0, 0);
        assert_eq!(end0.seconds(), 29);
        let end_last = cal.interval_end(1, 779);
        assert_eq!(end_last.day, 1);
        assert_eq!(end_last.millis, MILLIS_PER_SESSION - 1);
    }

    #[test]
    fn iter_cells_count() {
        let cal = TradingCalendar::new(3, 1800);
        assert_eq!(cal.iter_cells().count(), 3 * 13);
    }

    #[test]
    #[should_panic]
    fn uneven_dt_rejected() {
        let _ = TradingCalendar::new(1, 7);
    }

    #[test]
    #[should_panic]
    fn timestamp_outside_session_rejected() {
        let _ = Timestamp::new(0, MILLIS_PER_SESSION);
    }
}
