//! Deterministic random sampling primitives.
//!
//! The offline dependency set includes no `rand` family crates at all, so
//! both the generator (xoshiro256++ seeded via SplitMix64) and the variate
//! samplers the market model needs are implemented here: Box–Muller for the
//! Gaussian and inverse-CDF for the exponential. Everything is seeded, so a
//! whole month of market data is a pure function of `(config, seed)` — the
//! reproducibility guarantee the backtester's determinism tests rely on.

/// xoshiro256++ — the same generator family the real `rand::StdRng` family
/// draws on: 256 bits of state, fast, and statistically strong enough for
/// market simulation (this is test data, not cryptography).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Expand a 64-bit seed into full state with SplitMix64 (the canonical
    /// seeding recipe, which guarantees a non-zero state).
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// Seeded random source with the distribution helpers the market model
/// needs.
#[derive(Debug, Clone)]
pub struct MarketRng {
    rng: Xoshiro256,
    /// Box–Muller produces pairs; the spare is cached.
    spare_gauss: Option<f64>,
}

impl MarketRng {
    /// Create from a seed.
    pub fn seed_from(seed: u64) -> Self {
        MarketRng {
            rng: Xoshiro256::seed_from_u64(seed),
            spare_gauss: None,
        }
    }

    /// Derive an independent stream for a sub-component (stock index, day,
    /// purpose tag), so adding quotes for one stock never perturbs another.
    pub fn derive(&self, tag: u64) -> Self {
        // SplitMix-style mixing of the tag into a fresh seed.
        let mut z = tag.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        MarketRng {
            rng: Xoshiro256::seed_from_u64(z),
            spare_gauss: None,
        }
    }

    /// Uniform in [0, 1): the top 53 bits scaled by 2⁻⁵³.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [lo, hi] inclusive.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[inline]
    pub fn uniform_int(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "uniform_int: lo > hi");
        let span = (hi - lo) as u64 + 1;
        lo + (self.rng.next_u64() % span) as u32
    }

    /// Standard normal via Box–Muller (with spare caching).
    pub fn gauss(&mut self) -> f64 {
        if let Some(z) = self.spare_gauss.take() {
            return z;
        }
        // Avoid ln(0).
        let u1: f64 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_gauss = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Exponential with the given rate (inverse-CDF). Mean is `1 / rate`.
    ///
    /// # Panics
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u: f64 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Bernoulli trial.
    #[inline]
    pub fn flip(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = MarketRng::seed_from(7);
        let mut b = MarketRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.gauss(), b.gauss());
            assert_eq!(a.uniform(), b.uniform());
        }
        let mut c = MarketRng::seed_from(8);
        assert_ne!(a.uniform(), c.uniform());
    }

    #[test]
    fn derived_streams_are_independent_and_stable() {
        let base = MarketRng::seed_from(1);
        let mut d1 = base.derive(10);
        let mut d1_again = base.derive(10);
        let mut d2 = base.derive(11);
        let x = d1.gauss();
        assert_eq!(x, d1_again.gauss());
        assert_ne!(x, d2.gauss());
    }

    #[test]
    fn gauss_moments() {
        let mut rng = MarketRng::seed_from(42);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let z = rng.gauss();
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = MarketRng::seed_from(5);
        let rate = 2.5;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn flip_probability() {
        let mut rng = MarketRng::seed_from(9);
        let hits = (0..100_000).filter(|_| rng.flip(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    fn uniform_int_bounds() {
        let mut rng = MarketRng::seed_from(3);
        for _ in 0..1000 {
            let v = rng.uniform_int(1, 6);
            assert!((1..=6).contains(&v));
        }
    }
}
