//! The latent price model behind the synthetic market.
//!
//! What the pair-trading strategy needs from the data — and therefore what
//! the model must reproduce — is:
//!
//! 1. **Short-term co-movement**: blocks of fundamentally-linked stocks
//!    whose second-by-second log-returns are strongly correlated
//!    (Exxon/Chevron, UPS/FedEx, ...). Modelled with a sector-block target
//!    correlation matrix whose Cholesky factor couples the per-second
//!    Gaussian shocks.
//! 2. **Correlation breakdowns that recover**: the paper's entire premise is
//!    "when the co-movement deteriorates ... buy the under-performer and
//!    sell the over-performer, anticipating that the co-movement will
//!    recover". Modelled as *divergence episodes*: a transient single-name
//!    log-price pulse that ramps up over a couple of minutes and then decays
//!    back — a temporary mispricing with a built-in retracement.
//! 3. **Realistic price levels and volatility** so that spreads, share
//!    ratios (the floor/ceil rule needs Pi/Pj > 1 cases) and cent rounding
//!    behave sensibly.
//!
//! Episodes are recorded as ground truth so tests can check that the
//! strategy actually trades the injected opportunities.

use serde::{Deserialize, Serialize};
use stats::linalg::Cholesky;
use stats::matrix::SymMatrix;

use crate::rng::MarketRng;
use crate::time::SECONDS_PER_SESSION;

/// Sector-block correlation structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectorStructure {
    /// Sizes of the sector blocks; must sum to the universe size.
    pub block_sizes: Vec<usize>,
    /// Return correlation within a block.
    pub intra_rho: f64,
    /// Return correlation across blocks.
    pub inter_rho: f64,
}

impl SectorStructure {
    /// Default sectoring for `n` stocks: blocks of ~8, intra 0.7, inter 0.15
    /// — strong fundamental pairs inside sectors, mild market factor across.
    pub fn default_for(n: usize) -> Self {
        let mut block_sizes = Vec::new();
        let mut left = n;
        while left > 0 {
            let b = left.min(8);
            block_sizes.push(b);
            left -= b;
        }
        SectorStructure {
            block_sizes,
            intra_rho: 0.7,
            inter_rho: 0.15,
        }
    }

    /// Universe size.
    pub fn n(&self) -> usize {
        self.block_sizes.iter().sum()
    }

    /// Sector index of stock `i`.
    pub fn sector_of(&self, i: usize) -> usize {
        let mut acc = 0;
        for (k, &b) in self.block_sizes.iter().enumerate() {
            acc += b;
            if i < acc {
                return k;
            }
        }
        panic!("stock index {i} outside universe of {}", self.n());
    }

    /// The target correlation matrix (unit diagonal, `intra_rho` within
    /// blocks, `inter_rho` across). Positive definite whenever
    /// `0 <= inter_rho < intra_rho < 1`, which is validated by construction
    /// of the Cholesky factor at model build time.
    pub fn target_correlation(&self) -> SymMatrix {
        let n = self.n();
        let mut m = SymMatrix::identity(n);
        for i in 1..n {
            for j in 0..i {
                let rho = if self.sector_of(i) == self.sector_of(j) {
                    self.intra_rho
                } else {
                    self.inter_rho
                };
                m.set(i, j, rho);
            }
        }
        m
    }
}

/// Configuration of the divergence-episode process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DivergenceConfig {
    /// Expected number of episodes per stock per day (Poisson).
    pub episodes_per_stock_day: f64,
    /// Peak log-price displacement of an episode (e.g. 0.004 ≈ 40 bps).
    pub magnitude: f64,
    /// Seconds over which the displacement ramps up linearly.
    pub ramp_seconds: u32,
    /// Half-life, in seconds, of the exponential decay back to fair value.
    pub half_life_seconds: u32,
}

impl Default for DivergenceConfig {
    fn default() -> Self {
        DivergenceConfig {
            episodes_per_stock_day: 6.0,
            magnitude: 0.004,
            ramp_seconds: 120,
            half_life_seconds: 600,
        }
    }
}

/// A recorded divergence episode (ground truth for tests and examples).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Episode {
    /// Stock index.
    pub stock: usize,
    /// Second (since open) when the pulse starts.
    pub start_sec: u32,
    /// Signed peak log displacement.
    pub magnitude: f64,
    /// Ramp duration (seconds).
    pub ramp_seconds: u32,
    /// Decay half-life (seconds).
    pub half_life_seconds: u32,
}

impl Episode {
    /// Log-price displacement contributed by this episode at second `t`.
    pub fn displacement_at(&self, t: u32) -> f64 {
        if t < self.start_sec {
            return 0.0;
        }
        let dt = t - self.start_sec;
        if dt <= self.ramp_seconds {
            self.magnitude * dt as f64 / self.ramp_seconds.max(1) as f64
        } else {
            let decay_t = (dt - self.ramp_seconds) as f64;
            let lambda = std::f64::consts::LN_2 / self.half_life_seconds.max(1) as f64;
            self.magnitude * (-lambda * decay_t).exp()
        }
    }
}

/// One simulated day of latent (error-free) midpoint prices on a 1-second
/// grid, plus the injected episodes.
#[derive(Debug, Clone)]
pub struct LatentDay {
    n: usize,
    /// Row-major `[stock][second]` fair midpoints in dollars.
    mids: Vec<f64>,
    /// Ground-truth episodes active this day.
    pub episodes: Vec<Episode>,
}

impl LatentDay {
    /// Universe size.
    pub fn n_stocks(&self) -> usize {
        self.n
    }

    /// Fair midpoint of `stock` at `second`.
    #[inline]
    pub fn mid(&self, stock: usize, second: u32) -> f64 {
        self.mids[stock * SECONDS_PER_SESSION as usize + second as usize]
    }

    /// Full second-grid series for a stock.
    pub fn series(&self, stock: usize) -> &[f64] {
        let s = SECONDS_PER_SESSION as usize;
        &self.mids[stock * s..(stock + 1) * s]
    }
}

/// A market-stress regime: what March 2008 (the paper's sample month —
/// Bear Stearns collapsed in it) does to the joint dynamics. Volatility
/// multiplies and correlations compress toward a single market factor —
/// the classic crisis signature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StressParams {
    /// Volatility multiplier (e.g. 2.5).
    pub vol_multiplier: f64,
    /// Correlation every pair is pulled toward (e.g. 0.8).
    pub corr_toward: f64,
    /// Pull strength in [0, 1]: stressed ρ = ρ + blend (corr_toward − ρ).
    pub blend: f64,
}

impl Default for StressParams {
    fn default() -> Self {
        StressParams {
            vol_multiplier: 2.5,
            corr_toward: 0.8,
            blend: 0.6,
        }
    }
}

/// The multi-day latent market model.
///
/// Log-prices evolve as a correlated random walk on a 1-second grid;
/// state (closing prices) persists across days so a month of data forms a
/// continuous path.
#[derive(Debug, Clone)]
pub struct LatentModel {
    n: usize,
    chol: Cholesky,
    /// Base target correlation (kept to derive stressed factors).
    base_corr: SymMatrix,
    /// Cached stressed Cholesky factor, keyed by the params that built it.
    stressed_chol: Option<(StressParams, Cholesky)>,
    /// Per-second log-return volatility per stock.
    per_sec_vol: Vec<f64>,
    /// Current fair log-prices (state across days).
    log_prices: Vec<f64>,
    divergence: DivergenceConfig,
}

impl LatentModel {
    /// Build a model.
    ///
    /// * `initial_prices` — opening prices in dollars (length = universe).
    /// * `daily_vol` — daily log-return volatility per stock (e.g. 0.02).
    /// * `sectors` — correlation structure; must match the universe size.
    ///
    /// # Panics
    /// Panics if the sector structure's size differs from the price vector,
    /// or the target correlation matrix is not positive definite.
    pub fn new(
        initial_prices: &[f64],
        daily_vol: &[f64],
        sectors: &SectorStructure,
        divergence: DivergenceConfig,
    ) -> Self {
        let n = initial_prices.len();
        assert_eq!(sectors.n(), n, "sector structure size mismatch");
        assert_eq!(daily_vol.len(), n, "volatility vector size mismatch");
        let corr = sectors.target_correlation();
        let chol = Cholesky::factor(&corr, 1e-12)
            .expect("sector correlation matrix must be positive definite");
        let per_sec = (SECONDS_PER_SESSION as f64).sqrt();
        LatentModel {
            n,
            chol,
            base_corr: corr,
            stressed_chol: None,
            per_sec_vol: daily_vol.iter().map(|v| v / per_sec).collect(),
            log_prices: initial_prices.iter().map(|p| p.ln()).collect(),
            divergence,
        }
    }

    /// Cholesky factor for a stressed regime (cached per params).
    fn stressed_factor(&mut self, stress: StressParams) -> &Cholesky {
        let stale = !matches!(&self.stressed_chol, Some((p, _)) if *p == stress);
        if stale {
            let n = self.n;
            let mut stressed = SymMatrix::identity(n);
            for i in 1..n {
                for j in 0..i {
                    let rho = self.base_corr.get(i, j);
                    stressed.set(i, j, rho + stress.blend * (stress.corr_toward - rho));
                }
            }
            let chol = Cholesky::factor(&stressed, 1e-12)
                .expect("stressed correlation matrix must stay positive definite");
            self.stressed_chol = Some((stress, chol));
        }
        &self.stressed_chol.as_ref().expect("just built").1
    }

    /// Universe size.
    pub fn n_stocks(&self) -> usize {
        self.n
    }

    /// Current fair prices (the state carried between days).
    pub fn prices(&self) -> Vec<f64> {
        self.log_prices.iter().map(|lp| lp.exp()).collect()
    }

    fn draw_episodes(&self, rng: &mut MarketRng) -> Vec<Episode> {
        let mut eps = Vec::new();
        let cfg = self.divergence;
        if cfg.episodes_per_stock_day <= 0.0 || cfg.magnitude == 0.0 {
            return eps;
        }
        for stock in 0..self.n {
            // Poisson arrivals via exponential gaps across the session.
            let rate = cfg.episodes_per_stock_day / SECONDS_PER_SESSION as f64;
            let mut t = rng.exponential(rate);
            while (t as u32) < SECONDS_PER_SESSION {
                let sign = if rng.flip(0.5) { 1.0 } else { -1.0 };
                // Magnitude jitter in [0.5x, 1.5x].
                let mag = cfg.magnitude * (0.5 + rng.uniform());
                eps.push(Episode {
                    stock,
                    start_sec: t as u32,
                    magnitude: sign * mag,
                    ramp_seconds: cfg.ramp_seconds,
                    half_life_seconds: cfg.half_life_seconds,
                });
                t += rng.exponential(rate);
            }
        }
        eps
    }

    /// Simulate one trading day, advancing the model state to the close.
    pub fn simulate_day(&mut self, rng: &mut MarketRng) -> LatentDay {
        self.simulate_day_with(rng, None)
    }

    /// Simulate one trading day under an optional stress regime.
    pub fn simulate_day_with(
        &mut self,
        rng: &mut MarketRng,
        stress: Option<StressParams>,
    ) -> LatentDay {
        let secs = SECONDS_PER_SESSION as usize;
        let episodes = self.draw_episodes(rng);
        let mut mids = vec![0.0; self.n * secs];

        // Pre-bucket episodes by stock for the inner loop.
        let mut by_stock: Vec<Vec<&Episode>> = vec![Vec::new(); self.n];
        for e in &episodes {
            by_stock[e.stock].push(e);
        }

        let vol_mult = stress.map(|s| s.vol_multiplier).unwrap_or(1.0);
        // Borrow-check dance: materialise the factor choice before the
        // mutable sweep below.
        if let Some(s) = stress {
            let _ = self.stressed_factor(s);
        }
        let chol = match (&stress, &self.stressed_chol) {
            (Some(_), Some((_, c))) => c.clone(),
            _ => self.chol.clone(),
        };

        let mut shocks = vec![0.0; self.n];
        for t in 0..secs {
            for z in shocks.iter_mut() {
                *z = rng.gauss();
            }
            chol.mul_in_place(&mut shocks);
            for i in 0..self.n {
                self.log_prices[i] += vol_mult * self.per_sec_vol[i] * shocks[i];
                let mut lp = self.log_prices[i];
                for e in &by_stock[i] {
                    lp += e.displacement_at(t as u32);
                }
                mids[i * secs + t] = lp.exp();
            }
        }
        LatentDay {
            n: self.n,
            mids,
            episodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::pearson::pearson;

    fn small_model(n: usize, seed_prices: f64) -> LatentModel {
        let prices = vec![seed_prices; n];
        let vols = vec![0.02; n];
        let sectors = SectorStructure {
            block_sizes: vec![n],
            intra_rho: 0.8,
            inter_rho: 0.0,
        };
        LatentModel::new(&prices, &vols, &sectors, DivergenceConfig::default())
    }

    #[test]
    fn sector_structure_shapes() {
        let s = SectorStructure::default_for(61);
        assert_eq!(s.n(), 61);
        assert_eq!(s.sector_of(0), 0);
        assert_eq!(s.sector_of(7), 0);
        assert_eq!(s.sector_of(8), 1);
        assert_eq!(s.sector_of(60), 7);
        let c = s.target_correlation();
        assert!(c.has_unit_diagonal(0.0));
        assert_eq!(c.get(0, 1), 0.7);
        assert_eq!(c.get(0, 8), 0.15);
        // Must be factorable — the model depends on it.
        assert!(Cholesky::factor(&c, 1e-12).is_ok());
    }

    #[test]
    fn episode_displacement_profile() {
        let e = Episode {
            stock: 0,
            start_sec: 100,
            magnitude: 0.01,
            ramp_seconds: 50,
            half_life_seconds: 100,
        };
        assert_eq!(e.displacement_at(99), 0.0);
        assert_eq!(e.displacement_at(100), 0.0);
        assert!((e.displacement_at(125) - 0.005).abs() < 1e-12, "mid-ramp");
        assert!((e.displacement_at(150) - 0.01).abs() < 1e-12, "peak");
        assert!(
            (e.displacement_at(250) - 0.005).abs() < 1e-9,
            "one half-life"
        );
        assert!(e.displacement_at(2000) < 1e-5, "decayed away");
    }

    #[test]
    fn simulated_returns_have_target_correlation() {
        let mut model = small_model(4, 50.0);
        // Disable episodes to isolate the diffusion.
        model.divergence.episodes_per_stock_day = 0.0;
        let mut rng = MarketRng::seed_from(11);
        let day = model.simulate_day(&mut rng);
        // Per-second log returns of stocks 0 and 1 should correlate ~0.8.
        let r = |stock: usize| -> Vec<f64> {
            let s = day.series(stock);
            s.windows(2).map(|w| (w[1] / w[0]).ln()).collect()
        };
        let rho = pearson(&r(0), &r(1));
        assert!((rho - 0.8).abs() < 0.03, "rho = {rho}");
    }

    #[test]
    fn state_persists_across_days() {
        let mut model = small_model(2, 40.0);
        model.divergence.episodes_per_stock_day = 0.0;
        let mut rng = MarketRng::seed_from(3);
        let day0 = model.simulate_day(&mut rng);
        let close0 = day0.mid(0, SECONDS_PER_SESSION - 1);
        let day1 = model.simulate_day(&mut rng);
        let open1 = day1.mid(0, 0);
        // One per-second step apart: tiny move.
        assert!((open1 / close0).ln().abs() < 0.01);
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = |seed: u64| {
            let mut m = small_model(3, 60.0);
            let mut rng = MarketRng::seed_from(seed);
            let d = m.simulate_day(&mut rng);
            (d.mid(1, 1000), d.episodes.len())
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5).0, gen(6).0);
    }

    #[test]
    fn episode_counts_scale_with_rate() {
        let mut model = small_model(10, 30.0);
        model.divergence.episodes_per_stock_day = 6.0;
        let mut rng = MarketRng::seed_from(21);
        let day = model.simulate_day(&mut rng);
        // 10 stocks * 6/day = 60 expected; Poisson sd ~ 7.7.
        let count = day.episodes.len();
        assert!((30..=95).contains(&count), "episodes {count}");
    }

    #[test]
    fn stress_regime_raises_vol_and_cross_correlation() {
        let n = 8;
        let prices = vec![60.0; n];
        let vols = vec![0.02; n];
        let sectors = SectorStructure {
            block_sizes: vec![4, 4],
            intra_rho: 0.7,
            inter_rho: 0.1,
        };
        let mut model = LatentModel::new(
            &prices,
            &vols,
            &sectors,
            DivergenceConfig {
                episodes_per_stock_day: 0.0,
                ..DivergenceConfig::default()
            },
        );
        let mut rng = MarketRng::seed_from(17);
        let calm = model.simulate_day_with(&mut rng, None);
        let stressed = model.simulate_day_with(&mut rng, Some(StressParams::default()));

        let rets = |day: &LatentDay, stock: usize| -> Vec<f64> {
            day.series(stock)
                .windows(2)
                .map(|w| (w[1] / w[0]).ln())
                .collect()
        };
        let vol_of = |r: &[f64]| -> f64 {
            let m = r.iter().sum::<f64>() / r.len() as f64;
            (r.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / r.len() as f64).sqrt()
        };
        // Volatility multiplies (2.5x target, generous tolerance).
        let v_calm = vol_of(&rets(&calm, 0));
        let v_stress = vol_of(&rets(&stressed, 0));
        assert!(
            v_stress / v_calm > 2.0,
            "vol ratio {} too low",
            v_stress / v_calm
        );
        // Cross-sector correlation compresses toward the market factor:
        // base 0.1 -> 0.1 + 0.6*(0.8-0.1) = 0.52.
        let cross_calm = pearson(&rets(&calm, 0), &rets(&calm, 7));
        let cross_stress = pearson(&rets(&stressed, 0), &rets(&stressed, 7));
        assert!(cross_calm < 0.2, "calm cross-sector rho {cross_calm}");
        assert!(
            (cross_stress - 0.52).abs() < 0.08,
            "stressed cross-sector rho {cross_stress}"
        );
    }

    #[test]
    fn stress_window_applies_to_configured_days_only() {
        use crate::generator::{MarketConfig, MarketGenerator, StressWindow};
        let mut cfg = MarketConfig::small(4, 3, 31);
        cfg.micro.quote_rate_hz = 0.02;
        // Clean tape: fat-finger ticks would otherwise dominate the raw
        // quote-to-quote vol and mask the regime.
        cfg.errors = crate::errors::ErrorConfig::none();
        cfg.stress = Some(StressWindow {
            from_day: 1,
            to_day: 1,
            params: StressParams::default(),
        });
        let ds = MarketGenerator::new(cfg).generate();
        // Measure realised quote-mid vol per day for stock 0.
        let day_vol = |d: &crate::dataset::DayData| -> f64 {
            let mids: Vec<f64> = d
                .for_symbol(crate::symbol::Symbol(0))
                .map(|q| q.midpoint())
                .collect();
            let rets: Vec<f64> = mids.windows(2).map(|w| (w[1] / w[0]).ln()).collect();
            let m = rets.iter().sum::<f64>() / rets.len() as f64;
            (rets.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / rets.len() as f64).sqrt()
        };
        let v0 = day_vol(&ds.days[0]);
        let v1 = day_vol(&ds.days[1]);
        let v2 = day_vol(&ds.days[2]);
        assert!(v1 > 1.5 * v0, "stressed day 1 vol {v1} vs calm {v0}");
        assert!(v1 > 1.5 * v2, "stressed day 1 vol {v1} vs calm {v2}");
    }

    #[test]
    fn prices_stay_positive_and_finite() {
        let mut model = small_model(5, 20.0);
        let mut rng = MarketRng::seed_from(77);
        for _ in 0..3 {
            let day = model.simulate_day(&mut rng);
            for stock in 0..5 {
                for &p in day.series(stock) {
                    assert!(p.is_finite() && p > 0.0);
                }
            }
        }
    }
}
