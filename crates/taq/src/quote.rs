//! The quote record — the row format of Table II.
//!
//! Prices are stored in integer *cents* (the post-2001 US tick size), which
//! keeps the stream compact and exactly representable; derived analytics
//! (midpoints, returns) convert to `f64` at the edge.

use serde::{Deserialize, Serialize};

use crate::symbol::Symbol;
use crate::time::Timestamp;

/// One bid-ask quote, as in the NYSE TAQ consolidated quote feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// Quote time.
    pub ts: Timestamp,
    /// Interned stock symbol.
    pub symbol: Symbol,
    /// Bid price in cents.
    pub bid_cents: u32,
    /// Ask price in cents.
    pub ask_cents: u32,
    /// Bid size (round lots).
    pub bid_size: u16,
    /// Ask size (round lots).
    pub ask_size: u16,
}

impl Quote {
    /// Bid price in dollars.
    #[inline]
    pub fn bid(&self) -> f64 {
        self.bid_cents as f64 / 100.0
    }

    /// Ask price in dollars.
    #[inline]
    pub fn ask(&self) -> f64 {
        self.ask_cents as f64 / 100.0
    }

    /// Bid-ask midpoint (BAM) in dollars — the paper's price approximation:
    /// "we use the bid-ask midpoint (BAM) as an approximation to the stock
    /// price ... especially useful for stocks which trade infrequently."
    #[inline]
    pub fn midpoint(&self) -> f64 {
        (self.bid_cents as f64 + self.ask_cents as f64) / 200.0
    }

    /// Quoted spread in dollars (can be negative for crossed quotes, which
    /// occur in raw feeds and are grist for the cleaning filter).
    #[inline]
    pub fn spread(&self) -> f64 {
        (self.ask_cents as f64 - self.bid_cents as f64) / 100.0
    }

    /// Plausibility check used as a cheap pre-filter: positive prices and
    /// an uncrossed, unlocked book.
    #[inline]
    pub fn is_well_formed(&self) -> bool {
        self.bid_cents > 0 && self.ask_cents > self.bid_cents
    }
}

impl wire::Codec for Quote {
    fn encode(&self, w: &mut wire::Writer) {
        self.ts.encode(w);
        self.symbol.encode(w);
        self.bid_cents.encode(w);
        self.ask_cents.encode(w);
        self.bid_size.encode(w);
        self.ask_size.encode(w);
    }

    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        use wire::Codec;
        Ok(Quote {
            ts: Codec::decode(r)?,
            symbol: Codec::decode(r)?,
            bid_cents: Codec::decode(r)?,
            ask_cents: Codec::decode(r)?,
            bid_size: Codec::decode(r)?,
            ask_size: Codec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(bid: u32, ask: u32) -> Quote {
        Quote {
            ts: Timestamp::new(0, 4_000),
            symbol: Symbol(0),
            bid_cents: bid,
            ask_cents: ask,
            bid_size: 3,
            ask_size: 3,
        }
    }

    #[test]
    fn table_ii_first_row_values() {
        // NVDA 16.38 / 20.10 from Table II (a suspiciously wide quote —
        // exactly the kind of raw-data artefact the paper warns about).
        let quote = q(1638, 2010);
        assert!((quote.bid() - 16.38).abs() < 1e-12);
        assert!((quote.ask() - 20.10).abs() < 1e-12);
        assert!((quote.midpoint() - 18.24).abs() < 1e-12);
        assert!((quote.spread() - 3.72).abs() < 1e-12);
        assert!(quote.is_well_formed());
    }

    #[test]
    fn midpoint_is_exact_for_half_cents() {
        let quote = q(1001, 1002);
        assert!((quote.midpoint() - 10.015).abs() < 1e-12);
    }

    #[test]
    fn malformed_quotes_detected() {
        assert!(!q(0, 100).is_well_formed(), "zero bid");
        assert!(!q(100, 100).is_well_formed(), "locked");
        assert!(!q(101, 100).is_well_formed(), "crossed");
        assert!(q(100, 101).is_well_formed());
    }
}
