//! Synthetic Trade-and-Quote (TAQ) market-data substrate.
//!
//! The paper backtests on NYSE TAQ bid-ask data for 61 highly liquid US
//! stocks over March 2008. That dataset is proprietary (and >50 GB per day
//! uncompressed), so this crate builds the closest synthetic equivalent that
//! exercises the same code paths:
//!
//! * [`symbol`] — interned stock symbols and the 61-name liquid-stock roster
//!   used by default (the tickers the paper names — NVDA, ORCL, SLB, TWX,
//!   BK, the Exxon/Chevron-style fundamental pairs — plus peers).
//! * [`time`] — the trading clock: a 09:30–16:00 session is exactly 23 400
//!   seconds, so `Δs = 30 s` gives 780 intervals, matching the paper's
//!   arithmetic.
//! * [`quote`] — the quote record of Table II (timestamp, symbol, bid/ask
//!   price and size) plus derived quantities (bid-ask midpoint, spread).
//! * [`rng`] — deterministic normal/exponential sampling (Box–Muller and
//!   inverse-CDF on top of `rand`), so the whole market is reproducible
//!   from a seed.
//! * [`model`] — the latent price model: sector-block-correlated log-price
//!   diffusions with injected *divergence episodes* (a transient
//!   single-name price pulse that later retraces — the co-movement
//!   breakdown/recovery cycle the strategy trades).
//! * [`errors`] — the data-quality gremlins the paper highlights: test
//!   quotes from electronic systems, fat-finger errors, far-out limit
//!   orders, stale repeats.
//! * [`generator`] — assembles model + microstructure + errors into a
//!   Poisson quote stream per stock per day.
//! * [`dataset`] — in-memory tick datasets with per-symbol and per-day
//!   views.
//! * [`io`] — Table-II-style CSV and a compact binary codec.

pub mod dataset;
pub mod errors;
pub mod generator;
pub mod io;
pub mod model;
pub mod quote;
pub mod rng;
pub mod symbol;
pub mod time;

pub use dataset::{DayData, TickDataset};
pub use errors::{
    apply_stream_faults, ConfigError, CorruptionBurst, DuplicationBurst, ErrorConfig, HaltWindow,
    OutageWindow, ReorderWindow, StreamFaultLog, StreamFaultPlan,
};
pub use generator::{MarketConfig, MarketGenerator};
pub use quote::Quote;
pub use symbol::{Symbol, SymbolTable};
pub use time::{Timestamp, TradingCalendar, SECONDS_PER_SESSION};
