//! In-memory tick datasets.
//!
//! A [`DayData`] is one trading day's time-sorted quote tape plus a
//! per-symbol index (the pipeline fans quotes out by symbol) and the
//! ground-truth divergence episodes when the day was synthesised.
//! A [`TickDataset`] is a month (or any span) of days sharing one symbol
//! table.

use crate::model::Episode;
use crate::quote::Quote;
use crate::symbol::{Symbol, SymbolTable};

/// One trading day of quotes.
#[derive(Debug, Clone)]
pub struct DayData {
    /// Trading-day index.
    pub day: u16,
    quotes: Vec<Quote>,
    by_symbol: Vec<Vec<u32>>,
    /// Ground-truth divergence episodes (empty when loaded from a file).
    pub episodes: Vec<Episode>,
}

impl DayData {
    /// Build from a quote tape. Quotes are sorted by time (stable on
    /// symbol) if not already sorted.
    pub fn new(day: u16, mut quotes: Vec<Quote>, n_symbols: usize, episodes: Vec<Episode>) -> Self {
        if !quotes.windows(2).all(|w| w[0].ts <= w[1].ts) {
            quotes.sort_by_key(|q| (q.ts, q.symbol));
        }
        let mut by_symbol = vec![Vec::new(); n_symbols];
        for (k, q) in quotes.iter().enumerate() {
            by_symbol[q.symbol.index()].push(k as u32);
        }
        DayData {
            day,
            quotes,
            by_symbol,
            episodes,
        }
    }

    /// The full time-sorted tape.
    pub fn quotes(&self) -> &[Quote] {
        &self.quotes
    }

    /// Number of quotes in the day.
    pub fn len(&self) -> usize {
        self.quotes.len()
    }

    /// True if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.quotes.is_empty()
    }

    /// Quotes for one symbol, in time order.
    pub fn for_symbol(&self, sym: Symbol) -> impl Iterator<Item = &Quote> + '_ {
        self.by_symbol[sym.index()]
            .iter()
            .map(move |&k| &self.quotes[k as usize])
    }

    /// Quote count for one symbol.
    pub fn count_for(&self, sym: Symbol) -> usize {
        self.by_symbol[sym.index()].len()
    }
}

/// A span of trading days over a fixed universe.
#[derive(Debug, Clone)]
pub struct TickDataset {
    /// The symbol universe.
    pub symbols: SymbolTable,
    /// Days in chronological order.
    pub days: Vec<DayData>,
}

impl TickDataset {
    /// Create an empty dataset over a universe.
    pub fn new(symbols: SymbolTable) -> Self {
        TickDataset {
            symbols,
            days: Vec::new(),
        }
    }

    /// Universe size.
    pub fn n_stocks(&self) -> usize {
        self.symbols.len()
    }

    /// Number of days held.
    pub fn n_days(&self) -> usize {
        self.days.len()
    }

    /// Total quotes across all days.
    pub fn total_quotes(&self) -> usize {
        self.days.iter().map(|d| d.len()).sum()
    }

    /// Number of unordered pairs in the universe.
    pub fn n_pairs(&self) -> usize {
        let n = self.n_stocks();
        n * (n - 1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn q(millis: u32, sym: u16) -> Quote {
        Quote {
            ts: Timestamp::new(0, millis),
            symbol: Symbol(sym),
            bid_cents: 1000,
            ask_cents: 1002,
            bid_size: 1,
            ask_size: 1,
        }
    }

    #[test]
    fn day_sorts_unsorted_tape() {
        let day = DayData::new(0, vec![q(500, 1), q(100, 0), q(300, 1)], 2, vec![]);
        let times: Vec<u32> = day.quotes().iter().map(|x| x.ts.millis).collect();
        assert_eq!(times, vec![100, 300, 500]);
    }

    #[test]
    fn per_symbol_views() {
        let day = DayData::new(
            0,
            vec![q(100, 0), q(200, 1), q(300, 0), q(400, 1), q(500, 0)],
            3,
            vec![],
        );
        assert_eq!(day.count_for(Symbol(0)), 3);
        assert_eq!(day.count_for(Symbol(1)), 2);
        assert_eq!(day.count_for(Symbol(2)), 0);
        let s0: Vec<u32> = day.for_symbol(Symbol(0)).map(|x| x.ts.millis).collect();
        assert_eq!(s0, vec![100, 300, 500]);
    }

    #[test]
    fn dataset_accounting() {
        let mut ds = TickDataset::new(SymbolTable::synthetic(4));
        assert_eq!(ds.n_pairs(), 6);
        ds.days
            .push(DayData::new(0, vec![q(1, 0), q(2, 1)], 4, vec![]));
        ds.days.push(DayData::new(1, vec![q(3, 2)], 4, vec![]));
        assert_eq!(ds.n_days(), 2);
        assert_eq!(ds.total_quotes(), 3);
    }
}
