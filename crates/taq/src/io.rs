//! Tick-data I/O: Table-II-style CSV and a compact binary codec.
//!
//! The CSV form mirrors the paper's Table II (timestamp, symbol, bid price,
//! ask price, bid size, ask size) and is the human-inspectable interchange
//! format; the binary form (via `bytes`) is what a 50-GB-per-day feed would
//! actually be stored in — 16 bytes per quote, ~20x smaller than the text.

use std::io::{self, BufRead, Write};

use bytes::{Buf, BufMut, BytesMut};

use crate::dataset::DayData;
use crate::quote::Quote;
use crate::symbol::{Symbol, SymbolTable};
use crate::time::Timestamp;

/// CSV header matching Table II's columns.
pub const CSV_HEADER: &str = "Timestamp,Symbol,BidPrice,AskPrice,BidSize,AskSize";

/// Write a day of quotes as CSV (with header).
pub fn write_csv<W: Write>(day: &DayData, symbols: &SymbolTable, out: &mut W) -> io::Result<()> {
    writeln!(out, "{CSV_HEADER}")?;
    for q in day.quotes() {
        writeln!(
            out,
            "{},{},{:.2},{:.2},{},{}",
            q.ts.wall_clock(),
            symbols.name(q.symbol),
            q.bid(),
            q.ask(),
            q.bid_size,
            q.ask_size
        )?;
    }
    Ok(())
}

/// Error from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed row, with its line number (1-based) and reason.
    Parse(usize, String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse(line, why) => write!(f, "line {line}: {why}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Read a day of quotes from CSV. Unknown symbols are interned into
/// `symbols`. `day` stamps the parsed timestamps.
pub fn read_csv<R: BufRead>(
    day: u16,
    symbols: &mut SymbolTable,
    input: R,
) -> Result<DayData, CsvError> {
    let mut quotes = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || lineno == 0 && line.starts_with("Timestamp") {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(CsvError::Parse(
                lineno + 1,
                format!("expected 6 fields, got {}", fields.len()),
            ));
        }
        let wall: Vec<&str> = fields[0].split(':').collect();
        if wall.len() != 3 {
            return Err(CsvError::Parse(lineno + 1, "bad timestamp".into()));
        }
        let parse_u32 = |s: &str, what: &str, lineno: usize| -> Result<u32, CsvError> {
            s.parse::<u32>()
                .map_err(|_| CsvError::Parse(lineno + 1, format!("bad {what}: {s}")))
        };
        let h = parse_u32(wall[0], "hour", lineno)?;
        let m = parse_u32(wall[1], "minute", lineno)?;
        let s = parse_u32(wall[2], "second", lineno)?;
        let since_open = (h * 3600 + m * 60 + s)
            .checked_sub(crate::time::OPEN_SECONDS_SINCE_MIDNIGHT)
            .ok_or_else(|| CsvError::Parse(lineno + 1, "timestamp before open".into()))?;
        let parse_price = |s: &str, lineno: usize| -> Result<u32, CsvError> {
            let v: f64 = s
                .parse()
                .map_err(|_| CsvError::Parse(lineno + 1, format!("bad price: {s}")))?;
            Ok((v * 100.0).round() as u32)
        };
        quotes.push(Quote {
            ts: Timestamp::new(day, since_open * 1000),
            symbol: symbols.intern(fields[1]),
            bid_cents: parse_price(fields[2], lineno)?,
            ask_cents: parse_price(fields[3], lineno)?,
            bid_size: parse_u32(fields[4], "bid size", lineno)? as u16,
            ask_size: parse_u32(fields[5], "ask size", lineno)? as u16,
        });
    }
    Ok(DayData::new(day, quotes, symbols.len(), Vec::new()))
}

/// Binary codec magic bytes ("TAQ1").
pub const BINARY_MAGIC: u32 = 0x5441_5131;

/// Encode a day of quotes into the compact binary form.
pub fn encode_binary(day: &DayData) -> BytesMut {
    let mut buf = BytesMut::with_capacity(16 + day.len() * 16);
    buf.put_u32(BINARY_MAGIC);
    buf.put_u16(day.day);
    buf.put_u16(0); // reserved
    buf.put_u64(day.len() as u64);
    for q in day.quotes() {
        buf.put_u32(q.ts.millis);
        buf.put_u16(q.symbol.0);
        buf.put_u32(q.bid_cents);
        buf.put_u32(q.ask_cents);
        buf.put_u16(q.bid_size);
        buf.put_u16(q.ask_size);
    }
    buf
}

/// Binary decoding error.
#[derive(Debug, PartialEq, Eq)]
pub enum BinaryError {
    /// Wrong magic bytes.
    BadMagic,
    /// Buffer ended early.
    Truncated,
}

impl std::fmt::Display for BinaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryError::BadMagic => write!(f, "bad magic"),
            BinaryError::Truncated => write!(f, "truncated buffer"),
        }
    }
}

impl std::error::Error for BinaryError {}

/// Decode a day of quotes from the binary form. `n_symbols` sizes the
/// per-symbol index of the resulting [`DayData`].
pub fn decode_binary(mut buf: &[u8], n_symbols: usize) -> Result<DayData, BinaryError> {
    if buf.remaining() < 16 {
        return Err(BinaryError::Truncated);
    }
    if buf.get_u32() != BINARY_MAGIC {
        return Err(BinaryError::BadMagic);
    }
    let day = buf.get_u16();
    let _reserved = buf.get_u16();
    let count = buf.get_u64() as usize;
    if buf.remaining() < count * 18 {
        return Err(BinaryError::Truncated);
    }
    let mut quotes = Vec::with_capacity(count);
    for _ in 0..count {
        quotes.push(Quote {
            ts: Timestamp::new(day, buf.get_u32()),
            symbol: Symbol(buf.get_u16()),
            bid_cents: buf.get_u32(),
            ask_cents: buf.get_u32(),
            bid_size: buf.get_u16(),
            ask_size: buf.get_u16(),
        });
    }
    Ok(DayData::new(day, quotes, n_symbols, Vec::new()))
}

/// Write a day of quotes to a binary file.
pub fn write_binary_file(day: &DayData, path: &std::path::Path) -> io::Result<()> {
    std::fs::write(path, encode_binary(day))
}

/// Read a day of quotes from a binary file.
pub fn read_binary_file(
    path: &std::path::Path,
    n_symbols: usize,
) -> Result<DayData, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path)?;
    Ok(decode_binary(&bytes, n_symbols)?)
}

/// Persist a whole dataset to a directory: `symbols.txt` (one ticker per
/// line, interning order) plus `day_NNN.taq` binary files. This is the
/// on-disk layout the File Collector (Figure 1's "Custom TAQ Files"
/// adapter) replays from.
pub fn save_dataset(ds: &crate::dataset::TickDataset, dir: &std::path::Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("symbols.txt"), ds.symbols.names().join("\n"))?;
    for day in &ds.days {
        write_binary_file(day, &dir.join(format!("day_{:03}.taq", day.day)))?;
    }
    Ok(())
}

/// Load a dataset saved by [`save_dataset`]. Days load in filename order.
pub fn load_dataset(
    dir: &std::path::Path,
) -> Result<crate::dataset::TickDataset, Box<dyn std::error::Error>> {
    let names = std::fs::read_to_string(dir.join("symbols.txt"))?;
    let mut symbols = SymbolTable::new();
    for name in names.lines().filter(|l| !l.is_empty()) {
        symbols.intern(name);
    }
    let mut day_files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|e| e == "taq")
                && p.file_name()
                    .and_then(|f| f.to_str())
                    .is_some_and(|f| f.starts_with("day_"))
        })
        .collect();
    day_files.sort();
    let n = symbols.len();
    let mut ds = crate::dataset::TickDataset::new(symbols);
    for path in day_files {
        ds.days.push(read_binary_file(&path, n)?);
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{MarketConfig, MarketGenerator};

    fn sample_day() -> (DayData, SymbolTable) {
        let mut cfg = MarketConfig::small(3, 1, 9);
        cfg.micro.quote_rate_hz = 0.01;
        let mut g = MarketGenerator::new(cfg);
        let table = g.symbols().clone();
        (g.next_day().unwrap(), table)
    }

    #[test]
    fn csv_round_trip() {
        let (day, table) = sample_day();
        let mut out = Vec::new();
        write_csv(&day, &table, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with(CSV_HEADER));

        let mut table2 = SymbolTable::new();
        let parsed = read_csv(0, &mut table2, text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), day.len());
        // Millisecond precision is lost in the HH:MM:SS text form; prices,
        // sizes, symbols and second-level times must survive.
        for (a, b) in day.quotes().iter().zip(parsed.quotes()) {
            assert_eq!(a.ts.seconds(), b.ts.seconds());
            assert_eq!(a.bid_cents, b.bid_cents);
            assert_eq!(a.ask_cents, b.ask_cents);
            assert_eq!(a.bid_size, b.bid_size);
            assert_eq!(a.ask_size, b.ask_size);
            assert_eq!(table.name(a.symbol), table2.name(b.symbol));
        }
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        let mut t = SymbolTable::new();
        let bad = "09:30:00,MSFT,30.00,30.02,1\n";
        assert!(matches!(
            read_csv(0, &mut t, bad.as_bytes()),
            Err(CsvError::Parse(1, _))
        ));
        let bad_time = "xx:30:00,MSFT,30.00,30.02,1,1\n";
        assert!(read_csv(0, &mut t, bad_time.as_bytes()).is_err());
        let before_open = "09:29:59,MSFT,30.00,30.02,1,1\n";
        assert!(read_csv(0, &mut t, before_open.as_bytes()).is_err());
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let (day, table) = sample_day();
        let buf = encode_binary(&day);
        let parsed = decode_binary(&buf, table.len()).unwrap();
        assert_eq!(parsed.day, day.day);
        assert_eq!(parsed.quotes(), day.quotes());
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(matches!(
            decode_binary(&[1, 2, 3], 1),
            Err(BinaryError::Truncated)
        ));
        let mut buf = BytesMut::new();
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u16(0);
        buf.put_u16(0);
        buf.put_u64(0);
        assert!(matches!(decode_binary(&buf, 1), Err(BinaryError::BadMagic)));
        // Claimed count larger than the payload.
        let mut buf = BytesMut::new();
        buf.put_u32(BINARY_MAGIC);
        buf.put_u16(0);
        buf.put_u16(0);
        buf.put_u64(100);
        assert!(matches!(
            decode_binary(&buf, 1),
            Err(BinaryError::Truncated)
        ));
    }

    #[test]
    fn dataset_directory_round_trip() {
        let mut cfg = MarketConfig::small(3, 2, 77);
        cfg.micro.quote_rate_hz = 0.005;
        let ds = MarketGenerator::new(cfg).generate();

        let dir = std::env::temp_dir().join(format!("taq_io_test_{}", std::process::id()));
        save_dataset(&ds, &dir).unwrap();
        let loaded = load_dataset(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(loaded.n_stocks(), ds.n_stocks());
        assert_eq!(loaded.n_days(), ds.n_days());
        assert_eq!(loaded.symbols.names(), ds.symbols.names());
        for (a, b) in ds.days.iter().zip(&loaded.days) {
            assert_eq!(a.day, b.day);
            assert_eq!(a.quotes(), b.quotes());
        }
    }

    #[test]
    fn binary_file_round_trip() {
        let (day, table) = sample_day();
        let path = std::env::temp_dir().join(format!("taq_day_test_{}.taq", std::process::id()));
        write_binary_file(&day, &path).unwrap();
        let loaded = read_binary_file(&path, table.len()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.quotes(), day.quotes());
    }

    #[test]
    fn binary_is_compact() {
        let (day, _) = sample_day();
        let buf = encode_binary(&day);
        assert_eq!(buf.len(), 16 + day.len() * 18);
    }
}
