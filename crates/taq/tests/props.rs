//! Property-based tests for the market-data substrate.

use proptest::prelude::*;

use taq::dataset::DayData;
use taq::io;
use taq::quote::Quote;
use taq::symbol::{Symbol, SymbolTable};
use taq::time::{Timestamp, MILLIS_PER_SESSION};

prop_compose! {
    fn arb_quote()(
        millis in 0u32..MILLIS_PER_SESSION,
        sym in 0u16..8,
        bid in 1u32..99_000,
        spread in 1u32..500,
        bid_size in 1u16..500,
        ask_size in 1u16..500,
    ) -> Quote {
        Quote {
            ts: Timestamp::new(0, millis),
            symbol: Symbol(sym),
            bid_cents: bid,
            ask_cents: bid + spread,
            bid_size,
            ask_size,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_round_trip_arbitrary_tapes(
        quotes in proptest::collection::vec(arb_quote(), 0..200),
    ) {
        let day = DayData::new(0, quotes, 8, vec![]);
        let encoded = io::encode_binary(&day);
        let decoded = io::decode_binary(&encoded, 8).unwrap();
        prop_assert_eq!(decoded.quotes(), day.quotes());
    }

    #[test]
    fn csv_round_trip_preserves_seconds_and_prices(
        quotes in proptest::collection::vec(arb_quote(), 1..100),
    ) {
        let table = SymbolTable::synthetic(8);
        let day = DayData::new(0, quotes, 8, vec![]);
        let mut text = Vec::new();
        io::write_csv(&day, &table, &mut text).unwrap();
        let mut table2 = SymbolTable::new();
        let parsed = io::read_csv(0, &mut table2, text.as_slice()).unwrap();
        prop_assert_eq!(parsed.len(), day.len());
        for (a, b) in day.quotes().iter().zip(parsed.quotes()) {
            prop_assert_eq!(a.ts.seconds(), b.ts.seconds());
            prop_assert_eq!(a.bid_cents, b.bid_cents);
            prop_assert_eq!(a.ask_cents, b.ask_cents);
        }
    }

    #[test]
    fn day_index_partitions_the_tape(
        quotes in proptest::collection::vec(arb_quote(), 0..150),
    ) {
        let day = DayData::new(0, quotes, 8, vec![]);
        let total: usize = (0..8).map(|s| day.count_for(Symbol(s))).sum();
        prop_assert_eq!(total, day.len());
        // Per-symbol views are time-ordered and correctly labelled.
        for s in 0..8u16 {
            let mut prev = None;
            for q in day.for_symbol(Symbol(s)) {
                prop_assert_eq!(q.symbol, Symbol(s));
                if let Some(p) = prev {
                    prop_assert!(q.ts >= p);
                }
                prev = Some(q.ts);
            }
        }
    }

    #[test]
    fn interval_assignment_is_consistent(
        millis in 0u32..MILLIS_PER_SESSION,
        dt in prop::sample::select(vec![15u32, 30, 60, 300]),
    ) {
        let ts = Timestamp::new(0, millis);
        let s = ts.interval(dt);
        prop_assert!(s < (taq::time::SECONDS_PER_SESSION / dt) as usize);
        // The interval's second range contains the timestamp.
        prop_assert!(ts.seconds() >= s as u32 * dt);
        prop_assert!(ts.seconds() < (s as u32 + 1) * dt);
    }

    #[test]
    fn midpoint_between_bid_and_ask(q in arb_quote()) {
        prop_assert!(q.midpoint() >= q.bid());
        prop_assert!(q.midpoint() <= q.ask());
        prop_assert!(q.is_well_formed());
        prop_assert!(q.spread() > 0.0);
    }
}
