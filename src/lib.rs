//! # pairtrade
//!
//! A full reproduction of *"A High Performance Pair Trading Application"*
//! (Wang, Rostoker & Wagner, IPPS 2009): a market-wide, brute-force
//! pair-trading backtester built on a parallel stream-processing analytics
//! platform.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`stats`] — correlation estimators (Pearson, Maronna, Quadrant,
//!   Combined), descriptive statistics, PSD repair, and the rayon-parallel
//!   all-pairs correlation engine.
//! * [`taq`] — the synthetic TAQ market-data substrate.
//! * [`timeseries`] — BAM sampling, OHLC bars, log returns, cleaning
//!   filters, rolling statistics.
//! * [`marketminer`] — the DAG stream-processing platform of Figure 1,
//!   including the `shard` module's MPI-flavoured messaging types and the
//!   multi-process shard runner.
//! * [`pairtrade_core`] — the canonical pair-trading strategy (Table I,
//!   Section III).
//! * [`backtest`] — the three computational approaches, the evaluation
//!   metrics (eqs. 1–9), and the Tables III–V / Figure 2 reports.
//!
//! ## Quickstart
//!
//! ```
//! use backtest::runner::{Experiment, ExperimentConfig};
//! use backtest::{aggregate, report};
//!
//! // A small synthetic market: 6 stocks, 2 trading days.
//! let mut cfg = ExperimentConfig::small(6, 2, 42);
//! // Trim the 42-vector grid to one treatment for the doc test.
//! cfg.params.truncate(3);
//! let results = Experiment::new(cfg).run();
//! let treatments = aggregate::all_treatments(&results);
//! let table = report::TableReport::build(
//!     report::Measure::CumulativeReturn,
//!     &treatments,
//! );
//! println!("{}", table.render());
//! ```

pub use backtest;
pub use marketminer;
pub use pairtrade_core;
pub use stats;
pub use taq;
pub use timeseries;
