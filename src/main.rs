//! `pairtrade` — the command-line face of the reproduction.
//!
//! ```text
//! pairtrade generate  --stocks 8 --days 2 --seed 7 --out /tmp/market
//! pairtrade backtest  [--dataset DIR | --stocks N --days D --seed S]
//!                     [--ctype pearson|maronna|combined|quadrant|spearman]
//!                     [--d 0.01] [--m 100] [--costs]
//! pairtrade pipeline  --stocks 12 --seed 42
//! pairtrade scaling
//! ```

use std::path::PathBuf;

use backtest::approach::{run_day, Approach};
use backtest::metrics::{self, WinLoss};
use backtest::scaling::Extrapolation;
use pairtrade_core::exec::ExecutionConfig;
use pairtrade_core::params::StrategyParams;
use stats::correlation::CorrType;
use taq::dataset::TickDataset;
use taq::generator::{MarketConfig, MarketGenerator};
use timeseries::bam::PriceGrid;
use timeseries::clean::CleanConfig;
use timeseries::returns::ReturnsPanel;

fn usage() -> ! {
    eprintln!(
        "pairtrade — market-wide pair-trading backtester (IPPS 2009 reproduction)

USAGE:
  pairtrade generate --out DIR [--stocks N] [--days D] [--seed S]
      Generate a synthetic TAQ dataset and save it to DIR.

  pairtrade backtest [--dataset DIR | --stocks N --days D --seed S]
                     [--ctype pearson|maronna|combined|quadrant|spearman]
                     [--d PCT] [--m M] [--costs]
      Backtest the canonical strategy over all pairs.

  pairtrade pipeline [--stocks N] [--seed S]
      Run the Figure-1 streaming pipeline over one synthetic day.

  pairtrade scaling
      Print the paper's Section-IV scaling arithmetic.

Defaults: 8 stocks, 2 days, seed 2008, Pearson, d = 0.01%, M = 100."
    );
    std::process::exit(2)
}

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut k = 0;
        while k < argv.len() {
            let a = &argv[k];
            if !a.starts_with("--") {
                eprintln!("unexpected argument: {a}");
                usage();
            }
            let key = a.trim_start_matches("--").to_string();
            let value = if k + 1 < argv.len() && !argv[k + 1].starts_with("--") {
                k += 1;
                Some(argv[k].clone())
            } else {
                None
            };
            flags.push((key, value));
            k += 1;
        }
        Args { flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for --{key}: {v}");
                usage()
            }),
        }
    }
}

fn market_config(args: &Args) -> MarketConfig {
    MarketConfig::small(
        args.num("stocks", 8usize),
        args.num("days", 2u16),
        args.num("seed", 2008u64),
    )
}

fn cmd_generate(args: &Args) {
    let Some(out) = args.get("out") else {
        eprintln!("generate requires --out DIR");
        usage()
    };
    let cfg = market_config(args);
    let label = format!(
        "{} stocks, {} days, seed {}",
        cfg.n_stocks, cfg.days, cfg.seed
    );
    let ds = MarketGenerator::new(cfg).generate();
    let dir = PathBuf::from(out);
    taq::io::save_dataset(&ds, &dir).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", dir.display());
        std::process::exit(1)
    });
    println!(
        "wrote {} ({label}): {} quotes across {} day files + symbols.txt",
        dir.display(),
        ds.total_quotes(),
        ds.n_days()
    );
}

fn load_or_generate(args: &Args) -> TickDataset {
    if let Some(dir) = args.get("dataset") {
        taq::io::load_dataset(std::path::Path::new(dir)).unwrap_or_else(|e| {
            eprintln!("cannot load {dir}: {e}");
            std::process::exit(1)
        })
    } else {
        MarketGenerator::new(market_config(args)).generate()
    }
}

fn cmd_backtest(args: &Args) {
    let ds = load_or_generate(args);
    let ctype: CorrType = args
        .get("ctype")
        .map(|v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                usage()
            })
        })
        .unwrap_or(CorrType::Pearson);
    let params = StrategyParams {
        ctype,
        divergence: args.num("d", 0.01f64) / 100.0,
        corr_window: args.num("m", 100usize),
        ..StrategyParams::paper_default()
    };
    params.validate().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let exec = if args.has("costs") {
        ExecutionConfig::with_costs()
    } else {
        ExecutionConfig::paper()
    };

    println!(
        "backtest: {} stocks -> {} pairs, {} days, {}",
        ds.n_stocks(),
        ds.n_pairs(),
        ds.n_days(),
        params.label()
    );
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>12} {:>12}",
        "day", "trades", "wins", "losses", "day return", "PnL ($)"
    );
    let mut all_daily = Vec::new();
    let mut wl_total = WinLoss::default();
    let mut pnl_total = 0.0;
    for day in &ds.days {
        let grid = PriceGrid::from_day(
            day,
            ds.n_stocks(),
            params.dt_seconds,
            CleanConfig::default(),
        );
        let panel = ReturnsPanel::from_grid(&grid);
        let run = run_day(Approach::Integrated, &grid, &panel, &params, &exec);
        let trades: Vec<_> = run.trades.into_iter().flatten().collect();
        let rets: Vec<f64> = trades.iter().map(|t| t.ret).collect();
        let wl = WinLoss::of(&rets);
        let day_ret = metrics::daily_cumulative(&rets);
        let pnl: f64 = trades.iter().map(|t| t.pnl).sum();
        println!(
            "{:<6} {:>8} {:>8} {:>8} {:>11.4}% {:>12.2}",
            day.day,
            trades.len(),
            wl.wins,
            wl.losses,
            day_ret * 100.0,
            pnl
        );
        all_daily.push(day_ret);
        wl_total = wl_total.merge(wl);
        pnl_total += pnl;
    }
    println!(
        "total: compounded {:+.4}%, W/L {:.3}, PnL ${:.2}, max daily drawdown {:.4}%",
        metrics::total_cumulative(&all_daily) * 100.0,
        wl_total.ratio(),
        pnl_total,
        metrics::max_drawdown_daily(&all_daily) * 100.0
    );
}

fn cmd_pipeline(args: &Args) {
    let mut cfg = market_config(args);
    cfg.days = 1;
    let n = cfg.n_stocks;
    let mut generator = MarketGenerator::new(cfg);
    let day = generator.next_day().expect("one day");
    let quotes = day.len();
    let params = StrategyParams::paper_default();
    let pipeline_cfg = marketminer::pipeline::Fig1Config::new(n, params);
    let start = std::time::Instant::now();
    let out = marketminer::pipeline::run_fig1_pipeline(day, &pipeline_cfg).unwrap_or_else(|e| {
        eprintln!("pipeline error: {e}");
        std::process::exit(1)
    });
    println!(
        "Figure-1 pipeline: {} quotes -> {} trades, {} baskets ({} orders) in {:.2} s",
        quotes,
        out.trades.len(),
        out.baskets.len(),
        out.total_orders(),
        start.elapsed().as_secs_f64()
    );
}

fn cmd_scaling() {
    println!("{}", Extrapolation::paper_workload().render());
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "backtest" => cmd_backtest(&args),
        "pipeline" => cmd_pipeline(&args),
        "scaling" => cmd_scaling(),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command: {other}");
            usage()
        }
    }
}
