//! Offline stand-in for the subset of [proptest](https://docs.rs/proptest)
//! this workspace uses.
//!
//! The build container cannot reach crates.io, so the real proptest cannot
//! be fetched. This shim keeps the workspace's property tests running as
//! *deterministic randomized tests*: each `proptest!` test derives a fixed
//! RNG seed from its module path and name, samples `ProptestConfig::cases`
//! inputs from the declared strategies, and fails (with the case number and
//! seed) on the first counterexample.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the sampled inputs via
//!   `Debug`-free messages (the case index + seed reproduce it exactly).
//! * **Strategies are samplers.** `Strategy` is a plain trait with a
//!   `sample(&self, &mut TestRng)` method; ranges, `collection::vec`,
//!   `sample::select`, `any::<T>()` and `prop_compose!` cover everything the
//!   workspace declares.
//! * **Rejections** (`prop_assume!`) skip the case without retrying.

use std::ops::Range;

pub mod test_runner {
    //! The deterministic RNG behind every strategy.

    /// xoshiro256++ with a SplitMix64 seeder — small, fast, and good enough
    /// for test-input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from an arbitrary u64 via SplitMix64.
        pub fn seed_from(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Deterministic seed for a named test: FNV-1a of the name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self::seed_from(h)
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in [0, n). `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

use test_runner::TestRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!` failed: a genuine counterexample.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: skip, not a failure.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A sampler of test inputs.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

pub mod strategy {
    //! Strategy adapters.

    use super::{Strategy, TestRng};

    /// A strategy from a sampling closure — what `prop_compose!` builds.
    pub struct FnStrategy<F>(pub F);

    impl<V, F: Fn(&mut TestRng) -> V> Strategy for FnStrategy<F> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broad range; the real crate's any::<f64> includes
        // specials, which the workspace's tests never rely on.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<Index>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers: `select` and `Index`.

    use super::{Arbitrary, Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Choose uniformly from `options`.
    ///
    /// # Panics
    /// Panics (at sample time) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select from empty list");
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// An arbitrary index, scaled into a collection's bounds at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// This index projected into `[0, len)`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "index into empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_compose, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of the real crate's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Mirrors the real crate's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, ys in proptest::collection::vec(-1.0f64..1.0, 1..50)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                let mut rng = $crate::test_runner::TestRng::for_test(test_name);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property '{}' failed at case {}/{}: {}",
                                test_name, case + 1, config.cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure reports the counterexample
/// case instead of unwinding through the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Compose strategies into a named strategy-producing function, mirroring
/// the real crate's `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)($($arg:pat in $strat:expr),* $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn point()(x in -10.0f64..10.0, y in -10.0f64..10.0) -> (f64, f64) {
            (x, y)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            a in 3usize..9,
            b in -5i64..5,
            x in -1.5f64..1.5,
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((-1.5..1.5).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            xs in crate::collection::vec(0.0f64..1.0, 2..7),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn select_picks_from_options(
            dt in prop::sample::select(vec![15u32, 30, 60, 300]),
        ) {
            prop_assert!([15, 30, 60, 300].contains(&dt));
        }

        #[test]
        fn index_projects_into_bounds(ix in any::<prop::sample::Index>(), n in 1usize..20) {
            prop_assert!(ix.index(n) < n);
        }

        #[test]
        fn composed_strategies_work(p in point()) {
            prop_assert!(p.0.abs() <= 10.0 && p.1.abs() <= 10.0);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
