//! Offline stand-in for the subset of [crossbeam](https://docs.rs/crossbeam)
//! this workspace uses: `channel::{bounded, unbounded}` MPMC channels with
//! clonable senders *and* receivers, blocking sends on full bounded queues,
//! and disconnect semantics matching crossbeam's (send fails once every
//! receiver is gone; recv fails once every sender is gone and the queue has
//! drained).
//!
//! Built on `Mutex` + two `Condvar`s. Not as fast as the real crate's
//! lock-free queues, but semantically equivalent for the pipeline runtime,
//! the job farm and the MPI simulator.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        /// `None` = unbounded.
        cap: Option<usize>,
    }

    /// Error returned when sending into a channel with no receivers left.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned when receiving from an empty, sender-less channel.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error from [`Receiver::try_recv`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error from [`Receiver::recv_timeout`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum RecvTimeoutError {
        /// Deadline passed with no message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Sending half. Clonable; the channel disconnects for receivers when
    /// the last clone drops.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half. Clonable (MPMC); the channel disconnects for senders
    /// when the last clone drops.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// A bounded FIFO channel; `send` blocks while `cap` messages queue.
    /// A capacity of 0 is treated as 1 (the shim has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        /// Fails (returning the message) once all receivers are dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self.chan.cap.is_some_and(|cap| st.queue.len() >= cap);
                if !full {
                    st.queue.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self.chan.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Owning iterator over received messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_fifo_round_trip() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_backpressure_and_mpmc() {
        let (tx, rx) = bounded::<usize>(2);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for k in 0..50 {
                        tx.send(p * 1000 + k).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
    }
}
