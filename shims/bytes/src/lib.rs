//! Offline stand-in for the subset of [bytes](https://docs.rs/bytes) this
//! workspace uses: [`BytesMut`] as a growable byte buffer and the
//! [`Buf`]/[`BufMut`] traits with big-endian integer accessors (matching the
//! real crate's `put_u32`/`get_u32` defaults, so any tapes written by one
//! build decode in the other).

use std::ops::Deref;

/// Growable byte buffer; a thin wrapper over `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.vec
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.vec
    }
}

/// Write-side accessors (big-endian, as in the real crate).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side accessors (big-endian). Reads advance the cursor.
///
/// # Panics
/// The `get_*` methods panic when fewer than the requested bytes remain,
/// matching the real crate; guard with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read `N` bytes from the front, advancing.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }
    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }
    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }
    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow");
        let (head, rest) = self.split_at(N);
        *self = rest;
        head.try_into().expect("split_at guarantees length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        assert_eq!(buf.len(), 15);

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        assert_eq!(&buf[..], &[0, 0, 0, 1]);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
