//! No-op derive macros backing the offline `serde` shim.
//!
//! The workspace annotates message and config types with
//! `#[derive(Serialize, Deserialize)]` so they are wire-ready once the real
//! serde is available. In the offline build these derives expand to nothing:
//! no serializer exists to call them, so no impls are needed — the
//! attributes only have to parse.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
