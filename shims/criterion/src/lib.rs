//! Offline stand-in for the subset of [criterion](https://docs.rs/criterion)
//! this workspace's benches use.
//!
//! The build container cannot reach crates.io, so the real criterion cannot
//! be fetched. This shim keeps `cargo bench` working: every benchmark runs
//! with a short warmup, an adaptive iteration count targeting a fixed
//! measurement window, and prints `name ... time: <mean>` lines. There are
//! no statistical comparisons, plots, or saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(120);

/// Benchmark driver; hand one to each `fn bench_*(c: &mut Criterion)`.
#[derive(Debug, Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    /// Accept (and ignore) CLI arguments, mirroring the real API.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Set the per-benchmark sample count (accepted for compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&name.into(), &mut f);
    }

    /// Print the closing summary (a no-op in this shim).
    pub fn final_summary(&self) {}
}

/// Throughput declaration (accepted and ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare throughput (accepted for compatibility).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure given an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Conversion into a [`BenchmarkId`] (strings or ids).
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Measure `f`: warm up briefly, pick an iteration count that fills the
    /// measurement window, then report mean wall-clock time per iteration.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup, also yielding a first cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((MEASURE.as_secs_f64() / est_per_iter) as u64).clamp(1, 100_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.mean_ns = Some(elapsed * 1e9 / iters as f64);
    }

    /// Like [`Bencher::iter`], but each iteration consumes a fresh input
    /// built by `setup`, whose cost is excluded from the measurement by
    /// timing each routine invocation individually.
    pub fn iter_with_setup<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_busy = Duration::ZERO;
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            warm_busy += t.elapsed();
            warm_iters += 1;
        }
        let est_per_iter = (warm_busy.as_secs_f64() / warm_iters as f64).max(1e-9);
        let iters = ((MEASURE.as_secs_f64() / est_per_iter) as u64).clamp(1, 100_000_000);

        let mut busy = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            busy += t.elapsed();
        }
        self.mean_ns = Some(busy.as_secs_f64() * 1e9 / iters as f64);
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean_ns: None };
    f(&mut b);
    match b.mean_ns {
        Some(ns) => println!("{label:<60} time: {}", format_ns(ns)),
        None => println!("{label:<60} time: (no measurement)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: None };
        b.iter(|| std::hint::black_box(2u64 + 2));
        assert!(b.mean_ns.unwrap() > 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
    }
}
