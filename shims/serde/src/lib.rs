//! Offline stand-in for [serde](https://docs.rs/serde).
//!
//! The build container cannot reach crates.io, so the real serde cannot be
//! fetched. The workspace only uses serde as `#[derive(Serialize,
//! Deserialize)]` annotations (there is no serializer in the dependency
//! tree), so this shim provides marker traits and no-op derives: the
//! annotations keep compiling and the types stay documented as wire-ready,
//! without any codegen.

/// Marker for types annotated `#[derive(Serialize)]`.
///
/// The no-op derive does not implement this trait; nothing in the
/// workspace takes a `Serialize` bound.
pub trait Serialize {}

/// Marker for types annotated `#[derive(Deserialize)]`.
///
/// The no-op derive does not implement this trait; nothing in the
/// workspace takes a `Deserialize` bound.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
