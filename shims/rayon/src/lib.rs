//! Offline stand-in for the subset of [rayon](https://docs.rs/rayon) this
//! workspace uses.
//!
//! The build container has no access to crates.io, so the real rayon cannot
//! be fetched. This crate re-implements the API surface the workspace calls
//! — `into_par_iter` on ranges and vectors, `par_iter_mut`/`par_chunks_mut`
//! on slices, `map`/`enumerate`/`for_each`/`collect`, and
//! `ThreadPoolBuilder`/`ThreadPool::install` — on top of `std::thread::scope`.
//!
//! The model is rayon's *indexed producer*: every parallel iterator is a
//! splittable, ordered source. The driver splits the source into one
//! contiguous part per worker thread and concatenates results in order, so
//! output order (and therefore floating-point results) is identical at every
//! thread count — a property the workspace's determinism tests rely on.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]; 0 means
    /// "use the global default".
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Number of worker threads parallel drivers will use right now.
pub fn current_num_threads() -> usize {
    let cur = CURRENT_THREADS.with(|c| c.get());
    if cur == 0 {
        default_threads()
    } else {
        cur
    }
}

/// An ordered, splittable source of items — rayon's indexed-producer model.
pub trait Producer: Sized + Send {
    /// Item type produced.
    type Item: Send;
    /// Sequential iterator over this part.
    type IntoSeq: Iterator<Item = Self::Item>;

    /// Remaining number of items.
    fn len(&self) -> usize;
    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Consume this part sequentially.
    fn into_seq(self) -> Self::IntoSeq;
}

/// The parallel-iterator combinators available on every producer.
pub trait ParallelIterator: Producer {
    /// Map each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
    {
        Map { base: self, f }
    }

    /// Pair each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Run `f` on every item, in parallel across contiguous parts.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send + Clone,
    {
        drive_for_each(self, f);
    }

    /// Collect items, preserving source order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        drive_collect(self).into_iter().collect()
    }

    /// Sum the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        drive_collect(self).into_iter().sum()
    }
}

impl<P: Producer> ParallelIterator for P {}

/// Split a producer into at most `parts` contiguous pieces of near-equal
/// length.
fn split_even<P: Producer>(p: P, parts: usize) -> Vec<P> {
    let n = p.len();
    let parts = parts.clamp(1, n.max(1));
    let mut out = Vec::with_capacity(parts);
    let mut rest = p;
    for k in 0..parts {
        let remaining_parts = parts - k;
        let take = rest.len().div_ceil(remaining_parts);
        if remaining_parts == 1 || take >= rest.len() {
            out.push(rest);
            return out;
        }
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
    }
    out
}

fn drive_collect<P: Producer>(p: P) -> Vec<P::Item> {
    let threads = current_num_threads();
    if threads <= 1 || p.len() <= 1 {
        return p.into_seq().collect();
    }
    let parts = split_even(p, threads);
    let mut results: Vec<Vec<P::Item>> = Vec::with_capacity(parts.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| s.spawn(move || part.into_seq().collect::<Vec<_>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(results.iter().map(Vec::len).sum());
    for r in results {
        out.extend(r);
    }
    out
}

fn drive_for_each<P, F>(p: P, f: F)
where
    P: Producer,
    F: Fn(P::Item) + Sync + Send + Clone,
{
    let threads = current_num_threads();
    if threads <= 1 || p.len() <= 1 {
        for item in p.into_seq() {
            f(item);
        }
        return;
    }
    let parts = split_even(p, threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| {
                let f = f.clone();
                s.spawn(move || {
                    for item in part.into_seq() {
                        f(item);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("parallel worker panicked");
        }
    });
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over a `Range<usize>`.
pub struct RangeIter {
    range: Range<usize>,
}

impl Producer for RangeIter {
    type Item = usize;
    type IntoSeq = Range<usize>;

    fn len(&self) -> usize {
        self.range.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start + index;
        (
            RangeIter {
                range: self.range.start..mid,
            },
            RangeIter {
                range: mid..self.range.end,
            },
        )
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.range
    }
}

/// Parallel iterator over an owned `Vec<T>`.
pub struct VecIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> Producer for VecIter<T> {
    type Item = T;
    type IntoSeq = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.items.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, VecIter { items: tail })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.items.into_iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct IterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for IterMut<'a, T> {
    type Item = &'a mut T;
    type IntoSeq = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (IterMut { slice: a }, IterMut { slice: b })
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.slice.iter_mut()
    }
}

/// Parallel iterator over non-overlapping mutable chunks of a slice.
pub struct ChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    type IntoSeq = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(elems);
        (
            ChunksMut {
                slice: a,
                size: self.size,
            },
            ChunksMut {
                slice: b,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.slice.chunks_mut(self.size)
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> Producer for Map<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type IntoSeq = std::iter::Map<P::IntoSeq, F>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
    fn into_seq(self) -> Self::IntoSeq {
        self.base.into_seq().map(self.f)
    }
}

/// `enumerate` adapter (global indices survive splitting).
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    type IntoSeq = EnumerateSeq<P::IntoSeq>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }
    fn into_seq(self) -> Self::IntoSeq {
        EnumerateSeq {
            inner: self.base.into_seq(),
            next: self.offset,
        }
    }
}

/// Sequential side of [`Enumerate`].
pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let idx = self.next;
        self.next += 1;
        Some((idx, item))
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on slices (and, via deref, vectors).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator of `&mut T`.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
    /// Parallel iterator of non-overlapping `&mut [T]` chunks.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ChunksMut { slice: self, size }
    }
}

/// One-stop import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSliceMut};
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

/// Error from [`ThreadPoolBuilder::build`]. Never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A scoped thread-count override. Parallel drivers invoked inside
/// [`ThreadPool::install`] split work across this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Worker count of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's thread count installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            let out = op();
            c.set(prev);
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn par_iter_mut_enumerate_for_each() {
        let mut v = vec![0usize; 500];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn par_chunks_mut_covers_all_elements() {
        let mut v = vec![0u32; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(k, chunk)| {
            for x in chunk {
                *x = k as u32;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 10) as u32);
        }
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 1);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn vec_into_par_iter() {
        let v: Vec<i64> = (0..100).collect();
        let sum: i64 = v.into_par_iter().map(|x| x * x).sum();
        assert_eq!(sum, (0..100).map(|x| x * x).sum());
    }
}
